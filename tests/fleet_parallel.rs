//! Fleet-parallelism integration tests: a same-seed fleet week must produce
//! byte-identical outputs whether it runs on one worker thread or eight —
//! and whether the middle of each run executes as batch barriers or as
//! fused per-server dataflow operators. A regional outage must stay
//! contained (the healthy region's outputs are unaffected by a sibling
//! region failing mid-fleet-week), and a straggler server in dataflow mode
//! must not stall its siblings.

use seagull::core::fleet::FleetRunner;
use seagull::core::pipeline::{
    collections, AmlPipeline, ExecMode, PipelineConfig, PipelineRunReport,
};
use seagull::core::resilience::{ResiliencePolicy, StageChaos};
use seagull::forecast::{FittedModel, ForecastError, Forecaster, PersistentForecast};
use seagull::telemetry::blobstore::MemoryBlobStore;
use seagull::telemetry::chaos::{ChaosBlobStore, ChaosConfig};
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, RegionSpec, ServerTelemetry};
use seagull::timeseries::TimeSeries;
use serde_json::{json, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Two regions, `weeks` weeks of telemetry, extracted into a shared store.
fn two_region_store(seed: u64, weeks: usize) -> (Arc<MemoryBlobStore>, Vec<String>, Vec<i64>) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = 8;
    spec.regions.push(RegionSpec {
        name: "region-b".into(),
        servers: 8,
    });
    let start = spec.start_day;
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(weeks);
    let store = Arc::new(MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .unwrap();
    (store, regions, week_days)
}

/// The comparable part of a run report — wall-clock stage durations are
/// legitimately machine/thread dependent, everything else must match.
fn semantic_report(report: &PipelineRunReport) -> Value {
    json!({
        "region": report.region,
        "week_start_day": report.week_start_day,
        "stages": report.stages.iter().map(|s| s.stage.clone()).collect::<Vec<_>>(),
        "servers": report.servers,
        "anomalies": report.anomalies,
        "blocked": report.blocked,
        "predictions_written": report.predictions_written,
        "evaluations": report.evaluations,
        "accuracy": report.accuracy,
        "deployed_version": report.deployed_version,
        "degraded": report.degraded,
    })
}

/// Everything a schedule produces, canonicalized for byte equality: the
/// semantic reports, every stored document (sorted by id), the incident
/// log, and the stable metrics export.
fn canonical_outputs(pipeline: &AmlPipeline, reports: &[PipelineRunReport]) -> String {
    let mut docs = Vec::new();
    for collection in [
        collections::PREDICTIONS,
        collections::ACCURACY,
        collections::FEATURES,
        collections::RUNS,
        collections::DEAD_LETTER,
    ] {
        let mut ids = pipeline.docs.ids(collection);
        ids.sort();
        for id in ids {
            if collection == collections::RUNS {
                let run: PipelineRunReport = pipeline
                    .docs
                    .get(collection, &id)
                    .expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), semantic_report(&run)));
            } else {
                let value: Value = pipeline
                    .docs
                    .get(collection, &id)
                    .expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), value));
            }
        }
    }
    let incidents: Vec<Value> = pipeline
        .incidents
        .all()
        .iter()
        .map(|i| {
            json!({
                "severity": format!("{:?}", i.severity),
                "source": i.source,
                "region": i.region,
                "key": i.message_key,
                "count": i.count,
            })
        })
        .collect();
    json!({
        "reports": reports.iter().map(semantic_report).collect::<Vec<_>>(),
        "docs": docs,
        "incidents": incidents,
        "stable_export": pipeline.obs.stable_export(),
    })
    .to_string()
}

fn runner(store: &Arc<MemoryBlobStore>, regions: &[String], threads: usize) -> FleetRunner {
    let config = PipelineConfig {
        threads,
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(
        config,
        Arc::clone(store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
    );
    FleetRunner::new(pipeline, regions.to_vec())
}

/// The headline determinism guarantee: a same-seed three-week schedule over
/// two regions produces byte-identical canonical outputs (reports, stored
/// documents, incident log, stable export) at threads=1 and threads=8,
/// warm cache on — completion order must not leak anywhere.
#[test]
fn fleet_week_outputs_are_byte_identical_across_thread_counts() {
    let (store, regions, week_days) = two_region_store(2024, 3);
    let outputs: Vec<String> = [1usize, 8]
        .iter()
        .map(|&threads| {
            let runner = runner(&store, &regions, threads);
            let reports = runner.run_schedule(&week_days);
            canonical_outputs(runner.pipeline(), &reports)
        })
        .collect();
    assert_eq!(
        outputs[0], outputs[1],
        "threads=1 and threads=8 fleet schedules diverged"
    );
}

/// The other axis of the determinism guarantee: the fused dataflow path
/// and the batch barrier path produce byte-identical canonical outputs —
/// reports, stored documents, incident log, stable export — at both one
/// and eight threads, over a three-week two-region schedule with the warm
/// cache on.
#[test]
fn dataflow_and_barrier_outputs_are_byte_identical() {
    let (store, regions, week_days) = two_region_store(4242, 3);
    let mut outputs = Vec::new();
    for exec in [ExecMode::Barrier, ExecMode::Dataflow] {
        for threads in [1usize, 8] {
            let config = PipelineConfig {
                threads,
                exec,
                ..PipelineConfig::production()
            };
            let pipeline = AmlPipeline::new(
                config,
                Arc::clone(&store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
            );
            let runner = FleetRunner::new(pipeline, regions.to_vec());
            let reports = runner.run_schedule(&week_days);
            outputs.push((
                format!("{exec:?} x{threads}"),
                canonical_outputs(runner.pipeline(), &reports),
            ));
        }
    }
    for (label, output) in &outputs[1..] {
        assert_eq!(
            &outputs[0].1, output,
            "{} diverged from {}",
            label, outputs[0].0
        );
    }
}

/// A forecaster that makes one fit a deliberate straggler (~100× the cost
/// of a persistent fit) and records every fit's completion instant.
struct SlowFirstFit {
    calls: AtomicUsize,
    finished: Mutex<Vec<(bool, Instant)>>,
    inner: PersistentForecast,
    delay: Duration,
}

impl Forecaster for SlowFirstFit {
    fn name(&self) -> &'static str {
        "slow-first-fit"
    }
    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let slow = self.calls.fetch_add(1, Ordering::SeqCst) == 0;
        if slow {
            std::thread::sleep(self.delay);
        }
        let out = self.inner.fit(history);
        self.finished.lock().unwrap().push((slow, Instant::now()));
        out
    }
}

/// Task-granular dataflow scheduling: while one server's fused operator
/// sleeps in its fit, every sibling's fused operator must run to completion
/// on the remaining workers — no sibling may finish after the straggler.
/// (The barrier path cannot make this guarantee: its chunked claims stall
/// the straggler's chunk-mates behind it.)
#[test]
fn straggler_server_does_not_stall_siblings_in_dataflow() {
    let mut spec = FleetSpec::small_region(9001);
    spec.regions[0].servers = 40;
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(1);
    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&fleet, &["region-a".into()], &[start], store.as_ref())
        .unwrap();

    let slow = Arc::new(SlowFirstFit {
        calls: AtomicUsize::new(0),
        finished: Mutex::new(Vec::new()),
        inner: PersistentForecast::previous_day(),
        delay: Duration::from_millis(2500),
    });
    let config = PipelineConfig {
        threads: 4,
        warm_cache: false,
        // Solo fit batches: same-shape batching (`fit_batch > 1`) coarsens
        // the scheduling unit to the batch by design — a straggler then
        // stalls only its own batch-mates. This test pins the per-server
        // granularity that `fit_batch = 1` guarantees.
        fit_batch: 1,
        forecaster: Arc::clone(&slow) as Arc<dyn Forecaster>,
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, store);
    let report = pipeline.run_region_week("region-a", start);
    assert!(!report.blocked);
    assert_eq!(report.servers, 40);
    assert!(report.predictions_written > 0);

    let finished = slow.finished.lock().unwrap();
    assert_eq!(finished.len(), 40, "every server fit exactly once");
    let slow_finish = finished
        .iter()
        .find(|(is_slow, _)| *is_slow)
        .expect("the straggler fit ran")
        .1;
    let stalled = finished
        .iter()
        .filter(|(is_slow, t)| !*is_slow && *t >= slow_finish)
        .count();
    assert_eq!(
        stalled, 0,
        "{stalled} sibling(s) finished after the straggler — fused operators \
         must flow around a slow server"
    );
}

/// An outage on region-a's extracted blobs must not perturb region-b: its
/// report, predictions, and accuracy documents are identical to a run with
/// no chaos at all, and only region-a is blocked.
#[test]
fn regional_outage_is_isolated_from_healthy_regions() {
    let (store, regions, week_days) = two_region_store(77, 1);

    // Baseline: no chaos.
    let clean = runner(&store, &regions, 4);
    let clean_reports = clean.run_week(week_days[0]);

    // Chaos: region-a's extracted slice is down for the whole week.
    let chaos = Arc::new(ChaosBlobStore::new(
        Arc::clone(&store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
        ChaosConfig::default(),
    ));
    chaos.set_outage("extracted", "region-a");
    let config = PipelineConfig {
        threads: 4,
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, chaos);
    let faulty = FleetRunner::new(pipeline, regions.clone());
    let faulty_reports = faulty.run_week(week_days[0]);

    assert!(faulty_reports[0].blocked, "region-a should be blocked");
    assert!(!faulty_reports[1].blocked, "region-b should be healthy");
    assert!(!clean_reports[1].blocked);

    // Region-b's semantic report matches the chaos-free run exactly.
    assert_eq!(
        semantic_report(&clean_reports[1]),
        semantic_report(&faulty_reports[1]),
        "region-b's report changed because region-a failed"
    );

    // ... and so do its stored predictions.
    for p in [clean.pipeline(), faulty.pipeline()] {
        assert!(
            !p.docs.ids(collections::PREDICTIONS).is_empty(),
            "region-b still writes predictions"
        );
    }
    let pred_docs = |p: &AmlPipeline| -> Vec<(String, Value)> {
        let mut ids = p.docs.ids(collections::PREDICTIONS);
        ids.sort();
        ids.into_iter()
            .filter(|id| id.contains("region-b"))
            .map(|id| {
                let v: Value = p.docs.get(collections::PREDICTIONS, &id).unwrap();
                (id, v)
            })
            .collect()
    };
    assert_eq!(pred_docs(clean.pipeline()), pred_docs(faulty.pipeline()));
}

/// The warm cache changes cost, not the schedule: cache on vs cache off
/// cover the same servers with the same document set and the same run
/// counts. Per design, a *stable* server whose bytes changed slightly may
/// reuse last week's fit (drift-gated), so its predicted values can differ
/// from a refit — but only within the drift gate's tolerance, and
/// byte-identical inputs must still produce byte-identical predictions.
#[test]
fn warm_cache_changes_cost_not_schedule() {
    let (store, regions, week_days) = two_region_store(300, 3);

    let run = |warm_cache: bool| {
        let config = PipelineConfig {
            threads: 2,
            warm_cache,
            ..PipelineConfig::production()
        };
        let pipeline = AmlPipeline::new(
            config,
            Arc::clone(&store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
        );
        let runner = FleetRunner::new(pipeline, regions.clone());
        let reports = runner.run_schedule(&week_days);
        let stats = runner.cache_stats();
        (canonical_predictions(runner.pipeline()), reports, stats)
    };

    let (cold_docs, cold_reports, cold_stats) = run(false);
    let (warm_docs, warm_reports, warm_stats) = run(true);

    assert_eq!(
        cold_stats.hits + cold_stats.misses(),
        0,
        "bypassed cache is untouched"
    );
    assert!(
        warm_stats.hits > 0,
        "a stable fleet's later weeks should hit the cache: {warm_stats:?}"
    );

    // Same servers predicted, same weeks, same counts.
    let shape = |reports: &[PipelineRunReport]| -> Vec<Value> {
        reports
            .iter()
            .map(|r| {
                json!({
                    "region": r.region,
                    "week_start_day": r.week_start_day,
                    "servers": r.servers,
                    "blocked": r.blocked,
                    "predictions_written": r.predictions_written,
                    "evaluations": r.evaluations,
                })
            })
            .collect()
    };
    assert_eq!(shape(&cold_reports), shape(&warm_reports));
    let ids = |docs: &[(String, Value)]| docs.iter().map(|(id, _)| id.clone()).collect::<Vec<_>>();
    assert_eq!(ids(&cold_docs), ids(&warm_docs), "document sets diverged");

    // Reused fits may deviate from a refit, but only modestly — the drift
    // gate rejects level/scale shifts, so per-document mean load must stay
    // within 10% of the cold run's.
    let mut reused_docs = 0u64;
    for ((id, cold), (_, warm)) in cold_docs.iter().zip(&warm_docs) {
        let mean = |v: &Value| {
            let vals = v["values"].as_array().expect("values array");
            vals.iter().filter_map(Value::as_f64).sum::<f64>() / vals.len().max(1) as f64
        };
        let (c, w) = (mean(cold), mean(warm));
        assert!(
            (c - w).abs() <= 0.10 * c.abs().max(1e-9),
            "{id}: warm mean {w} strayed from cold mean {c}"
        );
        if cold != warm {
            reused_docs += 1;
        }
    }
    assert!(
        reused_docs <= warm_stats.hits,
        "only cache hits may deviate: {reused_docs} docs differ, {} hits",
        warm_stats.hits
    );
}

/// The accuracy-monitor drift gate: flagging a cached server (as the watch
/// layer does when served-vs-actual accuracy regresses) forces a refit on
/// the next week — the cache records a `Drift` miss and the fresh commit
/// clears the flag.
#[test]
fn accuracy_flagged_server_is_refit_next_week() {
    let (store, regions, week_days) = two_region_store(512, 3);
    let config = PipelineConfig {
        threads: 2,
        warm_cache: true,
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(
        config,
        Arc::clone(&store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
    );
    let runner = FleetRunner::new(pipeline, regions.to_vec());
    runner.run_week(week_days[0]);

    let cache = Arc::clone(&runner.pipeline().cache);
    let key = (0..200u64)
        .map(|id| format!("region-a/{id}"))
        .find(|k| cache.contains(k))
        .expect("week 1 committed at least one region-a fit");
    cache.flag_drift(&key);
    assert!(cache.drift_flagged(&key));

    let before = runner.cache_stats();
    runner.run_week(week_days[1]);
    let after = runner.cache_stats();

    assert!(
        after.invalidated_drift > before.invalidated_drift,
        "flagged server must take a Drift miss: {before:?} -> {after:?}"
    );
    assert!(
        !cache.drift_flagged(&key),
        "the refit's commit clears the drift flag"
    );
    assert!(cache.contains(&key), "fresh fit re-committed");
}

/// All prediction documents, sorted by id.
fn canonical_predictions(pipeline: &AmlPipeline) -> Vec<(String, Value)> {
    let mut ids = pipeline.docs.ids(collections::PREDICTIONS);
    ids.sort();
    ids.into_iter()
        .map(|id| {
            let v: Value = pipeline.docs.get(collections::PREDICTIONS, &id).unwrap();
            (id, v)
        })
        .collect()
}

/// Same-shape fit batching is a pure scheduling optimization: dataflow runs
/// at batch widths 1 (solo), 3, and 16 produce byte-identical canonical
/// outputs — including under per-server chaos, where one server's first
/// train-infer attempt faults transiently and must recover by retry
/// regardless of which batch it landed in.
#[test]
fn fit_batch_width_never_changes_outputs() {
    let (store, regions, week_days) = two_region_store(5150, 2);
    let outputs: Vec<(usize, String)> = [1usize, 3, 16]
        .iter()
        .map(|&fit_batch| {
            let config = PipelineConfig {
                threads: 4,
                exec: ExecMode::Dataflow,
                fit_batch,
                ..PipelineConfig::production()
            };
            let policy = ResiliencePolicy {
                chaos: StageChaos::from_server_fn(|stage, _, server_id, _, attempt| {
                    stage == "train-infer" && server_id == 2 && attempt == 0
                }),
                ..ResiliencePolicy::default()
            };
            let pipeline = AmlPipeline::with_resilience(
                config,
                Arc::clone(&store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
                policy,
            );
            let runner = FleetRunner::new(pipeline, regions.clone());
            let reports = runner.run_schedule(&week_days);
            (fit_batch, canonical_outputs(runner.pipeline(), &reports))
        })
        .collect();
    for (width, output) in &outputs[1..] {
        assert_eq!(
            &outputs[0].1, output,
            "fit_batch={} diverged from fit_batch={}",
            width, outputs[0].0
        );
    }
}

/// A forecaster that panics on every fit of one specific history: the first
/// series it ever sees is remembered and poisons all later fits of the same
/// bytes, so the marked server keeps panicking whether it is fitted through
/// a shared batch kernel or a solo fallback.
struct PanicOnMarkedHistory {
    marked: Mutex<Option<Vec<f64>>>,
    panics: AtomicUsize,
    inner: PersistentForecast,
}

impl Forecaster for PanicOnMarkedHistory {
    fn name(&self) -> &'static str {
        "panic-on-marked-history"
    }
    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let mut marked = self.marked.lock().unwrap();
        let mine = match marked.as_ref() {
            None => {
                *marked = Some(history.values().to_vec());
                true
            }
            Some(m) => m == history.values(),
        };
        drop(marked);
        if mine {
            self.panics.fetch_add(1, Ordering::SeqCst);
            panic!("marked server fit panicked");
        }
        self.inner.fit(history)
    }
}

/// A server whose fit panics *inside a shared fit batch* quarantines alone:
/// the batch kernel's results are discarded, every batch-mate refits solo
/// and lands its prediction byte-identically to a clean run, and only the
/// poison server is dead-lettered. `threads: 1` makes the first-ever fit
/// call (the marked one) deterministically the first server of the first
/// batch.
#[test]
fn poisoned_server_in_fit_batch_quarantines_alone() {
    let (store, _regions, week_days) = two_region_store(6006, 1);

    // Clean baseline with the real forecaster.
    let clean_config = PipelineConfig {
        threads: 1,
        exec: ExecMode::Dataflow,
        warm_cache: false,
        fit_batch: 16,
        forecaster: Arc::new(PersistentForecast::previous_day()),
        ..PipelineConfig::production()
    };
    let clean = AmlPipeline::new(
        clean_config,
        Arc::clone(&store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
    );
    let clean_report = clean.run_region_week("region-a", week_days[0]);
    assert!(clean_report.degraded.is_none(), "baseline must be clean");

    let poison = Arc::new(PanicOnMarkedHistory {
        marked: Mutex::new(None),
        panics: AtomicUsize::new(0),
        inner: PersistentForecast::previous_day(),
    });
    let config = PipelineConfig {
        threads: 1,
        exec: ExecMode::Dataflow,
        warm_cache: false,
        fit_batch: 16,
        forecaster: Arc::clone(&poison) as Arc<dyn Forecaster>,
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(
        config,
        Arc::clone(&store) as Arc<dyn seagull::telemetry::blobstore::BlobStore>,
    );
    let report = pipeline.run_region_week("region-a", week_days[0]);

    assert!(
        !report.blocked,
        "a panicking batch member never blocks the run"
    );
    assert!(
        poison.panics.load(Ordering::SeqCst) >= 2,
        "the marked fit must panic in the shared batch kernel AND in its solo fallback"
    );
    let degraded = report.degraded.expect("quarantine recorded");
    assert_eq!(
        degraded.quarantined_servers.len(),
        1,
        "exactly the marked server quarantines: {:?}",
        degraded.quarantined_servers
    );
    let marked_id = degraded.quarantined_servers[0];
    assert_eq!(
        pipeline.docs.count(collections::DEAD_LETTER),
        1,
        "one dead-letter doc for the marked server"
    );

    // Batch-mates are byte-identical to the clean run.
    let marked_prefix = format!("region-a/{marked_id}/");
    let sibling_preds: Vec<(String, Value)> = canonical_predictions(&clean)
        .into_iter()
        .filter(|(id, _)| !id.starts_with(&marked_prefix))
        .collect();
    assert_eq!(
        sibling_preds,
        canonical_predictions(&pipeline),
        "batch-mates must refit solo and match the clean run exactly"
    );
    assert_eq!(report.predictions_written, sibling_preds.len());
}
