//! Observability integration tests: the exported metrics must agree with
//! the resilience layer's own accounting (incident log, breaker snapshots,
//! chaos stats), and the stable export must be byte-identical across
//! same-seed runs — the property that makes obs output diffable in CI.

use seagull::core::dashboard::Dashboard;
use seagull::core::pipeline::{AmlPipeline, PipelineConfig};
use seagull::core::resilience::{BreakerState, ResiliencePolicy};
use seagull::core::Severity;
use seagull::obs::{export, Obs};
use seagull::telemetry::blobstore::MemoryBlobStore;
use seagull::telemetry::chaos::{ChaosBlobStore, ChaosConfig};
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, RegionSpec};
use std::sync::Arc;

/// Parse the current full Prometheus exposition and return the value of the
/// sample with `name` whose labels contain every pair in `labels`.
fn sample(obs: &Obs, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let text = export::to_prometheus(&obs.registry().snapshot());
    let parsed = export::parse_prometheus(&text).expect("exposition parses");
    parsed
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.get(*k).map(String::as_str) == Some(*v))
        })
        .map(|s| s.value)
}

/// A sustained outage on one region's blob slice, observed end to end: the
/// exported retry counters match the chaos store's rejection count, and the
/// breaker-state gauge transitions (Closed → Open → Closed) line up exactly
/// with the trip/recovery incidents in the incident log.
#[test]
fn outage_metrics_match_incident_log() {
    let mut spec = FleetSpec::small_region(21);
    spec.regions[0].servers = 10;
    spec.regions.push(RegionSpec {
        name: "region-b".into(),
        servers: 10,
    });
    let start = spec.start_day;
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let fleet = FleetGenerator::new(spec).generate_weeks(5);
    let store = Arc::new(MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..5).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .unwrap();

    let chaos = Arc::new(ChaosBlobStore::new(store, ChaosConfig::default()));
    let obs = Obs::new();
    let pipeline = AmlPipeline::with_resilience(
        PipelineConfig::production(),
        chaos.clone(),
        ResiliencePolicy::default(),
    )
    .with_obs(obs.clone());
    chaos.set_outage("extracted", "region-a");

    // Three weekly failures trip region-a's breaker; region-b stays healthy.
    for week in 0..3i64 {
        let tick = start + 7 * week;
        assert!(pipeline.run_region_week("region-a", tick).blocked);
        assert!(!pipeline.run_region_week("region-b", tick).blocked);
    }
    assert_eq!(pipeline.breaker.state("region-a"), BreakerState::Open);

    let labels_a = [("region", "region-a"), ("stage", "ingestion")];
    // 3 runs x 5 ingestion attempts, all rejected by the outage.
    assert_eq!(
        sample(&obs, "seagull_retry_attempts_total", &labels_a),
        Some(15.0)
    );
    assert_eq!(sample(&obs, "seagull_retries_total", &labels_a), Some(12.0));
    assert_eq!(
        sample(&obs, "seagull_retry_exhausted_total", &labels_a),
        Some(3.0)
    );
    // The counters agree with the chaos store's own accounting.
    assert_eq!(
        chaos.stats().outage_rejections,
        sample(&obs, "seagull_retry_attempts_total", &labels_a).unwrap() as u64
    );
    // Healthy region-b burned exactly one attempt per stage per run.
    assert_eq!(
        sample(
            &obs,
            "seagull_retry_attempts_total",
            &[("region", "region-b"), ("stage", "ingestion")]
        ),
        Some(3.0)
    );
    assert_eq!(
        sample(&obs, "seagull_retries_total", &[("region", "region-b")]),
        None,
        "no retries recorded for the healthy region"
    );

    // Breaker gauges: region-a Open (2), one trip; region-b Closed (0).
    let state_a = [("region", "region-a")];
    let state_b = [("region", "region-b")];
    assert_eq!(sample(&obs, "seagull_breaker_state", &state_a), Some(2.0));
    assert_eq!(sample(&obs, "seagull_breaker_trips", &state_a), Some(1.0));
    assert_eq!(sample(&obs, "seagull_breaker_state", &state_b), Some(0.0));

    // ... and the gauge transitions match the incident log exactly: one trip
    // gauge increment == one open Critical circuit-breaker incident.
    let open_criticals = pipeline
        .incidents
        .open()
        .iter()
        .filter(|i| {
            i.source == "circuit-breaker"
                && i.region == "region-a"
                && i.severity == Severity::Critical
        })
        .count() as f64;
    assert_eq!(
        sample(&obs, "seagull_breaker_trips", &state_a),
        Some(open_criticals)
    );

    // A run inside the cooldown is rejected by the gate, not by storage:
    // the blocked counter moves, the retry counters do not.
    pipeline.run_region_week("region-a", start + 21);
    assert_eq!(
        sample(&obs, "seagull_pipeline_blocked_total", &state_a),
        Some(4.0),
        "3 ingestion blocks + 1 breaker-gate skip"
    );
    assert_eq!(
        sample(&obs, "seagull_retry_attempts_total", &labels_a),
        Some(15.0)
    );

    // Heal the slice; the half-open probe run closes the circuit. The gauge
    // returns to Closed and the log swaps Critical for the Info recovery —
    // again in lockstep.
    chaos.clear_outage("extracted", "region-a");
    let recovered = pipeline.run_region_week("region-a", start + 28);
    assert!(!recovered.blocked);
    assert_eq!(sample(&obs, "seagull_breaker_state", &state_a), Some(0.0));
    assert_eq!(sample(&obs, "seagull_breaker_trips", &state_a), Some(1.0));
    let open = pipeline.incidents.open();
    assert!(
        open.iter()
            .all(|i| !(i.source == "circuit-breaker" && i.severity == Severity::Critical)),
        "trip incident resolved when the gauge returns to Closed"
    );
    assert!(open.iter().any(|i| i.source == "circuit-breaker"
        && i.region == "region-a"
        && i.severity == Severity::Info));

    // Span trees cover every run, blocked or not: 8 region-a + 3 region-b.
    let spans = obs.tracer().spans();
    let run_spans: Vec<_> = spans.iter().filter(|s| s.name == "run-week").collect();
    assert_eq!(run_spans.len(), 8);
    assert!(run_spans
        .iter()
        .all(|s| s.parent.is_none() && s.end_tick.is_some()));
}

/// One deterministic flaky-storage run, shared by the repeatability tests.
fn seeded_run(seed: u64) -> Obs {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = 12;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(2);
    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &[start, start + 7],
            store.as_ref(),
        )
        .unwrap();
    let chaos = Arc::new(ChaosBlobStore::new(
        store,
        ChaosConfig {
            seed,
            transient_fault_prob: 0.25,
            ..ChaosConfig::default()
        },
    ));
    let obs = Obs::new();
    let pipeline = AmlPipeline::with_resilience(
        PipelineConfig::production(),
        chaos.clone(),
        ResiliencePolicy {
            seed,
            ..ResiliencePolicy::default()
        },
    )
    .with_obs(obs.clone());
    let dashboard = Dashboard::with_obs(obs.clone());
    dashboard.record(pipeline.run_region_week(&region, start));
    dashboard.record(pipeline.run_region_week(&region, start + 7));
    chaos.export_metrics(obs.registry());
    obs
}

/// The acceptance property: same seed ⇒ byte-identical stable export, even
/// with parallel stages, wall-clock timing, and injected storage faults in
/// the mix. Wall-time series are Volatile and excluded by construction.
#[test]
fn same_seed_stable_export_is_byte_identical() {
    let a = seeded_run(42).stable_export();
    let b = seeded_run(42).stable_export();
    assert_eq!(a, b, "stable export must be reproducible byte for byte");
    assert!(
        !a.contains("seagull_stage_wall_seconds"),
        "wall-time series are volatile and must not leak into the stable export"
    );
    assert!(
        !a.contains("\"wall_us\""),
        "span wall fields are excluded from the stable export"
    );
    // The export is not trivially empty: retries happened and were recorded.
    assert!(a.contains("seagull_retry_attempts_total"));
    assert!(a.contains("run-week"));

    // A different seed shifts the fault schedule, so the export differs —
    // the byte-equality above is not vacuous.
    assert_ne!(a, seeded_run(43).stable_export());
}

/// The full export (volatile series included) still round-trips through the
/// parsers: Prometheus text and span JSON-lines are mutually consistent.
#[test]
fn full_export_round_trips_through_parsers() {
    let obs = seeded_run(7);
    let prom = export::to_prometheus(&obs.registry().snapshot());
    let parsed = export::parse_prometheus(&prom).expect("prometheus parses");
    assert!(!parsed.is_empty());
    assert_eq!(
        parsed.len(),
        export::parse_prometheus(&export::to_prometheus(&obs.registry().snapshot()))
            .unwrap()
            .len()
    );
    let spans = obs.tracer().spans();
    let lines = export::spans_to_json_lines(&spans, export::TimeMode::Full);
    let reparsed = export::parse_span_json_lines(&lines).expect("spans parse");
    // Wall time serializes at microsecond precision; everything else is
    // lossless.
    let truncated: Vec<_> = spans
        .iter()
        .cloned()
        .map(|mut s| {
            s.wall = s
                .wall
                .map(|w| std::time::Duration::from_micros(w.as_micros() as u64));
            s
        })
        .collect();
    assert_eq!(reparsed, truncated, "span JSON-lines round-trip");
}
