//! Failure-injection integration tests: the robustness properties Section 1
//! claims ("SEAGULL continually re-evaluates accuracy of predictions,
//! fallback to previously known good models and triggers alerts as
//! appropriate") exercised under adversarial input.

use bytes::Bytes;
use seagull::core::pipeline::{collections, AmlPipeline, DeadLetterDoc, PipelineConfig};
use seagull::core::resilience::{BreakerState, ResiliencePolicy, StageChaos};
use seagull::core::Severity;
use seagull::forecast::{FittedModel, ForecastError, Forecaster, PersistentForecast};
use seagull::telemetry::blobstore::{BlobKey, BlobStore, MemoryBlobStore};
use seagull::telemetry::chaos::{ChaosBlobStore, ChaosConfig};
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, RegionSpec, ServerTelemetry};
use seagull::telemetry::record::{LoadRecord, RecordBatch};
use seagull::telemetry::server::ServerId;
use seagull::timeseries::TimeSeries;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fleet_and_store(
    servers: usize,
    weeks: usize,
    seed: u64,
) -> (Vec<ServerTelemetry>, Arc<MemoryBlobStore>, String, i64) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = servers;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
    let store = Arc::new(MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &week_days,
            store.as_ref(),
        )
        .unwrap();
    (fleet, store, region, start)
}

#[test]
fn nan_telemetry_raises_warnings_but_does_not_block() {
    let (_, store, region, start) = fleet_and_store(20, 1, 10);
    // Inject NaN rows into the blob.
    let key = BlobKey::extracted(&region, start);
    let blob = store.get(&key).unwrap();
    let mut batch = RecordBatch::from_csv(&blob).unwrap();
    for r in batch.records.iter_mut().take(5) {
        r.avg_cpu = f64::NAN;
    }
    store.put(&key, batch.to_csv()).unwrap();

    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(&region, start);
    assert!(!report.blocked, "NaNs are repairable, not blocking");
    assert!(report.anomalies > 0);
    assert!(pipeline.incidents.open_count(Severity::Warning) > 0);
    assert!(report.predictions_written > 0, "pipeline still predicts");
}

#[test]
fn out_of_bound_values_are_flagged() {
    let (_, store, region, start) = fleet_and_store(10, 1, 11);
    let key = BlobKey::extracted(&region, start);
    let blob = store.get(&key).unwrap();
    let mut batch = RecordBatch::from_csv(&blob).unwrap();
    batch.records[0].avg_cpu = 250.0; // impossible CPU percentage
    batch.records[1].avg_cpu = -40.0;
    store.put(&key, batch.to_csv()).unwrap();

    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(&region, start);
    assert!(report.anomalies >= 2);
    assert!(!report.blocked);
}

#[test]
fn duplicate_and_invalid_window_rows_are_flagged() {
    let store = Arc::new(MemoryBlobStore::new());
    let region = "inj";
    let start = 18_004i64;
    let mk = |ts: i64, cpu: f64, bstart: i64, bend: i64| LoadRecord {
        server_id: ServerId(1),
        timestamp_min: ts,
        avg_cpu: cpu,
        default_backup_start: bstart,
        default_backup_end: bend,
    };
    let base = start * 1440;
    let batch = RecordBatch::new(vec![
        mk(base, 10.0, base, base + 60),
        mk(base, 11.0, base, base + 60),     // duplicate timestamp
        mk(base + 5, 12.0, base + 60, base), // inverted backup window
    ]);
    store
        .put(&BlobKey::extracted(region, start), batch.to_csv())
        .unwrap();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(region, start);
    assert!(report.anomalies >= 2, "anomalies {}", report.anomalies);
}

/// A forecaster that always fails: the pipeline must degrade gracefully
/// (no predictions, no panic) rather than crash the run.
struct BrokenModel;

impl Forecaster for BrokenModel {
    fn name(&self) -> &'static str {
        "broken"
    }
    fn fit(&self, _history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        Err(ForecastError::Numerical("injected failure".into()))
    }
}

#[test]
fn failing_model_degrades_gracefully() {
    let (_, store, region, start) = fleet_and_store(15, 1, 12);
    let config = PipelineConfig {
        forecaster: Arc::new(BrokenModel),
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, store);
    let report = pipeline.run_region_week(&region, start);
    assert!(!report.blocked, "a broken model is not a blocked run");
    assert_eq!(report.predictions_written, 0);
    // The run is still recorded and a version is still tracked (it will
    // never accumulate accuracy and so can never displace a good model).
    assert_eq!(pipeline.docs.count(collections::RUNS), 1);
    assert!(pipeline.registry.deployed(&region).is_some());
}

#[test]
fn header_only_blob_blocks_with_empty_input_anomaly() {
    let store = Arc::new(MemoryBlobStore::new());
    let region = "empty";
    let start = 18_004i64;
    store
        .put(
            &BlobKey::extracted(region, start),
            RecordBatch::default().to_csv(),
        )
        .unwrap();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(region, start);
    assert!(report.blocked);
    assert!(pipeline.incidents.open_count(Severity::Critical) >= 1);
}

#[test]
fn truncated_blob_blocks_at_ingestion() {
    let store = Arc::new(MemoryBlobStore::new());
    let region = "garbled";
    let start = 18_004i64;
    store
        .put(
            &BlobKey::extracted(region, start),
            Bytes::from_static(&[0xff, 0x00, 0x12]),
        )
        .unwrap();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(region, start);
    assert!(report.blocked);
    assert_eq!(report.servers, 0);
}

/// The acceptance sweep: 20 seeds at a 10% transient storage fault rate,
/// three weekly runs each. Every run must complete (possibly degraded) —
/// five attempts at p = 0.1 exhaust with probability 1e-5 per run — and the
/// retry counters must line up with the injected-fault counters.
#[test]
fn chaos_sweep_every_seed_completes_with_retries() {
    let mut total_retries = 0u64;
    for seed in 0..20u64 {
        let (_, store, region, start) = fleet_and_store(12, 3, 100 + seed);
        let chaos = Arc::new(ChaosBlobStore::new(
            store,
            ChaosConfig {
                seed,
                transient_fault_prob: 0.1,
                ..ChaosConfig::default()
            },
        ));
        let pipeline = AmlPipeline::new(PipelineConfig::production(), chaos.clone());
        let mut seed_retries = 0u64;
        for week in 0..3i64 {
            let report = pipeline.run_region_week(&region, start + 7 * week);
            assert!(
                !report.blocked,
                "seed {seed} week {week}: a 10% transient rate must never \
                 exhaust the 5 ingestion attempts"
            );
            assert!(report.predictions_written > 0);
            seed_retries += u64::from(report.total_retries());
        }
        // Since no run exhausted, every injected fault cost exactly one
        // retry: the pipeline's accounting matches the chaos counters.
        assert_eq!(seed_retries, chaos.stats().transient_faults, "seed {seed}");
        total_retries += seed_retries;
    }
    // Pinned by simulation of the SplitMix64 schedule for seeds 0..20.
    assert!(
        total_retries > 0,
        "a 10% fault rate across 60 runs must cause retries"
    );
}

/// Same seed ⇒ byte-identical fault schedule, incident log, and degradation
/// summaries across two independent end-to-end runs.
#[test]
fn same_seed_reproduces_schedule_and_incident_log() {
    let run = || {
        let (_, store, region, start) = fleet_and_store(10, 3, 77);
        let chaos = Arc::new(ChaosBlobStore::new(
            store,
            ChaosConfig {
                seed: 5,
                transient_fault_prob: 0.3,
                torn_read_prob: 0.3,
                ..ChaosConfig::default()
            },
        ));
        let pipeline = AmlPipeline::new(PipelineConfig::production(), chaos.clone());
        let degraded: Vec<_> = (0..3i64)
            .map(|w| pipeline.run_region_week(&region, start + 7 * w).degraded)
            .collect();
        (
            chaos.schedule_log(),
            chaos.stats(),
            format!("{:?}", pipeline.incidents.all()),
            degraded,
        )
    };
    let (log_a, stats_a, incidents_a, degraded_a) = run();
    let (log_b, stats_b, incidents_b, degraded_b) = run();
    assert_eq!(
        log_a, log_b,
        "same seed must replay the same fault schedule"
    );
    assert_eq!(stats_a, stats_b);
    assert_eq!(incidents_a, incidents_b);
    assert_eq!(degraded_a, degraded_b);
    // Seed 5 injects a fault on the second ingestion op (verified against
    // the SplitMix64 stream), so the logs being compared are non-trivial.
    assert!(stats_a.faults > 0);
    assert!(!log_a.is_empty());
}

/// A sustained outage of one region's blob slice trips that region's
/// breaker (Critical raised, state observable), leaves the other region
/// unaffected, and recovers through half-open after the cooldown.
#[test]
fn sustained_outage_trips_breaker_and_recovers_through_half_open() {
    let mut spec = FleetSpec::small_region(21);
    spec.regions[0].servers = 10;
    spec.regions.push(RegionSpec {
        name: "region-b".into(),
        servers: 10,
    });
    let start = spec.start_day;
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let fleet = FleetGenerator::new(spec).generate_weeks(5);
    let store = Arc::new(MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..5).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .unwrap();

    let chaos = Arc::new(ChaosBlobStore::new(store, ChaosConfig::default()));
    let pipeline = AmlPipeline::new(PipelineConfig::production(), chaos.clone());
    chaos.set_outage("extracted", "region-a");

    // Three weekly failures (5 ingestion attempts each) trip the breaker at
    // the default threshold of 3.
    for week in 0..3i64 {
        let tick = start + 7 * week;
        let ra = pipeline.run_region_week("region-a", tick);
        assert!(ra.blocked);
        assert_eq!(ra.total_retries(), 4, "all 5 attempts hit the outage");
        let rb = pipeline.run_region_week("region-b", tick);
        assert!(!rb.blocked, "the outage is sliced: region-b is unaffected");
        assert!(rb.predictions_written > 0);
        assert!(!rb.is_degraded());
    }
    assert_eq!(pipeline.breaker.state("region-a"), BreakerState::Open);
    assert_eq!(pipeline.breaker.snapshot("region-a").trips, 1);
    assert_eq!(pipeline.breaker.state("region-b"), BreakerState::Closed);
    assert_eq!(chaos.stats().outage_rejections, 15, "3 runs x 5 attempts");
    let trip_criticals = pipeline
        .incidents
        .open()
        .iter()
        .filter(|i| {
            i.source == "circuit-breaker"
                && i.region == "region-a"
                && i.severity == Severity::Critical
        })
        .count();
    assert_eq!(trip_criticals, 1);

    // Within the cooldown (14 ticks from the trip at start+14) the breaker
    // rejects the run outright — no storage ops, no retries burned.
    let r4 = pipeline.run_region_week("region-a", start + 21);
    assert!(r4.blocked);
    assert!(r4.degraded.expect("skip recorded").skipped_by_breaker);
    assert_eq!(pipeline.breaker.state("region-a"), BreakerState::Open);
    assert_eq!(
        chaos.stats().outage_rejections,
        15,
        "an open breaker spends nothing on storage"
    );

    // Heal the slice; the cooldown elapses at start+28 and the half-open
    // probe run succeeds, closing the circuit and resolving the trip.
    chaos.clear_outage("extracted", "region-a");
    let r5 = pipeline.run_region_week("region-a", start + 28);
    assert!(!r5.blocked, "half-open probe run completes");
    assert!(r5.predictions_written > 0);
    assert_eq!(pipeline.breaker.state("region-a"), BreakerState::Closed);
    let open = pipeline.incidents.open();
    assert!(
        open.iter()
            .all(|i| !(i.source == "circuit-breaker" && i.severity == Severity::Critical)),
        "the trip incident is resolved on recovery"
    );
    assert!(
        open.iter().any(|i| i.source == "circuit-breaker"
            && i.region == "region-a"
            && i.severity == Severity::Info),
        "recovery raises an Info incident"
    );
}

/// A forecaster whose fit fails (as a poison-input stand-in) for chosen
/// calls; with `threads: 1` the call order is the region's server order.
struct FailNthFit {
    calls: AtomicUsize,
    fail_on: &'static [usize],
    inner: PersistentForecast,
}

impl Forecaster for FailNthFit {
    fn name(&self) -> &'static str {
        "fail-nth-fit"
    }
    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.fail_on.contains(&n) {
            return Err(ForecastError::Numerical(format!(
                "injected poison batch #{n}"
            )));
        }
        self.inner.fit(history)
    }
}

#[test]
fn poison_batches_are_quarantined_not_fatal() {
    let (_, store, region, start) = fleet_and_store(12, 1, 14);
    let config = PipelineConfig {
        forecaster: Arc::new(FailNthFit {
            calls: AtomicUsize::new(0),
            fail_on: &[1, 4],
            inner: PersistentForecast::previous_day(),
        }),
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, store);
    let report = pipeline.run_region_week(&region, start);
    assert!(!report.blocked, "poison batches degrade, they do not block");
    assert!(
        report.deployed_version.is_some(),
        "the region still deploys"
    );
    assert!(
        report.predictions_written > 0,
        "healthy servers still predict"
    );
    let degraded = report.degraded.expect("quarantine recorded");
    assert_eq!(degraded.quarantined_servers.len(), 2);
    assert_eq!(pipeline.docs.count(collections::DEAD_LETTER), 2);
    for server_id in &degraded.quarantined_servers {
        let id = DeadLetterDoc::doc_id(&region, *server_id, start);
        let doc: DeadLetterDoc = pipeline
            .docs
            .get(collections::DEAD_LETTER, &id)
            .expect("quarantined server has a dead-letter doc");
        assert_eq!(doc.stage, "train-infer");
        assert!(doc.reason.contains("injected poison batch"));
    }
    assert!(
        pipeline
            .incidents
            .open()
            .iter()
            .any(|i| i.source == "train-infer" && i.severity == Severity::Warning),
        "quarantine raises a Warning"
    );
}

/// Per-server fault granularity (dataflow): a server whose train-infer
/// attempts all fail exhausts only its *own* retry budget and dead-letters
/// only itself — siblings' predictions are byte-identical to a chaos-free
/// run, deployment proceeds, and no fallback is recorded.
#[test]
fn per_server_fault_quarantines_only_that_server() {
    let (_, store, region, start) = fleet_and_store(12, 1, 16);

    // Chaos-free baseline.
    let clean = AmlPipeline::new(
        PipelineConfig::production(),
        Arc::clone(&store) as Arc<dyn BlobStore>,
    );
    let clean_report = clean.run_region_week(&region, start);
    assert!(clean_report.degraded.is_none(), "baseline must be clean");

    // Server 3's train-infer faults on every attempt.
    let policy = ResiliencePolicy {
        chaos: StageChaos::from_server_fn(|stage, _, server_id, _, _| {
            stage == "train-infer" && server_id == 3
        }),
        ..ResiliencePolicy::default()
    };
    let pipeline = AmlPipeline::with_resilience(
        PipelineConfig::production(),
        Arc::clone(&store) as Arc<dyn BlobStore>,
        policy,
    );
    let report = pipeline.run_region_week(&region, start);

    assert!(!report.blocked, "one poisoned server never blocks the run");
    assert_eq!(
        report.deployed_version, clean_report.deployed_version,
        "deployment proceeds on the healthy majority"
    );
    let degraded = report.degraded.expect("quarantine recorded");
    assert_eq!(degraded.quarantined_servers, vec![3]);
    assert!(!degraded.fallback_deployed);
    assert_eq!(
        degraded.retries.get("train-infer"),
        Some(&4),
        "only the poisoned server burned its five-attempt budget"
    );
    let doc: DeadLetterDoc = pipeline
        .docs
        .get(
            collections::DEAD_LETTER,
            &DeadLetterDoc::doc_id(&region, 3, start),
        )
        .expect("quarantined server has a dead-letter doc");
    assert_eq!(doc.stage, "train-infer");
    assert!(
        doc.reason
            .contains("train-infer retries exhausted after 5 attempt(s)"),
        "unexpected reason: {}",
        doc.reason
    );

    // Siblings' predictions are byte-identical to the clean run.
    let preds = |p: &AmlPipeline| -> Vec<(String, serde_json::Value)> {
        let mut ids = p.docs.ids(collections::PREDICTIONS);
        ids.sort();
        ids.into_iter()
            .map(|id| {
                let v: serde_json::Value = p.docs.get(collections::PREDICTIONS, &id).unwrap();
                (id, v)
            })
            .collect()
    };
    let sibling_preds: Vec<_> = preds(&clean)
        .into_iter()
        .filter(|(id, _)| !id.starts_with(&format!("{region}/3/")))
        .collect();
    assert_eq!(
        sibling_preds,
        preds(&pipeline),
        "siblings must be untouched by the quarantined server"
    );
    assert_eq!(report.predictions_written, sibling_preds.len());
}

/// Deploy failure mid-schedule: the failing week keeps serving the
/// last-known-good version, its predictions still land, and the next clean
/// week deploys a fresh version over it.
#[test]
fn deploy_failure_mid_schedule_keeps_serving_last_known_good() {
    let (_, store, region, start) = fleet_and_store(15, 3, 15);
    let bad_week = start + 7;
    let policy = ResiliencePolicy {
        chaos: StageChaos::from_fn(move |stage, _, tick, _| {
            stage == "deployment" && tick == bad_week
        }),
        ..ResiliencePolicy::default()
    };
    let pipeline = AmlPipeline::with_resilience(PipelineConfig::production(), store, policy);
    let reports = pipeline.run_schedule(
        std::slice::from_ref(&region),
        &[start, bad_week, start + 14],
    );
    assert_eq!(reports[0].deployed_version, Some(1));

    // Week 2: deployment hard-fails; the run degrades instead of erroring.
    assert!(!reports[1].blocked);
    assert_eq!(reports[1].deployed_version, None);
    let degraded = reports[1].degraded.clone().expect("fallback recorded");
    assert!(degraded.fallback_deployed);
    assert_eq!(
        degraded.retries.get("deployment"),
        Some(&4),
        "all 5 deploy attempts burned"
    );
    assert!(degraded.exhausted_stages.contains(&"deployment".into()));
    assert!(reports[1].predictions_written > 0, "predictions still land");
    assert!(
        pipeline
            .incidents
            .open()
            .iter()
            .any(|i| i.source == "deployment" && i.severity == Severity::Critical),
        "deploy failure raises a Critical"
    );

    // Week 3: the fault clears; week-2 predictions are evaluated and a new
    // version deploys over the kept v1.
    assert!(reports[2].evaluations > 0);
    assert_eq!(reports[2].deployed_version, Some(2));
    assert_eq!(pipeline.registry.deployed(&region).unwrap().version, 2);
}

#[test]
fn accuracy_regression_triggers_fallback_and_alert() {
    let (_, store, region, start) = fleet_and_store(40, 3, 13);
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    // Two healthy weeks establish a last-known-good version with accuracy.
    pipeline.run_region_week(&region, start);
    pipeline.run_region_week(&region, start + 7);
    let good = pipeline.registry.deployed(&region).unwrap();
    assert!(good.accuracy.is_some());

    // Deploy an "experimental" version and record terrible accuracy.
    let bad = pipeline
        .registry
        .deploy(&region, "experimental", start + 14);
    pipeline.registry.record_accuracy(
        &region,
        bad,
        seagull::core::registry::ModelAccuracy {
            window_correct_pct: 20.0,
            load_accurate_pct: 15.0,
            predictable_pct: 5.0,
        },
    );
    let rolled = pipeline
        .registry
        .maybe_fallback(&region, 10.0, &pipeline.incidents);
    assert_eq!(rolled, Some(good.version));
    assert_eq!(
        pipeline.registry.deployed(&region).unwrap().version,
        good.version
    );
    assert!(pipeline.incidents.open_count(Severity::Critical) >= 1);
}
