//! Failure-injection integration tests: the robustness properties Section 1
//! claims ("SEAGULL continually re-evaluates accuracy of predictions,
//! fallback to previously known good models and triggers alerts as
//! appropriate") exercised under adversarial input.

use bytes::Bytes;
use seagull::core::pipeline::{collections, AmlPipeline, PipelineConfig};
use seagull::core::Severity;
use seagull::forecast::{FittedModel, ForecastError, Forecaster};
use seagull::telemetry::blobstore::{BlobKey, BlobStore, MemoryBlobStore};
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use seagull::telemetry::record::{LoadRecord, RecordBatch};
use seagull::telemetry::server::ServerId;
use seagull::timeseries::TimeSeries;
use std::sync::Arc;

fn fleet_and_store(
    servers: usize,
    weeks: usize,
    seed: u64,
) -> (Vec<ServerTelemetry>, Arc<MemoryBlobStore>, String, i64) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = servers;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
    let store = Arc::new(MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &week_days,
            store.as_ref(),
        )
        .unwrap();
    (fleet, store, region, start)
}

#[test]
fn nan_telemetry_raises_warnings_but_does_not_block() {
    let (_, store, region, start) = fleet_and_store(20, 1, 10);
    // Inject NaN rows into the blob.
    let key = BlobKey::extracted(&region, start);
    let blob = store.get(&key).unwrap();
    let mut batch = RecordBatch::from_csv(&blob).unwrap();
    for r in batch.records.iter_mut().take(5) {
        r.avg_cpu = f64::NAN;
    }
    store.put(&key, batch.to_csv()).unwrap();

    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(&region, start);
    assert!(!report.blocked, "NaNs are repairable, not blocking");
    assert!(report.anomalies > 0);
    assert!(pipeline.incidents.open_count(Severity::Warning) > 0);
    assert!(report.predictions_written > 0, "pipeline still predicts");
}

#[test]
fn out_of_bound_values_are_flagged() {
    let (_, store, region, start) = fleet_and_store(10, 1, 11);
    let key = BlobKey::extracted(&region, start);
    let blob = store.get(&key).unwrap();
    let mut batch = RecordBatch::from_csv(&blob).unwrap();
    batch.records[0].avg_cpu = 250.0; // impossible CPU percentage
    batch.records[1].avg_cpu = -40.0;
    store.put(&key, batch.to_csv()).unwrap();

    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(&region, start);
    assert!(report.anomalies >= 2);
    assert!(!report.blocked);
}

#[test]
fn duplicate_and_invalid_window_rows_are_flagged() {
    let store = Arc::new(MemoryBlobStore::new());
    let region = "inj";
    let start = 18_004i64;
    let mk = |ts: i64, cpu: f64, bstart: i64, bend: i64| LoadRecord {
        server_id: ServerId(1),
        timestamp_min: ts,
        avg_cpu: cpu,
        default_backup_start: bstart,
        default_backup_end: bend,
    };
    let base = start * 1440;
    let batch = RecordBatch::new(vec![
        mk(base, 10.0, base, base + 60),
        mk(base, 11.0, base, base + 60),     // duplicate timestamp
        mk(base + 5, 12.0, base + 60, base), // inverted backup window
    ]);
    store
        .put(&BlobKey::extracted(region, start), batch.to_csv())
        .unwrap();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(region, start);
    assert!(report.anomalies >= 2, "anomalies {}", report.anomalies);
}

/// A forecaster that always fails: the pipeline must degrade gracefully
/// (no predictions, no panic) rather than crash the run.
struct BrokenModel;

impl Forecaster for BrokenModel {
    fn name(&self) -> &'static str {
        "broken"
    }
    fn fit(&self, _history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        Err(ForecastError::Numerical("injected failure".into()))
    }
}

#[test]
fn failing_model_degrades_gracefully() {
    let (_, store, region, start) = fleet_and_store(15, 1, 12);
    let config = PipelineConfig {
        forecaster: Arc::new(BrokenModel),
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, store);
    let report = pipeline.run_region_week(&region, start);
    assert!(!report.blocked, "a broken model is not a blocked run");
    assert_eq!(report.predictions_written, 0);
    // The run is still recorded and a version is still tracked (it will
    // never accumulate accuracy and so can never displace a good model).
    assert_eq!(pipeline.docs.count(collections::RUNS), 1);
    assert!(pipeline.registry.deployed(&region).is_some());
}

#[test]
fn header_only_blob_blocks_with_empty_input_anomaly() {
    let store = Arc::new(MemoryBlobStore::new());
    let region = "empty";
    let start = 18_004i64;
    store
        .put(
            &BlobKey::extracted(region, start),
            RecordBatch::default().to_csv(),
        )
        .unwrap();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(region, start);
    assert!(report.blocked);
    assert!(pipeline.incidents.open_count(Severity::Critical) >= 1);
}

#[test]
fn truncated_blob_blocks_at_ingestion() {
    let store = Arc::new(MemoryBlobStore::new());
    let region = "garbled";
    let start = 18_004i64;
    store
        .put(
            &BlobKey::extracted(region, start),
            Bytes::from_static(&[0xff, 0x00, 0x12]),
        )
        .unwrap();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(region, start);
    assert!(report.blocked);
    assert_eq!(report.servers, 0);
}

#[test]
fn accuracy_regression_triggers_fallback_and_alert() {
    let (_, store, region, start) = fleet_and_store(40, 3, 13);
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    // Two healthy weeks establish a last-known-good version with accuracy.
    pipeline.run_region_week(&region, start);
    pipeline.run_region_week(&region, start + 7);
    let good = pipeline.registry.deployed(&region).unwrap();
    assert!(good.accuracy.is_some());

    // Deploy an "experimental" version and record terrible accuracy.
    let bad = pipeline
        .registry
        .deploy(&region, "experimental", start + 14);
    pipeline.registry.record_accuracy(
        &region,
        bad,
        seagull::core::registry::ModelAccuracy {
            window_correct_pct: 20.0,
            load_accurate_pct: 15.0,
            predictable_pct: 5.0,
        },
    );
    let rolled = pipeline
        .registry
        .maybe_fallback(&region, 10.0, &pipeline.incidents);
    assert_eq!(rolled, Some(good.version));
    assert_eq!(
        pipeline.registry.deployed(&region).unwrap().version,
        good.version
    );
    assert!(pipeline.incidents.open_count(Severity::Critical) >= 1);
}
