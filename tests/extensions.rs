//! Integration tests for the paper's extension features: clock-driven
//! operations, the weekday optimizer, the customer-window advisor, the
//! auto-scale policy, multi-signal telemetry, and the class-aware model
//! router.

use seagull::autoscale::{evaluate_policy, sql_fleet_spec, AutoscalePolicy, SizingMode, SkuLadder};
use seagull::backup::{
    Advice, BackupScheduler, CustomerWindow, FabricPropertyStore, RunnerService, SchedulerConfig,
    WeekdayConfig, WeekdayOptimizer, WindowAdvisor,
};
use seagull::core::clock::{JobScheduler, RecurringJob};
use seagull::core::pipeline::{AmlPipeline, PipelineConfig};
use seagull::forecast::{ClassAwareForecaster, Forecaster, PersistentForecast, SsaForecaster};
use seagull::telemetry::blobstore::MemoryBlobStore;
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec};
use seagull::telemetry::signals::{SignalGenerator, SignalKind};
use seagull::timeseries::Timestamp;
use std::cell::RefCell;
use std::sync::Arc;

#[test]
fn clock_driven_month_of_operations() {
    // A month of operations on the simulated clock: the weekly pipeline and
    // the daily backup runner interleave exactly as production sequences
    // them.
    let mut spec = FleetSpec::small_region(61);
    spec.regions[0].servers = 50;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(5);

    let store = Arc::new(MemoryBlobStore::new());
    let weeks: Vec<i64> = (0..5).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &weeks,
            store.as_ref(),
        )
        .unwrap();

    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 2);
    let fabric = FabricPropertyStore::new();
    let model = PersistentForecast::previous_day();

    let pipeline_runs = RefCell::new(0usize);
    let backups = RefCell::new(0usize);
    let mut sched = JobScheduler::new();
    sched.register(RecurringJob::weekly("aml-pipeline", start), |day| {
        pipeline.run_region_week(&region, day);
        *pipeline_runs.borrow_mut() += 1;
    });
    sched.register(RecurringJob::daily("backup-runner"), |day| {
        let report = runner.run_day(&fleet, day, &model, &fabric);
        *backups.borrow_mut() += report.backups.len();
        assert!((report.availability() - 1.0).abs() < 1e-9);
    });
    let log = sched.run(start, start + 35);

    assert_eq!(*pipeline_runs.borrow(), 5);
    assert_eq!(log.iter().filter(|r| r.name == "aml-pipeline").count(), 5);
    assert_eq!(log.iter().filter(|r| r.name == "backup-runner").count(), 35);
    assert!(*backups.borrow() > 0);
    assert_eq!(pipeline.docs.count("runs"), 5);
}

#[test]
fn weekday_optimizer_never_worsens_predicted_load() {
    let mut spec = FleetSpec::small_region(62);
    spec.regions[0].servers = 60;
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(6);
    let opt = WeekdayOptimizer::new(
        BackupScheduler::new(SchedulerConfig::default()),
        WeekdayConfig::default(),
    );
    let model = PersistentForecast::previous_day();
    let plans = opt.plan_week(&fleet, start + 35, &model, 2);
    assert_eq!(plans.len(), fleet.len());
    for p in &plans {
        if p.moved() {
            let due = p.due_window_load.unwrap_or(f64::INFINITY);
            assert!(p.chosen_window_load.unwrap() < due);
        }
        // Every plan's backup lands on its chosen day.
        assert_eq!(p.backup.backup_day, p.chosen_day);
    }
}

#[test]
fn advisor_respects_predictability_gate() {
    let mut spec = FleetSpec::small_region(63);
    spec.regions[0].servers = 40;
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(5);
    let advisor = WindowAdvisor::new(BackupScheduler::new(SchedulerConfig::default()));
    let model = PersistentForecast::previous_day();
    let mut verdicts = (0usize, 0usize, 0usize, 0usize); // keep/suggest/unpredictable/unevaluable
    for server in &fleet {
        if !server.meta.alive_on(start + 30) {
            continue;
        }
        let advice = advisor.advise(
            server,
            CustomerWindow {
                server_id: server.meta.id.0,
                start_minute: 600,
            },
            start + 30,
            &model,
        );
        match advice.advice {
            Advice::KeepCurrent { .. } => verdicts.0 += 1,
            Advice::Suggest { .. } => verdicts.1 += 1,
            Advice::NotPredictable => verdicts.2 += 1,
            Advice::NotEvaluable => verdicts.3 += 1,
        }
    }
    // A mostly-stable fleet: most customers keep their window; short-lived
    // and unstable servers must land in NotPredictable, never Suggest.
    assert!(verdicts.0 > 0, "some keeps: {verdicts:?}");
    assert!(verdicts.2 > 0, "some unpredictable: {verdicts:?}");
}

#[test]
fn autoscale_policy_dominates_static_allocation() {
    let spec = sql_fleet_spec(64, 80);
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(2);
    let model = PersistentForecast::previous_day();
    let policy = AutoscalePolicy::default();
    let ladder = SkuLadder::default();
    let day = start + 8;
    let pre = evaluate_policy(
        &fleet,
        day,
        SizingMode::Preemptive,
        &policy,
        &ladder,
        &model,
        7,
        2,
    );
    let stat = evaluate_policy(
        &fleet,
        day,
        SizingMode::StaticMax,
        &policy,
        &ladder,
        &model,
        7,
        2,
    );
    assert!(pre.evaluated > 0);
    // Preemptive reclaims capacity (Figure 13(b)'s 96.3 % headroom) at a
    // bounded violation cost.
    assert!(pre.mean_capacity < stat.mean_capacity * 0.9);
    assert!(pre.mean_waste_pct_hours < stat.mean_waste_pct_hours);
    assert!(pre.violation_rate_pct < 35.0, "{}", pre.violation_rate_pct);
}

#[test]
fn signals_extend_every_server() {
    let mut spec = FleetSpec::small_region(65);
    spec.regions[0].servers = 10;
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(1);
    let _ = start;
    for server in &fleet {
        let Some(day) = server.series.first_full_day() else {
            continue;
        };
        let gen = SignalGenerator::new(server.shape, server.meta.id.0);
        for kind in SignalKind::ALL {
            let s = gen.series(kind, Timestamp::from_days(day), 5, 288);
            assert_eq!(s.len(), 288);
            assert!(s.values().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        // The CPU signal is exactly the stored telemetry.
        let cpu = gen.series(SignalKind::Cpu, Timestamp::from_days(day), 5, 288);
        assert_eq!(cpu.values(), server.series.day_values(day).unwrap());
    }
}

#[test]
fn class_aware_router_matches_best_single_models() {
    let mut spec = FleetSpec::small_region(66);
    spec.regions[0].servers = 60;
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(4);
    let router = ClassAwareForecaster::paper_defaults(Arc::new(SsaForecaster::default()));
    let mut routed = 0;
    for server in fleet.iter().filter(|s| s.meta.deleted_day.is_none()) {
        let history = server
            .series
            .slice(
                Timestamp::from_days(start + 14),
                Timestamp::from_days(start + 21),
            )
            .unwrap();
        if router.fit_predict(&history, 288).is_ok() {
            routed += 1;
        }
    }
    assert!(routed > 0, "router must serve the long-lived fleet");
}
