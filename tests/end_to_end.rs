//! End-to-end integration tests spanning the whole workspace: telemetry →
//! extraction → pipeline → scheduler → impact.

use seagull::backup::{
    analyze_impact, BackupScheduler, FabricPropertyStore, RunnerService, ScheduleDecision,
    SchedulerConfig,
};
use seagull::core::metrics::ErrorBound;
use seagull::core::pipeline::{collections, AmlPipeline, PipelineConfig};
use seagull::core::Severity;
use seagull::forecast::PersistentForecast;
use seagull::telemetry::blobstore::MemoryBlobStore;
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use std::sync::Arc;

fn fleet_of(servers: usize, weeks: usize, seed: u64) -> (Vec<ServerTelemetry>, FleetSpec) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = servers;
    let fleet = FleetGenerator::new(spec.clone()).generate_weeks(weeks);
    (fleet, spec)
}

#[test]
fn telemetry_to_pipeline_to_scheduler() {
    let (fleet, spec) = fleet_of(80, 5, 1);
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let weeks: Vec<i64> = (0..5).map(|w| start + 7 * w).collect();

    // Extraction fills the blob store.
    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &weeks,
            store.as_ref(),
        )
        .unwrap();

    // Five weekly pipeline runs; later runs must evaluate earlier
    // predictions and keep the registry on the newest version.
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let reports = pipeline.run_schedule(std::slice::from_ref(&region), &weeks);
    assert_eq!(reports.len(), 5);
    assert!(reports.iter().all(|r| !r.blocked));
    assert!(reports[0].predictions_written > 0);
    assert!(reports[1].evaluations > 0);
    let acc = reports[4].accuracy.expect("later runs have accuracy");
    assert!(acc.window_correct_pct > 80.0);
    assert_eq!(
        pipeline.registry.deployed(&region).unwrap().version,
        5,
        "one version per weekly run"
    );
    assert!(pipeline.docs.count(collections::PREDICTIONS) > 0);
    assert!(pipeline.docs.count(collections::ACCURACY) > 0);
    assert_eq!(pipeline.docs.count(collections::RUNS), 5);

    // The scheduler then places next week's backups.
    let scheduler = BackupScheduler::new(SchedulerConfig::default());
    let fabric = FabricPropertyStore::new();
    let model = PersistentForecast::previous_day();
    let scheduled = scheduler.schedule_week(&fleet, start + 28, &model, &fabric);
    assert!(!scheduled.is_empty());
    let rescheduled = scheduled
        .iter()
        .filter(|b| matches!(b.decision, ScheduleDecision::Rescheduled { .. }))
        .count();
    assert!(
        rescheduled * 2 > scheduled.len(),
        "a majority of this mostly-stable fleet passes the gate \
         ({rescheduled}/{})",
        scheduled.len()
    );

    // Impact analysis partitions every backup.
    let impact = analyze_impact(&fleet, &scheduled, &ErrorBound::default(), 60.0);
    assert_eq!(
        impact.overall.moved
            + impact.overall.already_optimal
            + impact.overall.incorrect
            + impact.overall.kept_default,
        impact.overall.total
    );
    assert!(impact.overall.incorrect_pct() < 10.0);
}

#[test]
fn runner_service_full_week_availability() {
    let (fleet, spec) = fleet_of(60, 5, 2);
    let start = spec.start_day;
    let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 3);
    let fabric = FabricPropertyStore::new();
    let model = PersistentForecast::previous_day();
    let mut total_due = 0;
    for offset in 0..7 {
        let report = runner.run_day(&fleet, start + 28 + offset, &model, &fabric);
        assert!((report.availability() - 1.0).abs() < 1e-9);
        total_due += report.backups.len();
    }
    let alive: usize = fleet
        .iter()
        .filter(|s| (0..7).any(|o| s.meta.alive_on(start + 28 + o)))
        .count();
    assert!(total_due <= alive);
    assert!(total_due > 0);
    assert!(fabric.server_count() > 0);
}

#[test]
fn missing_region_blob_raises_critical_incident() {
    let (_, spec) = fleet_of(5, 1, 3);
    let store = Arc::new(MemoryBlobStore::new());
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let report = pipeline.run_region_week(&spec.regions[0].name, spec.start_day);
    assert!(report.blocked);
    assert_eq!(pipeline.incidents.open_count(Severity::Critical), 1);
}

#[test]
fn pipeline_is_deterministic_across_instances() {
    let (fleet, spec) = fleet_of(30, 2, 4);
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let weeks = [start, start + 7];

    let run = || {
        let store = Arc::new(MemoryBlobStore::new());
        LoadExtraction::default()
            .run(
                &fleet,
                std::slice::from_ref(&region),
                &weeks,
                store.as_ref(),
            )
            .unwrap();
        let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
        let reports = pipeline.run_schedule(std::slice::from_ref(&region), &weeks);
        (
            reports[1].predictions_written,
            reports[1].evaluations,
            reports[1].accuracy.map(|a| {
                (
                    (a.window_correct_pct * 1000.0) as i64,
                    (a.load_accurate_pct * 1000.0) as i64,
                )
            }),
        )
    };
    assert_eq!(run(), run());
}
