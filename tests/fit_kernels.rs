//! Fit-kernel parity tests: the randomized SSA subspace kernel against the
//! dense Jacobi path at the *forecast* level (not just factorization-level),
//! across window sizes, ranks, and signal seeds — and batched fitting
//! against sequential fitting, bitwise, including error isolation.
//!
//! The properties run under proptest; each also has a fixed deterministic
//! twin so the invariants stay exercised where proptest is unavailable.

use proptest::prelude::*;
use seagull::forecast::ssa::RANDOMIZED_PARITY_TOL;
use seagull::forecast::{ForecastError, Forecaster, SsaConfig, SsaForecaster, SsaKernel};
use seagull::timeseries::{TimeSeries, Timestamp};

/// A mixed daily + fast-cycle signal with deterministic phase/amplitude
/// drawn from `seed`, long enough for any window in the tested range.
fn signal(seed: u64, len: usize) -> TimeSeries {
    let a = 20.0 + (seed % 7) as f64 * 3.0;
    let b = 4.0 + (seed % 5) as f64 * 2.0;
    let phase = (seed % 11) as f64 * 0.37;
    TimeSeries::from_fn(Timestamp::from_days(30), 5, len, |t| {
        let m = t.minutes() as f64;
        50.0 + a * (2.0 * std::f64::consts::PI * m / 1440.0 + phase).sin()
            + b * (2.0 * std::f64::consts::PI * m / 360.0).cos()
            + 2.0 * ((m / 31.0).sin() * (m / 13.0).cos())
    })
    .unwrap()
}

fn ssa(window: usize, max_rank: usize, kernel: SsaKernel) -> SsaForecaster {
    SsaForecaster::new(SsaConfig {
        window,
        max_rank,
        kernel,
        ..SsaConfig::default()
    })
}

/// Max |a - b| across two equal-length forecasts.
fn max_abs_diff(a: &TimeSeries, b: &TimeSeries) -> f64 {
    assert_eq!(a.len(), b.len());
    a.values()
        .iter()
        .zip(b.values())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

/// Forecast-level parity between the two kernels on one configuration.
fn assert_kernel_parity(window: usize, max_rank: usize, seed: u64) {
    let hist = signal(seed, 2016);
    let horizon = 288;
    let fast = ssa(window, max_rank, SsaKernel::Randomized)
        .fit_predict(&hist, horizon)
        .expect("randomized fit");
    let dense = ssa(window, max_rank, SsaKernel::Dense)
        .fit_predict(&hist, horizon)
        .expect("dense fit");
    let diff = max_abs_diff(&fast, &dense);
    assert!(
        diff <= RANDOMIZED_PARITY_TOL,
        "window={window} rank={max_rank} seed={seed}: kernel divergence \
         {diff} exceeds tolerance {RANDOMIZED_PARITY_TOL}"
    );
}

/// Batched fits must be bitwise identical to solo fits of the same
/// histories, position-independently.
fn assert_batch_parity(windows: usize, seeds: &[u64]) {
    let model = ssa(windows, 12, SsaKernel::Auto);
    let histories: Vec<TimeSeries> = seeds.iter().map(|&s| signal(s, 2016)).collect();
    let refs: Vec<&TimeSeries> = histories.iter().collect();
    let batched = model.fit_batch(&refs);
    assert_eq!(batched.len(), refs.len());
    for (i, (h, b)) in histories.iter().zip(&batched).enumerate() {
        let solo = model.fit(h).expect("solo fit").predict(288).unwrap();
        let from_batch = b.as_ref().expect("batched fit").predict(288).unwrap();
        assert_eq!(
            solo.values(),
            from_batch.values(),
            "batch slot {i} diverged from its solo fit"
        );
    }
}

#[test]
fn randomized_matches_dense_across_fixed_grid() {
    // A deterministic sweep over the (window, rank) corners the pipeline
    // actually uses, plus off-default shapes.
    for &(window, rank) in &[(72usize, 12usize), (72, 4), (144, 12), (96, 8), (288, 6)] {
        for seed in [1u64, 17, 90] {
            assert_kernel_parity(window, rank, seed);
        }
    }
}

#[test]
fn batched_fit_is_bitwise_identical_to_sequential() {
    assert_batch_parity(72, &[3, 14, 15, 92, 65]);
    // Single-element and pair batches hit the degenerate grouping paths.
    assert_batch_parity(72, &[42]);
    assert_batch_parity(144, &[7, 7]);
}

#[test]
fn batched_fit_isolates_a_failing_history() {
    let model = ssa(72, 12, SsaKernel::Auto);
    let good_a = signal(5, 2016);
    let good_b = signal(6, 2016);
    // Same shape, poisoned contents: NaN is rejected by every model.
    let mut vals = good_a.values().to_vec();
    vals[100] = f64::NAN;
    let bad = TimeSeries::new(Timestamp::from_days(30), 5, vals).unwrap();
    let refs: Vec<&TimeSeries> = vec![&good_a, &bad, &good_b];
    let results = model.fit_batch(&refs);
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "healthy slot 0 must fit");
    assert!(
        matches!(results[1], Err(ForecastError::NonFiniteHistory)),
        "poisoned slot errs in place"
    );
    assert!(results[2].is_ok(), "healthy slot 2 must fit");
    // The survivors are bitwise identical to solo fits.
    for (h, r) in [(&good_a, &results[0]), (&good_b, &results[2])] {
        let solo = model.fit(h).unwrap().predict(288).unwrap();
        let batched = r.as_ref().unwrap().predict(288).unwrap();
        assert_eq!(solo.values(), batched.values());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized-vs-dense forecast parity holds across arbitrary window
    /// sizes, rank caps, and signal seeds — not just the defaults.
    #[test]
    fn randomized_matches_dense_everywhere(
        window in 48usize..320,
        max_rank in 2usize..16,
        seed in any::<u64>(),
    ) {
        assert_kernel_parity(window, max_rank, seed);
    }

    /// Batched fitting is bitwise identical to sequential fitting for any
    /// batch of same-shape histories, in any order.
    #[test]
    fn batched_fit_parity_everywhere(
        seeds in proptest::collection::vec(any::<u64>(), 1..6),
        window in 48usize..160,
    ) {
        assert_batch_parity(window, &seeds);
    }
}
