//! Serving-layer integration tests: pipeline → snapshot publication →
//! queries, concurrent readers racing mid-flight deploys, old-epoch
//! coherence, breaker admission, and the served scheduler path.

use seagull::backup::{BackupScheduler, FabricPropertyStore, ScheduleDecision, SchedulerConfig};
use seagull::core::pipeline::{AmlPipeline, DeploySink, PipelineConfig, PredictionDoc};
use seagull::core::resilience::BreakerState;
use seagull::core::IncidentManager;
use seagull::serve::{ModelSnapshot, ServeError, ServeService};
use seagull::telemetry::blobstore::MemoryBlobStore;
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A snapshot whose every server carries the same constant value — torn
/// reads (mixing servers from two snapshots) become detectable.
fn uniform_snapshot(version: u64, servers: u64, value: f64) -> ModelSnapshot {
    let docs: Vec<PredictionDoc> = (0..servers)
        .map(|id| PredictionDoc {
            region: "west".into(),
            server_id: id,
            day: 14,
            step_min: 30,
            values: vec![value; 48],
            duration_min: 60,
        })
        .collect();
    ModelSnapshot::from_predictions("west", version, 7, "m", &docs)
}

#[test]
fn concurrent_readers_race_mid_flight_deploys_without_torn_reads() {
    let serve = ServeService::with_defaults();
    const SERVERS: u64 = 16;
    const DEPLOYS: u64 = 200;
    serve.publish(uniform_snapshot(1, SERVERS, 1.0));

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: a deploy storm, one snapshot per version.
        scope.spawn(|| {
            for v in 2..=DEPLOYS {
                serve.publish(uniform_snapshot(v, SERVERS, v as f64));
            }
            stop.store(true, Ordering::Release);
        });
        // Readers: every answer must be internally consistent — all values
        // in a response equal, and whole batches from a single version.
        for _ in 0..4 {
            scope.spawn(|| {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let epoch = serve.epoch("west");
                    assert!(epoch >= last_epoch, "epochs must be monotonic");
                    last_epoch = epoch;

                    let series = serve.predict("west", 3, 48).expect("server 3 exists");
                    let first = series.values()[0];
                    assert!(series.values().iter().all(|v| *v == first), "torn read");

                    let batch = serve
                        .predict_batch("west", &[(0, 4), (7, 4), (15, 4)])
                        .expect("batch admitted");
                    let versions: Vec<f64> = batch
                        .iter()
                        .map(|r| r.as_ref().expect("all servers exist").values()[0])
                        .collect();
                    assert!(
                        versions.iter().all(|v| *v == versions[0]),
                        "batch mixed snapshots: {versions:?}"
                    );
                }
            });
        }
    });

    assert_eq!(serve.epoch("west"), DEPLOYS);
    let last = serve.predict("west", 0, 1).unwrap();
    assert_eq!(last.values()[0], DEPLOYS as f64);
}

#[test]
fn reader_holding_old_epoch_keeps_coherent_prediction_set() {
    let serve = ServeService::with_defaults();
    serve.publish(uniform_snapshot(1, 8, 1.0));
    let held = serve.snapshot("west").expect("published");
    assert_eq!(held.epoch(), 1);

    for v in 2..=50 {
        serve.publish(uniform_snapshot(v, 8, v as f64));
    }

    // The held snapshot is immutable: same epoch, same servers, same values,
    // regardless of the 49 deploys that landed after it.
    assert_eq!(held.epoch(), 1);
    assert_eq!(held.version(), 1);
    assert_eq!(held.len(), 8);
    for id in held.server_ids() {
        let series = held.server(id).unwrap().prediction();
        assert!(series.values().iter().all(|v| *v == 1.0));
    }
    // While the store moved on.
    assert_eq!(serve.epoch("west"), 50);
    assert_eq!(serve.snapshot("west").unwrap().version(), 50);
}

#[test]
fn pipeline_deploys_publish_snapshots_end_to_end() {
    let mut spec = FleetSpec::small_region(7);
    spec.regions[0].servers = 60;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let weeks: Vec<i64> = (0..4).map(|w| start + 7 * w).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(4);

    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &weeks,
            store.as_ref(),
        )
        .unwrap();

    let serve = ServeService::with_defaults();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store)
        .with_deploy_sink(Arc::new(serve.clone()));
    let reports = pipeline.run_schedule(std::slice::from_ref(&region), &weeks);
    assert!(reports.iter().all(|r| !r.blocked));

    // One epoch per weekly deploy; snapshot tracks the registry.
    assert_eq!(serve.epoch(&region), 4);
    let snap = serve.snapshot(&region).expect("deploys published");
    assert_eq!(
        Some(snap.version()),
        reports.last().unwrap().deployed_version
    );
    assert!(
        !snap.is_empty(),
        "snapshot carries the deployed predictions"
    );
    assert_eq!(snap.week_start_day(), start + 21);

    // Served predictions match the documents the pipeline stored.
    let sid = snap.server_ids().next().unwrap();
    let served = serve.predict_day(&region, sid, snap.server(sid).unwrap().materialized_day());
    let series = served.expect("materialized day is servable");
    assert_eq!(series.values().len(), series.len());

    // The served scheduler path reschedules a healthy fleet's backups into
    // snapshot windows and writes fabric properties.
    serve.set_clock_day(start + 28);
    let scheduler = BackupScheduler::new(SchedulerConfig::default());
    let fabric = FabricPropertyStore::new();
    let mut all = Vec::new();
    for offset in 0..7 {
        all.extend(scheduler.schedule_day_served(
            &fleet,
            start + 28 + offset,
            &serve,
            &region,
            &fabric,
        ));
    }
    assert!(!all.is_empty());
    let rescheduled = all
        .iter()
        .filter(|b| matches!(b.decision, ScheduleDecision::Rescheduled { .. }))
        .count();
    assert!(
        rescheduled > 0,
        "some backups land in served windows ({}/{})",
        rescheduled,
        all.len()
    );
    for b in &all {
        assert_eq!(
            fabric.backup_window_start(seagull::telemetry::server::ServerId(b.server_id)),
            Some(b.start)
        );
    }
}

#[test]
fn open_breaker_sheds_serving_traffic_until_cooldown() {
    let serve = ServeService::with_defaults();
    serve.publish(uniform_snapshot(1, 4, 1.0));
    assert!(serve.predict("west", 0, 4).is_ok());

    // Trip the shared breaker the way the pipeline would.
    let incidents = IncidentManager::new();
    for _ in 0..3 {
        serve.breaker().record_failure("west", 0, &incidents);
    }
    assert_eq!(serve.breaker().state("west"), BreakerState::Open);
    assert!(matches!(
        serve.predict("west", 0, 4),
        Err(ServeError::Rejected { .. })
    ));
    assert!(matches!(
        serve.ll_window("west", 0, 14),
        Err(ServeError::Rejected { .. })
    ));

    // Serving's admission check is read-only: it must not consume the
    // breaker's half-open probe budget while the region is open.
    assert_eq!(serve.breaker().state("west"), BreakerState::Open);

    // After the cooldown the pipeline's probe succeeds and serving resumes.
    let cooldown = serve.breaker().config().cooldown_ticks;
    assert!(serve.breaker().allow("west", cooldown));
    serve.breaker().record_success("west", cooldown, &incidents);
    assert_eq!(serve.breaker().state("west"), BreakerState::Closed);
    assert!(serve.predict("west", 0, 4).is_ok());
}

#[test]
fn failed_deploy_keeps_last_known_good_snapshot() {
    let serve = ServeService::with_defaults();
    serve.publish(uniform_snapshot(1, 4, 1.0));
    let epoch_before = serve.epoch("west");

    // A failed deployment fires the fallback hook, not a publish.
    serve.on_fallback("west", 14);
    assert_eq!(serve.epoch("west"), epoch_before, "no swap on fallback");
    let snap = serve.snapshot("west").unwrap();
    assert_eq!(snap.version(), 1, "last-known-good still serving");
    assert_eq!(
        serve
            .obs()
            .registry()
            .counter("seagull_serve_fallback_kept_total", &[("region", "west")])
            .get(),
        1
    );
}
