//! Serving-layer integration tests: pipeline → snapshot publication →
//! queries, concurrent readers racing mid-flight deploys, old-epoch
//! coherence, breaker admission, and the served scheduler path.

use seagull::backup::{BackupScheduler, FabricPropertyStore, ScheduleDecision, SchedulerConfig};
use seagull::core::pipeline::{AmlPipeline, DeploySink, PipelineConfig, PredictionDoc};
use seagull::core::resilience::BreakerState;
use seagull::core::IncidentManager;
use seagull::serve::{ModelSnapshot, ServeError, ServeService};
use seagull::telemetry::blobstore::MemoryBlobStore;
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A snapshot whose every server carries the same constant value — torn
/// reads (mixing servers from two snapshots) become detectable.
fn region_snapshot(region: &str, version: u64, servers: u64, value: f64) -> ModelSnapshot {
    let docs: Vec<PredictionDoc> = (0..servers)
        .map(|id| PredictionDoc {
            region: region.into(),
            server_id: id,
            day: 14,
            step_min: 30,
            values: vec![value; 48],
            duration_min: 60,
        })
        .collect();
    ModelSnapshot::from_predictions(region, version, 7, "m", &docs)
}

fn uniform_snapshot(version: u64, servers: u64, value: f64) -> ModelSnapshot {
    region_snapshot("west", version, servers, value)
}

#[test]
fn concurrent_readers_race_mid_flight_deploys_without_torn_reads() {
    let serve = ServeService::with_defaults();
    const SERVERS: u64 = 16;
    const DEPLOYS: u64 = 200;
    serve.publish(uniform_snapshot(1, SERVERS, 1.0));

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: a deploy storm, one snapshot per version.
        scope.spawn(|| {
            for v in 2..=DEPLOYS {
                serve.publish(uniform_snapshot(v, SERVERS, v as f64));
            }
            stop.store(true, Ordering::Release);
        });
        // Readers: every answer must be internally consistent — all values
        // in a response equal, and whole batches from a single version.
        for _ in 0..4 {
            scope.spawn(|| {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let epoch = serve.epoch("west");
                    assert!(epoch >= last_epoch, "epochs must be monotonic");
                    last_epoch = epoch;

                    let series = serve.predict("west", 3, 48).expect("server 3 exists");
                    let first = series.values()[0];
                    assert!(series.values().iter().all(|v| *v == first), "torn read");

                    let batch = serve
                        .predict_batch("west", &[(0, 4), (7, 4), (15, 4)])
                        .expect("batch admitted");
                    let versions: Vec<f64> = batch
                        .iter()
                        .map(|r| r.as_ref().expect("all servers exist").values()[0])
                        .collect();
                    assert!(
                        versions.iter().all(|v| *v == versions[0]),
                        "batch mixed snapshots: {versions:?}"
                    );
                }
            });
        }
    });

    assert_eq!(serve.epoch("west"), DEPLOYS);
    let last = serve.predict("west", 0, 1).unwrap();
    assert_eq!(last.values()[0], DEPLOYS as f64);
}

#[test]
fn reader_holding_old_epoch_keeps_coherent_prediction_set() {
    let serve = ServeService::with_defaults();
    serve.publish(uniform_snapshot(1, 8, 1.0));
    let held = serve.snapshot("west").expect("published");
    assert_eq!(held.epoch(), 1);

    for v in 2..=50 {
        serve.publish(uniform_snapshot(v, 8, v as f64));
    }

    // The held snapshot is immutable: same epoch, same servers, same values,
    // regardless of the 49 deploys that landed after it.
    assert_eq!(held.epoch(), 1);
    assert_eq!(held.version(), 1);
    assert_eq!(held.len(), 8);
    for id in held.server_ids() {
        let series = held.server(id).unwrap().prediction();
        assert!(series.values().iter().all(|v| *v == 1.0));
    }
    // While the store moved on.
    assert_eq!(serve.epoch("west"), 50);
    assert_eq!(serve.snapshot("west").unwrap().version(), 50);
}

#[test]
fn multi_region_deploy_storms_stay_isolated_across_shards() {
    // Enough regions to land on several store shards; each region's values
    // encode (region index, version) so any cross-region or cross-epoch
    // leak through the sharded map is detectable.
    let serve = ServeService::with_defaults();
    const REGIONS: usize = 12;
    const DEPLOYS: u64 = 60;
    let names: Vec<String> = (0..REGIONS).map(|i| format!("region-{i}")).collect();
    let value_of = |region: usize, version: u64| (region as f64) * 1_000.0 + version as f64;
    for (i, name) in names.iter().enumerate() {
        serve.publish(region_snapshot(name, 1, 4, value_of(i, 1)));
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writers: a deploy storm per region, interleaved across shards.
        scope.spawn(|| {
            for v in 2..=DEPLOYS {
                for (i, name) in names.iter().enumerate() {
                    serve.publish(region_snapshot(name, v, 4, value_of(i, v)));
                }
            }
            stop.store(true, Ordering::Release);
        });
        // Readers: responses must be internally uniform and belong to the
        // queried region's value space, never a neighbor shard's.
        for t in 0..3 {
            let (serve, names, stop) = (&serve, &names, &stop);
            scope.spawn(move || {
                let mut region = t;
                while !stop.load(Ordering::Acquire) {
                    region = (region + 1) % REGIONS;
                    let series = serve
                        .predict(&names[region], 2, 48)
                        .expect("server 2 exists in every region");
                    let first = series.values()[0];
                    assert!(series.values().iter().all(|v| *v == first), "torn read");
                    let version = first - (region as f64) * 1_000.0;
                    assert!(
                        (1.0..=DEPLOYS as f64).contains(&version),
                        "region {region} served a foreign value {first}"
                    );
                }
            });
        }
    });

    for (i, name) in names.iter().enumerate() {
        assert_eq!(serve.epoch(name), DEPLOYS);
        let last = serve.predict(name, 0, 1).unwrap();
        assert_eq!(last.values()[0], value_of(i, DEPLOYS));
    }
    let mut published = serve.regions();
    published.sort();
    let mut expected = names.clone();
    expected.sort();
    assert_eq!(published, expected);

    // Publish-time store metrics cover every publish across all shards.
    let reg = serve.obs().registry();
    let shard_publishes: f64 = (0..16)
        .map(|s| {
            let shard = s.to_string();
            reg.gauge(
                "seagull_serve_shard_publishes",
                &[("shard", shard.as_str())],
            )
            .get()
        })
        .sum();
    assert_eq!(shard_publishes as u64, REGIONS as u64 * DEPLOYS);
    assert_eq!(
        reg.gauge("seagull_serve_snapshots_retired", &[]).get() as u64,
        REGIONS as u64 * (DEPLOYS - 1),
        "every superseded snapshot is retired exactly once"
    );
}

#[test]
fn snapshot_store_gc_frees_retired_snapshots_without_hurting_held_arcs() {
    use seagull::serve::SnapshotStore;

    let store = SnapshotStore::new();
    store.publish(uniform_snapshot(1, 8, 1.0));
    let held = store.load("west").expect("published");

    for v in 2..=40 {
        store.publish(uniform_snapshot(v, 8, v as f64));
    }
    let stats = store.stats();
    assert_eq!(stats.snapshots_retired, 39);
    assert_eq!(stats.publishes_per_shard.iter().sum::<u64>(), 40);

    // No reader pins are active on this thread between store calls, so a
    // collection pass may free every retired snapshot entry. The held Arc
    // is refcounted independently — freeing the store's reference must not
    // disturb it.
    store.collect();
    let gc = store.gc_stats();
    assert_eq!(gc.retired_total, 39);
    assert_eq!(
        gc.freed_total, gc.retired_total,
        "with no active pins, collection frees everything retired"
    );
    assert_eq!(held.version(), 1);
    for id in held.server_ids() {
        let series = held.server(id).unwrap().prediction();
        assert!(series.values().iter().all(|v| *v == 1.0));
    }
    assert_eq!(store.load("west").unwrap().version(), 40);
}

#[test]
fn coalesced_responses_are_byte_identical_to_uncoalesced_under_concurrency() {
    let plain = ServeService::with_defaults();
    let coalesced = ServeService::with_defaults().with_coalescing();
    assert!(coalesced.coalescing() && !plain.coalescing());
    plain.publish(uniform_snapshot(3, 8, 42.0));
    coalesced.publish(uniform_snapshot(3, 8, 42.0));

    // A small key set fanned out over many threads maximizes in-flight
    // overlap; every coalesced answer must match the uncoalesced reference
    // bit for bit (values, grid start, and error classes alike).
    let keys: Vec<(u64, usize)> = vec![(0, 4), (1, 24), (2, 48), (99, 4)];
    let reference: Vec<_> = keys
        .iter()
        .map(|(s, h)| plain.predict("west", *s, *h))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..200 {
                    for (k, (server, horizon)) in keys.iter().enumerate() {
                        let got = coalesced.predict("west", *server, *horizon);
                        let want = &reference[k];
                        match (&got, want) {
                            (Ok(a), Ok(b)) => {
                                assert_eq!(a.start(), b.start());
                                assert_eq!(a.values(), b.values());
                            }
                            (Err(a), Err(b)) => assert_eq!(a, b),
                            _ => panic!("coalesced/uncoalesced outcomes diverged"),
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn pipeline_deploys_publish_snapshots_end_to_end() {
    let mut spec = FleetSpec::small_region(7);
    spec.regions[0].servers = 60;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let weeks: Vec<i64> = (0..4).map(|w| start + 7 * w).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(4);

    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &weeks,
            store.as_ref(),
        )
        .unwrap();

    let serve = ServeService::with_defaults();
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store)
        .with_deploy_sink(Arc::new(serve.clone()));
    let reports = pipeline.run_schedule(std::slice::from_ref(&region), &weeks);
    assert!(reports.iter().all(|r| !r.blocked));

    // One epoch per weekly deploy; snapshot tracks the registry.
    assert_eq!(serve.epoch(&region), 4);
    let snap = serve.snapshot(&region).expect("deploys published");
    assert_eq!(
        Some(snap.version()),
        reports.last().unwrap().deployed_version
    );
    assert!(
        !snap.is_empty(),
        "snapshot carries the deployed predictions"
    );
    assert_eq!(snap.week_start_day(), start + 21);

    // Served predictions match the documents the pipeline stored.
    let sid = snap.server_ids().next().unwrap();
    let served = serve.predict_day(&region, sid, snap.server(sid).unwrap().materialized_day());
    let series = served.expect("materialized day is servable");
    assert_eq!(series.values().len(), series.len());

    // The served scheduler path reschedules a healthy fleet's backups into
    // snapshot windows and writes fabric properties.
    serve.set_clock_day(start + 28);
    let scheduler = BackupScheduler::new(SchedulerConfig::default());
    let fabric = FabricPropertyStore::new();
    let mut all = Vec::new();
    for offset in 0..7 {
        all.extend(scheduler.schedule_day_served(
            &fleet,
            start + 28 + offset,
            &serve,
            &region,
            &fabric,
        ));
    }
    assert!(!all.is_empty());
    let rescheduled = all
        .iter()
        .filter(|b| matches!(b.decision, ScheduleDecision::Rescheduled { .. }))
        .count();
    assert!(
        rescheduled > 0,
        "some backups land in served windows ({}/{})",
        rescheduled,
        all.len()
    );
    for b in &all {
        assert_eq!(
            fabric.backup_window_start(seagull::telemetry::server::ServerId(b.server_id)),
            Some(b.start)
        );
    }
}

#[test]
fn open_breaker_sheds_serving_traffic_until_cooldown() {
    let serve = ServeService::with_defaults();
    serve.publish(uniform_snapshot(1, 4, 1.0));
    assert!(serve.predict("west", 0, 4).is_ok());

    // Trip the shared breaker the way the pipeline would.
    let incidents = IncidentManager::new();
    for _ in 0..3 {
        serve.breaker().record_failure("west", 0, &incidents);
    }
    assert_eq!(serve.breaker().state("west"), BreakerState::Open);
    assert!(matches!(
        serve.predict("west", 0, 4),
        Err(ServeError::Rejected { .. })
    ));
    assert!(matches!(
        serve.ll_window("west", 0, 14),
        Err(ServeError::Rejected { .. })
    ));

    // Serving's admission check is read-only: it must not consume the
    // breaker's half-open probe budget while the region is open.
    assert_eq!(serve.breaker().state("west"), BreakerState::Open);

    // After the cooldown the pipeline's probe succeeds and serving resumes.
    let cooldown = serve.breaker().config().cooldown_ticks;
    assert!(serve.breaker().allow("west", cooldown));
    serve.breaker().record_success("west", cooldown, &incidents);
    assert_eq!(serve.breaker().state("west"), BreakerState::Closed);
    assert!(serve.predict("west", 0, 4).is_ok());
}

#[test]
fn failed_deploy_keeps_last_known_good_snapshot() {
    let serve = ServeService::with_defaults();
    serve.publish(uniform_snapshot(1, 4, 1.0));
    let epoch_before = serve.epoch("west");

    // A failed deployment fires the fallback hook, not a publish.
    serve.on_fallback("west", 14);
    assert_eq!(serve.epoch("west"), epoch_before, "no swap on fallback");
    let snap = serve.snapshot("west").unwrap();
    assert_eq!(snap.version(), 1, "last-known-good still serving");
    assert_eq!(
        serve
            .obs()
            .registry()
            .counter("seagull_serve_fallback_kept_total", &[("region", "west")])
            .get(),
        1
    );
}
