//! Property-based integration tests: invariants of the metric and forecast
//! layers under randomized inputs.

use proptest::prelude::*;
use seagull::core::metrics::{
    bucket_ratio, evaluate_low_load, lowest_load_window, AccuracyConfig, ErrorBound,
};
use seagull::forecast::{Forecaster, PersistentForecast};
use seagull::timeseries::{min_mean_window, TimeSeries, Timestamp};

fn load_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket ratio is always a percentage, and 100 for a perfect forecast.
    #[test]
    fn bucket_ratio_bounds(truth in load_vec(96), noise in load_vec(96)) {
        let bound = ErrorBound::default();
        let r = bucket_ratio(&noise, &truth, &bound).unwrap();
        prop_assert!((0.0..=100.0).contains(&r));
        let perfect = bucket_ratio(&truth, &truth, &bound).unwrap();
        prop_assert_eq!(perfect, 100.0);
    }

    /// The LL window is the argmin over every same-length window.
    #[test]
    fn ll_window_is_global_minimum(values in load_vec(288), len_units in 1usize..48) {
        let day = TimeSeries::new(Timestamp::from_days(10), 5, values).unwrap();
        let duration = (len_units * 5) as u32;
        let w = lowest_load_window(&day, duration).unwrap();
        for start in 0..=(day.len() - len_units) {
            let mean = seagull::timeseries::mean(
                &day.values()[start..start + len_units],
            );
            prop_assert!(w.mean_load <= mean + 1e-9);
        }
    }

    /// min_mean_window and lowest_load_window agree.
    #[test]
    fn window_search_consistency(values in load_vec(96), len_units in 1usize..24) {
        let day = TimeSeries::new(Timestamp::from_days(3), 15, values.clone()).unwrap();
        let w = lowest_load_window(&day, (len_units * 15) as u32).unwrap();
        let m = min_mean_window(&values, len_units).unwrap();
        prop_assert_eq!(w.start, day.timestamp_at(m.start_index));
        prop_assert!((w.mean_load - m.mean).abs() < 1e-9);
    }

    /// A forecast identical to the truth always scores a correct window and
    /// accurate load.
    #[test]
    fn perfect_forecast_always_wins(values in load_vec(288), len_units in 1usize..48) {
        let day = TimeSeries::new(Timestamp::from_days(10), 5, values).unwrap();
        let cfg = AccuracyConfig::default();
        let eval = evaluate_low_load(&day, &day, (len_units * 5) as u32, &cfg).unwrap();
        prop_assert!(eval.window_correct);
        prop_assert!(eval.load_accurate);
        prop_assert_eq!(eval.window_bucket_ratio, 100.0);
    }

    /// Persistent forecast of an exactly daily-periodic series is exact, so
    /// it always evaluates as correct and accurate.
    #[test]
    fn persistent_forecast_exact_on_periodic(day_shape in load_vec(288)) {
        let mut values = day_shape.clone();
        for _ in 0..6 {
            values.extend_from_slice(&day_shape);
        }
        let week = TimeSeries::new(Timestamp::from_days(700), 5, values).unwrap();
        let model = PersistentForecast::previous_day();
        let pred = model.fit_predict(&week, 288).unwrap();
        prop_assert_eq!(pred.values(), &day_shape[..]);
    }

    /// Widening the error bound never flips an accurate prediction to
    /// inaccurate (monotonicity).
    #[test]
    fn wider_bound_is_monotone(truth in load_vec(96), pred in load_vec(96)) {
        let narrow = ErrorBound { over: 5.0, under: 2.5 };
        let wide = ErrorBound { over: 10.0, under: 5.0 };
        let rn = bucket_ratio(&pred, &truth, &narrow).unwrap();
        let rw = bucket_ratio(&pred, &truth, &wide).unwrap();
        prop_assert!(rw >= rn);
    }
}
