//! Crash → restart → recover integration tests (DESIGN.md §12).
//!
//! Each scenario runs the full stack — extraction, fleet pipeline, durable
//! deploy sink, checkpointed fleet runner — kills the "process" at an
//! injected crash point (a stage boundary or a blob-store op), then restarts
//! over the surviving blob store: journal replay republishes last-known-good
//! snapshots, checkpoints skip completed region-weeks, and the remaining
//! work re-runs. The recovered system must answer serving queries and emit
//! backup schedules **byte-identical** to an uninterrupted run.

use seagull::backup::{BackupScheduler, FabricPropertyStore, SchedulerConfig};
use seagull::core::fleet::FleetRunner;
use seagull::core::pipeline::{AmlPipeline, DeploySink, PipelineConfig};
use seagull::core::resilience::{ResiliencePolicy, StageChaos};
use seagull::serve::{snapshot_key, DurableServeSink, RecoveryReport, ServeService};
use seagull::telemetry::blobstore::{BlobStore, MemoryBlobStore};
use seagull::telemetry::chaos::{ChaosBlobStore, ChaosConfig, CrashPoint, InjectedCrash};
use seagull::telemetry::columnar::checksum64;
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use std::fmt::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The fixed scenario fleet: four (small) regions, two weeks.
struct Env {
    fleet: Vec<ServerTelemetry>,
    regions: Vec<String>,
    weeks: Vec<i64>,
}

fn build_env() -> Env {
    let spec = FleetSpec::four_regions(11, 2);
    let start = spec.start_day;
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let fleet = FleetGenerator::new(spec).generate_weeks(2);
    let weeks: Vec<i64> = (0..2).map(|w| start + 7 * w).collect();
    Env {
        fleet,
        regions,
        weeks,
    }
}

/// Deterministic pipeline configuration: byte-identical recovery is defined
/// against a single-threaded, cold-cache run (persisted snapshots do not
/// carry fitted models, so the recovered process serves as if the cache
/// were cold — see `seagull::serve::persist`).
fn config() -> PipelineConfig {
    PipelineConfig {
        threads: 1,
        warm_cache: false,
        ..PipelineConfig::production()
    }
}

/// Where to kill the simulated process.
enum Crash {
    None,
    /// Die at the entry of `stage` for `region` at week `tick`.
    Stage(&'static str, String, i64),
    /// Die at a blob-store op (see [`CrashPoint`]).
    Blob(CrashPoint),
}

/// Digest of everything the outside world can observe from serving: every
/// region's served predictions plus a full week of served backup schedules.
/// Registry versions and snapshot epochs are deliberately excluded — they
/// count deploy *attempts*, which legitimately differ after a restart; the
/// contract is that the *served bytes* do not.
fn digest(env: &Env, serve: &ServeService) -> u64 {
    let mut acc = String::new();
    let final_week = *env.weeks.last().unwrap();
    serve.set_clock_day(final_week + 7);
    let scheduler = BackupScheduler::new(SchedulerConfig::default());
    let fabric = FabricPropertyStore::new();
    for region in &env.regions {
        match serve.snapshot(region) {
            Some(snap) => {
                for id in snap.server_ids() {
                    let sv = snap.server(id).unwrap();
                    let _ = write!(
                        acc,
                        "{region}/{id}@{}+{}m:{:?};",
                        sv.materialized_day(),
                        sv.duration_min(),
                        sv.prediction().values(),
                    );
                }
            }
            None => {
                let _ = write!(acc, "{region}/none;");
            }
        }
        for offset in 0..7 {
            for b in scheduler.schedule_day_served(
                &env.fleet,
                final_week + 7 + offset,
                serve,
                region,
                &fabric,
            ) {
                let _ = write!(
                    acc,
                    "B{region}/{}@{}:{}+{}:{:?};",
                    b.server_id,
                    b.backup_day,
                    b.start.minutes(),
                    b.duration_min,
                    b.decision,
                );
            }
        }
    }
    checksum64(acc.as_bytes())
}

struct RunOutcome {
    digest: u64,
    crashed: bool,
    recovery: Option<RecoveryReport>,
    /// The serving handle answering queries at the end of the run (the
    /// restarted one when a crash fired).
    serve: ServeService,
}

/// Runs the schedule end to end with an optional injected crash; on a crash,
/// restarts over the surviving store and recovers.
fn run(env: &Env, crash: Crash) -> RunOutcome {
    // The "disk": survives the crash. Extraction happens before the process
    // under test starts, so it is written directly.
    let disk = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&env.fleet, &env.regions, &env.weeks, disk.as_ref())
        .unwrap();

    let chaos = Arc::new(ChaosBlobStore::new(
        Arc::clone(&disk) as Arc<dyn BlobStore>,
        ChaosConfig::default(),
    ));
    let policy = match &crash {
        Crash::Stage(stage, region, tick) => {
            let (s, r, t) = (*stage, region.clone(), *tick);
            ResiliencePolicy {
                chaos: StageChaos::kill_at(move |stage, region, tick| {
                    stage == s && region == r && tick == t
                }),
                ..ResiliencePolicy::default()
            }
        }
        _ => ResiliencePolicy::default(),
    };
    if let Crash::Blob(point) = crash {
        chaos.arm_crash(point);
    }

    let serve = ServeService::with_defaults();
    let sink = Arc::new(DurableServeSink::new(
        serve.clone(),
        Arc::clone(&chaos) as Arc<dyn BlobStore>,
    ));
    let pipeline =
        AmlPipeline::with_resilience(config(), Arc::clone(&chaos) as Arc<dyn BlobStore>, policy)
            .with_deploy_sink(Arc::clone(&sink) as Arc<dyn DeploySink>);
    let runner = FleetRunner::new(pipeline, env.regions.clone())
        .with_checkpoints(Arc::clone(&chaos) as Arc<dyn BlobStore>);

    match catch_unwind(AssertUnwindSafe(|| runner.run_schedule(&env.weeks))) {
        Ok(_) => RunOutcome {
            digest: digest(env, &serve),
            crashed: false,
            recovery: None,
            serve,
        },
        Err(payload) => {
            // Only the injected crash may panic; anything else is a bug.
            let crash = match payload.downcast::<InjectedCrash>() {
                Ok(crash) => crash,
                Err(other) => resume_unwind(other),
            };
            assert!(!crash.context.is_empty());
            // "Restart": fresh process state, same disk. The dead chaos
            // wrapper is discarded with the dead process.
            let serve2 = ServeService::with_defaults();
            let (sink2, report) =
                DurableServeSink::recover(serve2.clone(), Arc::clone(&disk) as Arc<dyn BlobStore>)
                    .unwrap();
            let pipeline2 = AmlPipeline::new(config(), Arc::clone(&disk) as Arc<dyn BlobStore>)
                .with_deploy_sink(Arc::new(sink2) as Arc<dyn DeploySink>);
            let runner2 = FleetRunner::new(pipeline2, env.regions.clone())
                .with_checkpoints(Arc::clone(&disk) as Arc<dyn BlobStore>);
            runner2.run_schedule(&env.weeks);
            RunOutcome {
                digest: digest(env, &serve2),
                crashed: true,
                recovery: Some(report),
                serve: serve2,
            }
        }
    }
}

#[test]
fn stage_crashes_recover_byte_identical_serving_and_schedules() {
    let env = build_env();
    let baseline = run(&env, Crash::None);
    assert!(!baseline.crashed);

    // Earliest possible death (before any deploy is journaled) and a death
    // mid-deployment in the final week (after some regions completed it).
    let cases = [
        ("ingestion", env.regions[0].clone(), env.weeks[0]),
        ("deployment", env.regions[2].clone(), env.weeks[1]),
        ("accuracy-eval", env.regions[3].clone(), env.weeks[1]),
    ];
    for (stage, region, week) in cases {
        let out = run(&env, Crash::Stage(stage, region.clone(), week));
        assert!(out.crashed, "kill point at {stage}/{region} must fire");
        assert_eq!(
            out.digest, baseline.digest,
            "recovered run diverged after dying at {stage}/{region}@{week}"
        );
        let report = out.recovery.unwrap();
        assert!(
            report.regions_unrecovered.is_empty(),
            "journaled regions must recover: {report:?}"
        );
    }
}

#[test]
fn deploy_boundary_blob_crashes_recover_byte_identical() {
    let env = build_env();
    let baseline = run(&env, Crash::None);

    // Torn journal write, torn snapshot write, completed-then-died journal
    // write, and a death on a checkpoint-marker write.
    let points = [
        CrashPoint::on_key("journal", 2, 0.5),
        CrashPoint::on_key("snapshot", 3, 0.25),
        CrashPoint::on_key("journal", 4, 1.0),
        // Checkpoint ops 1-4 are the week's existence probes (gets); nth 6
        // is the second completed region's marker *write*, torn mid-record.
        CrashPoint::on_key("checkpoint", 6, 0.6),
    ];
    for point in points {
        let ctx = format!("{:?}", point.spec);
        let out = run(&env, Crash::Blob(point));
        assert!(out.crashed, "blob crash {ctx} must fire");
        assert_eq!(
            out.digest, baseline.digest,
            "recovered run diverged after blob crash {ctx}"
        );
    }
}

#[test]
fn recovery_counters_land_in_the_stable_export() {
    let env = build_env();
    // Die in the last week so the journal already holds first-week deploys.
    let out = run(
        &env,
        Crash::Stage("deployment", env.regions[0].clone(), env.weeks[1]),
    );
    assert!(out.crashed);
    let report = out.recovery.unwrap();
    assert!(report.journal_records > 0, "first-week deploys journaled");
    assert!(report.snapshots_restored > 0, "snapshots republished");
    let registry = out.serve.obs().registry();
    assert_eq!(
        registry
            .counter("seagull_recovery_journal_records_replayed_total", &[])
            .get(),
        report.journal_records as u64
    );
    assert_eq!(
        registry
            .counter("seagull_recovery_snapshots_restored_total", &[])
            .get(),
        report.snapshots_restored as u64
    );
    let export = out.serve.obs().stable_export();
    assert!(export.contains("seagull_recovery_journal_records_replayed_total"));
    assert!(export.contains("seagull_recovery_snapshots_restored_total"));
}

#[test]
fn torn_newest_snapshot_serves_previous_journaled_epoch() {
    let env = build_env();
    // A clean, crash-free run writing through the durable sink.
    let disk = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&env.fleet, &env.regions, &env.weeks, disk.as_ref())
        .unwrap();
    let serve = ServeService::with_defaults();
    let sink = Arc::new(DurableServeSink::new(
        serve.clone(),
        Arc::clone(&disk) as Arc<dyn BlobStore>,
    ));
    let pipeline = AmlPipeline::new(config(), Arc::clone(&disk) as Arc<dyn BlobStore>)
        .with_deploy_sink(Arc::clone(&sink) as Arc<dyn DeploySink>);
    pipeline.run_schedule(&env.regions, &env.weeks);

    let region = &env.regions[3];
    let newest_seq = sink.next_seq(region) - 1;
    assert!(newest_seq >= 2, "two weeks deploy at least two epochs");
    let key = snapshot_key(region, newest_seq);
    let whole = disk.get(&key).unwrap();
    // Tear the newest snapshot blob, as a crash mid-put would.
    disk.put(&key, whole.slice(0..whole.len() / 2)).unwrap();

    let serve2 = ServeService::with_defaults();
    let (_, report) =
        DurableServeSink::recover(serve2.clone(), Arc::clone(&disk) as Arc<dyn BlobStore>).unwrap();
    assert!(
        report.snapshot_fallbacks >= 1,
        "torn blob skipped: {report:?}"
    );
    assert!(report.regions_unrecovered.is_empty());
    // The region serves the previous journaled epoch — never a torn read.
    let recovered = serve2.snapshot(region).expect("region recovered");
    assert_eq!(recovered.week_start_day(), env.weeks[0]);
    assert_eq!(
        serve.snapshot(region).unwrap().week_start_day(),
        env.weeks[1],
        "pre-crash process was serving the newest epoch"
    );
    // Every other region still recovers its newest snapshot.
    for other in &env.regions[..3] {
        assert_eq!(
            serve2.snapshot(other).unwrap().week_start_day(),
            env.weeks[1],
            "untorn region {other} restores its newest epoch"
        );
    }
}

#[test]
fn checkpoints_skip_completed_regions_after_restart() {
    let env = build_env();
    // Kill during the final week once two regions have already completed it:
    // region order is the fan-out order, so dying at region index 2's first
    // stage leaves regions 0 and 1 checkpointed for that week.
    let out = run(
        &env,
        Crash::Stage("ingestion", env.regions[2].clone(), env.weeks[1]),
    );
    assert!(out.crashed);
    let baseline = run(&env, Crash::None);
    assert_eq!(out.digest, baseline.digest);

    // Now observe the skip directly: a fully-completed schedule re-run over
    // the same checkpoint store runs nothing.
    let disk = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&env.fleet, &env.regions, &env.weeks, disk.as_ref())
        .unwrap();
    let pipeline = AmlPipeline::new(config(), Arc::clone(&disk) as Arc<dyn BlobStore>);
    let runner = FleetRunner::new(pipeline, env.regions.clone())
        .with_checkpoints(Arc::clone(&disk) as Arc<dyn BlobStore>);
    let first = runner.run_schedule(&env.weeks);
    assert_eq!(first.len(), env.regions.len() * env.weeks.len());
    let rerun = runner.run_schedule(&env.weeks);
    assert!(rerun.is_empty(), "all region-weeks checkpointed");
    for region in &env.regions {
        for &week in &env.weeks {
            assert!(runner.completed(region, week));
        }
    }
}
