//! Load-test harness integration: seeded generators driving a real
//! [`ServeService`], digest determinism across worker counts, knee finding
//! on measured sweeps, and overload shed → cooldown recovery end to end.

use seagull::core::pipeline::PredictionDoc;
use seagull::core::IncidentManager;
use seagull::serve::{ModelSnapshot, ServeError, ServeService};
use seagull_bench::loadtest::{
    find_knee, fnv1a_fold_f64s, fnv1a_fold_u64, ClosedLoop, LoadRun, OpenLoop, OverloadStats,
    SweepPoint, FNV_OFFSET,
};
use std::time::Instant;

fn publish_uniform(serve: &ServeService, region: &str, servers: u64, value: f64) {
    let docs: Vec<PredictionDoc> = (0..servers)
        .map(|id| PredictionDoc {
            region: region.into(),
            server_id: id,
            day: 14,
            step_min: 30,
            values: vec![value; 48],
            duration_min: 60,
        })
        .collect();
    serve.publish(ModelSnapshot::from_predictions(region, 1, 7, "m", &docs));
}

/// Digest one prediction the way the bench does: timestamp + exact value
/// bits, or the error rendering.
fn digest(serve: &ServeService, region: &str, server: u64, horizon: usize) -> u64 {
    match serve.predict(region, server, horizon) {
        Ok(s) => {
            let h = fnv1a_fold_u64(FNV_OFFSET, s.start().minutes() as u64);
            fnv1a_fold_f64s(h, s.values())
        }
        Err(e) => fnv1a_fold_u64(FNV_OFFSET, format!("err:{e}").len() as u64),
    }
}

#[test]
fn generators_are_seeded_and_deterministic() {
    let a = OpenLoop::new(11)
        .rate_qps(50_000.0)
        .requests(400)
        .arrivals();
    let b = OpenLoop::new(11)
        .rate_qps(50_000.0)
        .requests(400)
        .arrivals();
    assert_eq!(a, b);
    assert!(a.windows(2).all(|w| w[0] <= w[1]), "schedule is monotone");
    assert_eq!(
        OpenLoop::new(11).rate_qps(50_000.0).requests(400).len(),
        400
    );
    assert_eq!(ClosedLoop::new(2).requests(300).len(), 300);
}

#[test]
fn closed_loop_digest_is_identical_across_worker_counts_on_a_live_service() {
    let serve = ServeService::with_defaults();
    publish_uniform(&serve, "west", 16, 7.5);
    let query = |i: usize| digest(&serve, "west", (i % 20) as u64, 1 + i % 48);

    let one = ClosedLoop::new(1).requests(2_000).run(query);
    let four = ClosedLoop::new(4).requests(2_000).run(query);
    assert_eq!(
        one.digest, four.digest,
        "the read path must answer identically no matter how many workers race"
    );
    assert_eq!(one.latencies_us.len(), 2_000);
}

#[test]
fn open_loop_digest_is_identical_across_thread_counts_on_a_live_service() {
    let serve = ServeService::with_defaults().with_coalescing();
    publish_uniform(&serve, "west", 16, 3.25);
    let query = |i: usize| digest(&serve, "west", (i % 20) as u64, 1 + i % 48);

    let gen = OpenLoop::new(5).rate_qps(200_000.0).requests(2_000);
    let one = gen.run(1, query);
    let four = gen.run(4, query);
    assert_eq!(one.digest, four.digest);
    assert_eq!(one.offered_qps, Some(200_000.0));
}

#[test]
fn sweep_points_and_knee_compose_from_runs() {
    // Synthetic runs (sorted latencies, fixed walls) keep the knee check
    // timing-independent while exercising the same types the bench uses.
    let run_at = |offered: f64, achieved: f64, lat: Vec<f64>| LoadRun {
        latencies_us: lat,
        wall_s: 1.0,
        offered_qps: Some(offered),
        achieved_qps: achieved,
        digest: 0,
    };
    let healthy = SweepPoint::from_run(&run_at(1_000.0, 990.0, vec![1.0, 2.0, 3.0, 4.0]));
    assert_eq!(healthy.p50_us, 2.0);
    assert_eq!(healthy.p99_us, 4.0);
    assert!(healthy.absorbed(100.0));

    let saturated = SweepPoint::from_run(&run_at(2_000.0, 1_200.0, vec![500.0, 900.0]));
    assert!(!saturated.absorbed(100.0));
    assert_eq!(find_knee(&[healthy, saturated], 100.0), Some(0));
}

#[test]
fn overload_sheds_through_the_generator_and_recovers_after_cooldown() {
    let serve = ServeService::with_defaults();
    publish_uniform(&serve, "west", 8, 1.0);
    publish_uniform(&serve, "east", 8, 2.0);

    // Trip west the way the pipeline would; east stays healthy.
    let incidents = IncidentManager::new();
    let threshold = serve.breaker().config().trip_threshold;
    for _ in 0..threshold {
        serve.breaker().record_failure("west", 0, &incidents);
    }

    // Drive a closed-loop burst across both regions and classify outcomes.
    let outcomes: Vec<(f64, bool)> = (0..400)
        .map(|i| {
            let region = if i % 2 == 0 { "west" } else { "east" };
            let q0 = Instant::now();
            let result = serve.predict(region, (i % 8) as u64, 4);
            let lat = q0.elapsed().as_secs_f64() * 1e6;
            let shed = matches!(result, Err(ServeError::Rejected { .. }));
            assert_eq!(shed, region == "west", "only the tripped region sheds");
            (lat, shed)
        })
        .collect();
    let stats = OverloadStats::classify(&outcomes);
    assert_eq!(stats.shed, 200);
    assert_eq!(stats.served, 200);
    assert!((stats.shed_fraction() - 0.5).abs() < 1e-12);

    // Cooldown elapses → half-open probe admitted → success closes the
    // breaker → the previously shedding region serves again.
    let cooldown = serve.breaker().config().cooldown_ticks;
    assert!(serve.breaker().allow("west", cooldown));
    serve.breaker().record_success("west", cooldown, &incidents);
    let recovered = serve.predict("west", 0, 4);
    assert!(recovered.is_ok(), "region serves again after recovery");
    assert_eq!(recovered.unwrap().values()[0], 1.0);
}
