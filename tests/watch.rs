//! Watchtower integration tests: the full observability loop over a seeded
//! fleet — SLO breach → burn-rate alert → incident → recovery → alert
//! clear — plus staleness alerting under repeated deploy failures and the
//! deployment-accuracy series populated from served-vs-actual scoring.

use seagull::core::pipeline::{AmlPipeline, PipelineConfig};
use seagull::core::resilience::{ResiliencePolicy, StageChaos};
use seagull::core::{IncidentManager, Severity};
use seagull::obs::Obs;
use seagull::serve::ServeService;
use seagull::telemetry::blobstore::{BlobStore, MemoryBlobStore};
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec, RegionSpec, ServerTelemetry};
use seagull::watch::{AccuracyMonitor, BurnRatePair, SloSpec, WatchEngine, WatchReport};
use std::sync::Arc;

/// Two regions, `weeks` weeks of telemetry, extracted into a shared store.
fn two_region_store(seed: u64, weeks: usize) -> (Arc<MemoryBlobStore>, Vec<String>, Vec<i64>) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = 8;
    spec.regions.push(RegionSpec {
        name: "region-b".into(),
        servers: 8,
    });
    let start = spec.start_day;
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(weeks);
    let store = Arc::new(MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .unwrap();
    (store, regions, week_days)
}

/// The paging pair alone, so recovery inside the test window can drain
/// every alerting window (the slow 6h/3d pair is exercised in unit tests).
fn fast_pair_only() -> Vec<BurnRatePair> {
    vec![BurnRatePair {
        name: "fast",
        long: 60,
        short: 5,
        factor: 14.4,
        severity: Severity::Critical,
    }]
}

/// The acceptance loop: a fleet schedule deploys snapshots and feeds the
/// accuracy monitor; a seeded regional outage on the serving path breaches
/// the error-rate SLO, the burn-rate alert fires a Critical incident for
/// exactly the broken region, recovery clears it, and the watch report
/// carries the deployment-accuracy series the pipeline scored.
#[test]
fn regional_outage_drives_breach_alert_incident_recovery_clear() {
    let (store, regions, week_days) = two_region_store(0x5ea9, 3);

    // Pipeline → serve (deploy sink) + accuracy monitor (accuracy sink).
    let serve = ServeService::with_defaults();
    let monitor = Arc::new(AccuracyMonitor::default());
    let pipeline = AmlPipeline::new(
        PipelineConfig {
            threads: 2,
            warm_cache: true,
            ..PipelineConfig::production()
        },
        Arc::clone(&store) as Arc<dyn BlobStore>,
    )
    .with_deploy_sink(Arc::new(serve.clone()))
    .with_accuracy_sink(Arc::clone(&monitor) as Arc<_>);
    pipeline.run_schedule(&regions, &week_days);

    // Served-vs-actual scoring populated the accuracy series: week 1 has no
    // prior predictions to score, weeks 2 and 3 do.
    for region in &regions {
        let trend = monitor.trend(region);
        assert_eq!(
            trend.len(),
            2,
            "{region}: two scored weeks expected, got {trend:?}"
        );
    }

    // Watch engine over the pipeline's incident log (shared handle).
    let mut engine =
        WatchEngine::new(Obs::new(), pipeline.incidents.clone()).with_pairs(fast_pair_only());
    engine.add_slo(SloSpec::error_rate("serve-errors", 0.99).with_window(120));
    let valid: Vec<u64> = regions
        .iter()
        .map(|r| {
            serve
                .snapshot(r)
                .expect("schedule published snapshots")
                .server_ids()
                .next()
                .expect("snapshot non-empty")
        })
        .collect();

    // 240 virtual minutes of traffic; region-a's queries go dark (unknown
    // server id — every request errors) for minutes 61..=120.
    let mut fired_at = None;
    let mut cleared_at = None;
    for tick in 1..=240u64 {
        for (r, region) in regions.iter().enumerate() {
            let outage = region == "region-a" && (61..=120).contains(&tick);
            let server = if outage { u64::MAX } else { valid[r] };
            let (mut good, mut bad) = (0, 0);
            for q in 0..4 {
                let horizon = 1 + ((tick + q) % 48) as usize;
                match serve.predict(region, server, horizon) {
                    Ok(_) => good += 1,
                    Err(_) => bad += 1,
                }
            }
            assert_eq!(good + bad, 4);
            engine.record("serve-errors", region, tick, good, bad);
        }
        for t in engine.evaluate(tick) {
            assert_eq!(t.region, "region-a", "only the broken region alerts");
            assert_eq!(t.pair, "fast");
            if t.fired {
                assert!(fired_at.is_none(), "alert must fire exactly once");
                fired_at = Some(tick);
            } else {
                assert!(fired_at.is_some());
                cleared_at = Some(tick);
            }
        }
        // While the alert is open, the incident log holds the Critical and
        // the region's health gauge is down.
        if fired_at.is_some() && cleared_at.is_none() {
            assert!(pipeline
                .incidents
                .open()
                .iter()
                .any(|i| i.source == "slo:serve-errors:fast"
                    && i.region == "region-a"
                    && i.severity == Severity::Critical));
        }
    }
    let fired_at = fired_at.expect("burn-rate alert fired");
    let cleared_at = cleared_at.expect("burn-rate alert cleared");
    assert!(
        (61..=130).contains(&fired_at),
        "fired at {fired_at}, expected during the outage"
    );
    assert!(cleared_at > 120, "cleared at {cleared_at}, after recovery");
    assert!(engine.open_alerts().is_empty());
    assert!(
        !pipeline
            .incidents
            .open()
            .iter()
            .any(|i| i.source.starts_with("slo:")),
        "slo incidents all resolved"
    );
    // The incident was deduped: one fast-pair incident total, raised once.
    let slo_incidents: Vec<_> = pipeline
        .incidents
        .all()
        .into_iter()
        .filter(|i| i.source == "slo:serve-errors:fast")
        .collect();
    assert_eq!(slo_incidents.len(), 1);
    assert_eq!(slo_incidents[0].count, 1);
    let healthy = engine
        .obs()
        .registry()
        .gauge("seagull_watch_region_healthy", &[("region", "region-a")])
        .get();
    assert_eq!(healthy, 1.0, "region-a healthy again after recovery");

    // Accuracy sweep lands gauges in the watch registry and the report
    // carries every section.
    monitor.sweep(engine.obs(), engine.incidents(), Some(&pipeline.cache));
    let report = WatchReport::collect(&engine, Some(&monitor), 240);
    assert_eq!(report.slos.len(), 2, "one SLO x two regions");
    assert!(report.alerts.is_empty());
    assert_eq!(report.accuracy.len(), 2);
    assert!(report.accuracy.iter().all(|a| !a.trend.is_empty()));
    let json = report.to_json();
    assert!(json.contains("serve-errors"));
    assert!(json.contains("region-a"));
}

/// Satellite: repeated deploy failures age the serving snapshot past the
/// staleness SLO — exactly one deduped incident is raised, and the next
/// successful deploy (plus a clean window) clears it.
#[test]
fn staleness_under_delayed_deploys_raises_one_incident_then_clears() {
    let mut spec = FleetSpec::small_region(0xdead);
    spec.regions[0].servers = 8;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let week_days: Vec<i64> = (0..4).map(|w| start + 7 * w).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(4);
    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &week_days,
            store.as_ref(),
        )
        .unwrap();

    // Chaos: the deployment stage hard-fails for weeks 2 and 3 (the hook's
    // tick is the week start day), so the week-1 snapshot keeps serving.
    let (bad1, bad2) = (week_days[1], week_days[2]);
    let policy = ResiliencePolicy {
        chaos: StageChaos::from_fn(move |stage, _, tick, _| {
            stage == "deployment" && (tick == bad1 || tick == bad2)
        }),
        ..ResiliencePolicy::default()
    };
    let serve = ServeService::with_defaults();
    let pipeline = AmlPipeline::with_resilience(
        PipelineConfig::production(),
        Arc::clone(&store) as Arc<dyn BlobStore>,
        policy,
    )
    .with_deploy_sink(Arc::new(serve.clone()));

    // Staleness SLO on a day-granular clock: snapshot at most 14 days old
    // for 90% of observations; a one-week alert window.
    let mut engine =
        WatchEngine::new(Obs::new(), IncidentManager::new()).with_pairs(vec![BurnRatePair {
            name: "staleness-burn",
            long: 7,
            short: 2,
            factor: 1.0,
            severity: Severity::Critical,
        }]);
    engine.add_slo(SloSpec::staleness_under("snapshot-fresh", 14, 0.9).with_window(7));

    // Day loop: each week's run happens once its telemetry is complete
    // (week start + 7); every day observes staleness and evaluates.
    let mut week = 0;
    for day in start..=start + 35 {
        if week < week_days.len() && day == week_days[week] + 7 {
            pipeline.run_region_week(&region, week_days[week]);
            week += 1;
        }
        serve.set_clock_day(day);
        let tick = (day - start + 1) as u64;
        // Staleness is only meaningful once a snapshot exists (first deploy
        // lands at start + 7).
        if let Some(staleness) = serve.staleness_days(&region) {
            engine.observe_staleness("snapshot-fresh", &region, tick, staleness);
        }
        engine.evaluate(tick);
    }
    assert_eq!(week, 4, "all four weeks ran");

    // Two failed deploys kept last-known-good...
    assert_eq!(
        serve
            .obs()
            .registry()
            .counter(
                "seagull_serve_fallback_kept_total",
                &[("region", region.as_str())]
            )
            .get(),
        2
    );
    // ...week 4's successful deploy refreshed the snapshot...
    assert_eq!(
        serve.snapshot(&region).unwrap().week_start_day(),
        week_days[3]
    );
    // ...and the staleness breach raised exactly one deduped incident,
    // now resolved.
    let staleness_incidents: Vec<_> = engine
        .incidents()
        .all()
        .into_iter()
        .filter(|i| i.source == "slo:snapshot-fresh:staleness-burn")
        .collect();
    assert_eq!(
        staleness_incidents.len(),
        1,
        "exactly one staleness incident: {staleness_incidents:?}"
    );
    assert_eq!(staleness_incidents[0].count, 1, "deduped, raised once");
    assert_eq!(staleness_incidents[0].region, region);
    assert!(engine.open_alerts().is_empty(), "cleared after recovery");
    assert_eq!(engine.incidents().open_total(), 0);
}
