//! `seagull-cli` — drive the Seagull system from the command line.
//!
//! Subcommands:
//!
//! * `simulate`  — generate a synthetic fleet and write extracted weekly
//!   CSV blobs to a directory (the ADLS layout).
//! * `classify`  — classify a fleet and print the Figure-3 breakdown.
//! * `pipeline`  — run the weekly AML pipeline end-to-end and print the
//!   dashboard.
//! * `schedule`  — run the backup scheduler for one week and summarize
//!   decisions.
//! * `forecast`  — fit a chosen model on one synthetic server and print its
//!   predicted lowest-load window.
//!
//! Run `seagull-cli help` (or any subcommand with `--help`) for flags.

use seagull::backup::{BackupScheduler, FabricPropertyStore, ScheduleDecision, SchedulerConfig};
use seagull::core::classify::{classify_fleet_with, ClassifyConfig, ServerClass};
use seagull::core::metrics::lowest_load_window;
use seagull::core::pipeline::{AmlPipeline, PipelineConfig};
use seagull::core::Dashboard;
use seagull::forecast::additive::FitMethod;
use seagull::forecast::{
    AdditiveConfig, AdditiveForecaster, ArimaConfig, ArimaForecaster, FeedForwardForecaster,
    Forecaster, PersistentForecast, PersistentVariant, SsaForecaster,
};
use seagull::telemetry::blobstore::DiskBlobStore;
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec};
use seagull::telemetry::server::GeneratedClass;
use seagull::timeseries::Timestamp;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

/// Minimal `--flag value` parser.
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument {a:?} (flags are --name value)"
                ));
            };
            if name == "help" {
                flags.insert("help".to_string(), "true".to_string());
                continue;
            }
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn wants_help(&self) -> bool {
        self.flags.contains_key("help")
    }
}

fn usage() -> &'static str {
    "seagull-cli — Seagull load prediction & backup scheduling\n\
     \n\
     USAGE: seagull-cli <command> [--flag value ...]\n\
     \n\
     COMMANDS:\n\
       simulate   --servers N --weeks W --seed S --out DIR\n\
       classify   --servers N --weeks W --seed S\n\
       pipeline   --servers N --weeks W --seed S\n\
       schedule   --servers N --seed S\n\
       forecast   --model persistent|ssa|feedforward|additive|arima\n\
                  --class stable|daily|weekly|unstable --seed S\n\
       help\n"
}

fn fleet_spec(args: &Args) -> Result<FleetSpec, String> {
    let servers: usize = args.get("servers", 100)?;
    let seed: u64 = args.get("seed", 42)?;
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = servers;
    Ok(spec)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let spec = fleet_spec(args)?;
    let weeks: usize = args.get("weeks", 4)?;
    let out = args.get_str("out", "./seagull-data");
    let start = spec.start_day;
    let region = spec.regions[0].name.clone();
    let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
    let store = DiskBlobStore::open(&out).map_err(|e| e.to_string())?;
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    let keys = LoadExtraction::default()
        .run(&fleet, &[region], &week_days, &store)
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} weekly blobs for {} servers under {out}",
        keys.len(),
        fleet.len()
    );
    for k in keys {
        println!("  {k}");
    }
    Ok(())
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let spec = fleet_spec(args)?;
    let weeks: usize = args.get("weeks", 4)?;
    let as_of = spec.start_day + (weeks * 7) as i64;
    let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
    let report = classify_fleet_with(&fleet, as_of, &ClassifyConfig::default());
    println!("classified {} servers:", report.total());
    for class in [
        ServerClass::ShortLived,
        ServerClass::Stable,
        ServerClass::DailyPattern,
        ServerClass::WeeklyPattern,
        ServerClass::NoPattern,
    ] {
        println!(
            "  {:<15} {:>7.2}%  ({})",
            class.label(),
            report.percentage(class),
            report.count(class)
        );
    }
    Ok(())
}

fn cmd_pipeline(args: &Args) -> Result<(), String> {
    let spec = fleet_spec(args)?;
    let weeks: usize = args.get("weeks", 3)?;
    let start = spec.start_day;
    let region = spec.regions[0].name.clone();
    let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
    let store = Arc::new(seagull::telemetry::blobstore::MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &week_days,
            store.as_ref(),
        )
        .map_err(|e| e.to_string())?;
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let dashboard = Dashboard::new();
    for report in pipeline.run_schedule(&[region], &week_days) {
        dashboard.record(report);
    }
    print!("{}", dashboard.render(&pipeline.incidents));
    Ok(())
}

fn cmd_schedule(args: &Args) -> Result<(), String> {
    let spec = fleet_spec(args)?;
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(5);
    let scheduler = BackupScheduler::new(SchedulerConfig::default());
    let fabric = FabricPropertyStore::new();
    let model = PersistentForecast::previous_day();
    let scheduled = scheduler.schedule_week(&fleet, start + 28, &model, &fabric);
    let rescheduled = scheduled
        .iter()
        .filter(|b| matches!(b.decision, ScheduleDecision::Rescheduled { .. }))
        .count();
    println!(
        "scheduled {} backups for week starting day {}:",
        scheduled.len(),
        start + 28
    );
    println!("  moved into predicted lowest-load windows: {rescheduled}");
    println!("  kept at default time: {}", scheduled.len() - rescheduled);
    let mut by_reason: HashMap<String, usize> = HashMap::new();
    for b in &scheduled {
        if let ScheduleDecision::DefaultKept { reason } = b.decision {
            *by_reason.entry(format!("{reason:?}")).or_default() += 1;
        }
    }
    for (reason, n) in by_reason {
        println!("    {reason}: {n}");
    }
    Ok(())
}

fn cmd_forecast(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get("seed", 42)?;
    let class = match args.get_str("class", "daily").as_str() {
        "stable" => GeneratedClass::Stable,
        "daily" => GeneratedClass::DailyPattern,
        "weekly" => GeneratedClass::WeeklyPattern,
        "unstable" => GeneratedClass::Unstable,
        other => return Err(format!("unknown class {other:?}")),
    };
    // A one-server fleet of the requested class.
    let mix = seagull::telemetry::fleet::ClassMix {
        short_lived: 0.0,
        stable: if class == GeneratedClass::Stable {
            1.0
        } else {
            0.0
        },
        daily: if class == GeneratedClass::DailyPattern {
            1.0
        } else {
            0.0
        },
        weekly: if class == GeneratedClass::WeeklyPattern {
            1.0
        } else {
            0.0
        },
        unstable: if class == GeneratedClass::Unstable {
            1.0
        } else {
            0.0
        },
    };
    let spec = FleetSpec {
        seed,
        regions: vec![seagull::telemetry::fleet::RegionSpec {
            name: "cli".into(),
            servers: 1,
        }],
        start_day: 17_997,
        grid_min: 5,
        mix,
        capacity_reaching: 0.0,
    };
    let start = spec.start_day;
    let server = FleetGenerator::new(spec).generate_weeks(2).remove(0);

    let model_name = args.get_str("model", "persistent");
    let persistent = PersistentForecast::new(PersistentVariant::PreviousDay);
    let ssa = SsaForecaster::default();
    let ff = FeedForwardForecaster::default();
    let additive = AdditiveForecaster::new(AdditiveConfig {
        fit: FitMethod::Exact,
        ..AdditiveConfig::default()
    });
    let arima = ArimaForecaster::new(ArimaConfig {
        max_p: 1,
        max_d: 1,
        max_q: 1,
        max_sp: 0,
        max_sd: 1,
        max_sq: 0,
        period: 288,
        refine_iterations: 10,
        prescreen: true,
    });
    let model: &dyn Forecaster = match model_name.as_str() {
        "persistent" => &persistent,
        "ssa" => &ssa,
        "feedforward" => &ff,
        "additive" => &additive,
        "arima" => &arima,
        other => return Err(format!("unknown model {other:?}")),
    };

    let backup_day = start + 8;
    let history = server
        .series
        .slice(
            Timestamp::from_days(backup_day - 7),
            Timestamp::from_days(backup_day),
        )
        .map_err(|e| e.to_string())?;
    let predicted = model
        .fit_predict(&history, history.points_per_day())
        .map_err(|e| e.to_string())?;
    let duration = server.meta.backup.duration_min;
    let window =
        lowest_load_window(&predicted, duration).ok_or("no window fits the predicted day")?;
    println!(
        "model {model_name} on a {} server: predicted LL window for day {backup_day} \
         starts at {} ({duration} min, predicted mean load {:.1}%)",
        class.label(),
        window.start,
        window.mean_load
    );
    if let Some(truth) = server.series.day(backup_day) {
        let eval = seagull::core::metrics::evaluate_low_load(
            &truth,
            &predicted,
            duration,
            &seagull::core::metrics::AccuracyConfig::default(),
        )
        .ok_or("evaluation failed")?;
        println!(
            "against the true load: window correct = {}, in-window bucket ratio = {:.1}%",
            eval.window_correct, eval.window_bucket_ratio
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.wants_help() || command == "help" {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let result = match command {
        "simulate" => cmd_simulate(&args),
        "classify" => cmd_classify(&args),
        "pipeline" => cmd_pipeline(&args),
        "schedule" => cmd_schedule(&args),
        "forecast" => cmd_forecast(&args),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flags_parse_into_values() {
        let a = parse(&["--servers", "50", "--seed", "9"]).unwrap();
        assert_eq!(a.get::<usize>("servers", 0).unwrap(), 50);
        assert_eq!(a.get::<u64>("seed", 0).unwrap(), 9);
        assert_eq!(a.get::<usize>("weeks", 4).unwrap(), 4, "default applies");
        assert_eq!(a.get_str("out", "x"), "x");
    }

    #[test]
    fn malformed_flags_rejected() {
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--servers"]).is_err(), "missing value");
        let a = parse(&["--servers", "abc"]).unwrap();
        assert!(a.get::<usize>("servers", 0).is_err());
    }

    #[test]
    fn help_flag_detected() {
        let a = parse(&["--help"]).unwrap();
        assert!(a.wants_help());
        assert!(!parse(&[]).unwrap().wants_help());
    }

    #[test]
    fn usage_lists_all_commands() {
        for cmd in ["simulate", "classify", "pipeline", "schedule", "forecast"] {
            assert!(usage().contains(cmd), "{cmd} missing from usage");
        }
    }
}
