//! # Seagull
//!
//! A from-scratch Rust reproduction of *Seagull: An Infrastructure for Load
//! Prediction and Optimized Resource Allocation* (Poppe et al., Microsoft,
//! VLDB 2020).
//!
//! Seagull ingests per-server telemetry, validates it, extracts features,
//! trains and deploys forecasting models, predicts per-server customer load
//! 24 hours ahead, and uses those predictions to schedule full database
//! backups inside each server's *lowest-load window*. This facade crate
//! re-exports the workspace:
//!
//! * [`timeseries`] — gridded series, calendar math, resampling.
//! * [`linalg`] — dense matrices, eigen/SVD/least-squares kernels.
//! * [`telemetry`] — synthetic fleet simulation, blob store, load extraction.
//! * [`forecast`] — persistent forecast, SSA, feed-forward NN, additive
//!   (Prophet-style), and ARIMA models.
//! * [`core`] — the paper's contribution: low-load accuracy metrics, server
//!   classification, the AML-style pipeline, model registry, parallel
//!   accuracy evaluation, document store, incidents and dashboard.
//! * [`serve`] — the prediction-serving layer: epoch-swapped model
//!   snapshots published at deploy time, low-latency per-server queries.
//! * [`backup`] — the backup-scheduling use case (Sections 2.3, 4, 6).
//! * [`autoscale`] — the SQL auto-scale use case (Appendix A).
//! * [`obs`] — fleet-wide observability: metrics registry, span tracing,
//!   profiling hooks, Prometheus/JSON-lines/chrome-trace exports.
//! * [`watch`] — the watchtower: declarative SLOs with burn-rate alerting,
//!   per-query latency exemplars, and online deployment-accuracy
//!   monitoring feeding the warm-cache drift gate.
//!
//! ## Quickstart
//!
//! ```
//! use seagull::prelude::*;
//!
//! // Generate one week of 5-minute telemetry for a small fleet.
//! let spec = FleetSpec::small_region(42);
//! let fleet = FleetGenerator::new(spec).generate_weeks(4);
//!
//! // Classify the servers per the paper's Definitions 3-6.
//! let bound = ErrorBound::default();
//! let report = classify_fleet(&fleet, &bound);
//! assert!(report.total() > 0);
//! ```

pub use seagull_autoscale as autoscale;
pub use seagull_backup as backup;
pub use seagull_core as core;
pub use seagull_forecast as forecast;
pub use seagull_linalg as linalg;
pub use seagull_obs as obs;
pub use seagull_serve as serve;
pub use seagull_telemetry as telemetry;
pub use seagull_timeseries as timeseries;
pub use seagull_watch as watch;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use seagull_core::classify::{classify_fleet, ServerClass};
    pub use seagull_core::metrics::{bucket_ratio, ErrorBound, LowLoadWindow};
    pub use seagull_forecast::{Forecaster, PersistentForecast, PersistentVariant};
    pub use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
    pub use seagull_timeseries::{TimeSeries, Timestamp};
}
