//! The Appendix A model bake-off: Figures 16 and 17.
//!
//! "We predict the CPU load per database 24 hours ahead" with persistent
//! forecast (previous day), a neural network (GluonTS → our feed-forward
//! estimator), and ARIMA, reporting Mean NRMSE and MASE (Figure 16) and the
//! training / inference / accuracy-evaluation runtimes (Figure 17). "GluonTS
//! and ARIMA are trained on one week of historical load per database."

use seagull_core::metrics::{mase, mean_nrmse};
use seagull_core::par::parallel_map;
use seagull_forecast::Forecaster;
use seagull_telemetry::fleet::{ClassMix, FleetSpec, RegionSpec, ServerTelemetry};
use seagull_timeseries::Timestamp;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The synthetic Azure SQL population: 15-minute grid, no short-lived churn
/// in the sample ("single standard and premium SQL databases"), and a class
/// mix calibrated so Definition 10 yields the paper's ~19.36 % stable share.
pub fn sql_fleet_spec(seed: u64, databases: usize) -> FleetSpec {
    FleetSpec {
        seed,
        regions: vec![RegionSpec {
            name: "sql-region".into(),
            servers: databases,
        }],
        start_day: 17_997,
        grid_min: 15,
        mix: ClassMix {
            short_lived: 0.0,
            stable: 0.1936,
            daily: 0.35,
            weekly: 0.10,
            unstable: 0.3564,
        },
        capacity_reaching: 0.037,
    }
}

/// One Figure 16/17 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEvalRow {
    /// Model name as reported by its [`seagull_forecast::Forecaster`].
    pub model: String,
    /// Databases the model produced a forecast for.
    pub forecasts: usize,
    /// Databases skipped (insufficient history / model failure).
    pub skipped: usize,
    /// Average Mean NRMSE across databases (Equation 2).
    pub mean_nrmse: f64,
    /// Average MASE across databases (Equation 3).
    pub mase: f64,
    /// Total training + inference time (Figure 17 separates them; both are
    /// reported).
    pub train_time: Duration,
    /// Total inference time across databases.
    pub infer_time: Duration,
    /// Time spent computing the error metrics.
    pub eval_time: Duration,
}

/// Evaluates each model on a 24 h-ahead forecast of `target_day` for every
/// database, training on the preceding `train_days` days.
///
/// Models run sequentially (so their timings do not interfere); databases
/// run in parallel within a model when `threads > 1`.
pub fn evaluate_models(
    fleet: &[ServerTelemetry],
    models: &[(&str, &dyn Forecaster)],
    target_day: i64,
    train_days: i64,
    threads: usize,
) -> Vec<ModelEvalRow> {
    let day_start = Timestamp::from_days(target_day);
    let hist_start = Timestamp::from_days(target_day - train_days);

    models
        .iter()
        .map(|(name, model)| {
            // Per-database: (train time, infer time, nrmse, mase) or None.
            let per_db: Vec<Option<(Duration, Duration, f64, f64)>> =
                parallel_map(fleet, threads, |db| {
                    let history = db.series.slice(hist_start, day_start).ok()?;
                    let truth = db.series.day(target_day)?;
                    if history.check_finite().is_err() {
                        return None;
                    }
                    let t = Instant::now();
                    let fitted = model.fit(&history).ok()?;
                    let train = t.elapsed();
                    let t = Instant::now();
                    let predicted = fitted.predict(truth.len()).ok()?;
                    let infer = t.elapsed();
                    let nrmse = mean_nrmse(predicted.values(), truth.values())?;
                    let mase_v = mase(predicted.values(), truth.values())?;
                    Some((train, infer, nrmse, mase_v))
                });
            let t_eval = Instant::now();
            let ok: Vec<&(Duration, Duration, f64, f64)> = per_db.iter().flatten().collect();
            let n = ok.len().max(1) as f64;
            ModelEvalRow {
                model: name.to_string(),
                forecasts: ok.len(),
                skipped: fleet.len() - ok.len(),
                mean_nrmse: ok.iter().map(|r| r.2).sum::<f64>() / n,
                mase: ok.iter().map(|r| r.3).sum::<f64>() / n,
                train_time: ok.iter().map(|r| r.0).sum(),
                infer_time: ok.iter().map(|r| r.1).sum(),
                eval_time: t_eval.elapsed(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_forecast::{
        ArimaConfig, ArimaForecaster, FeedForwardConfig, FeedForwardForecaster, PersistentForecast,
    };
    use seagull_telemetry::fleet::FleetGenerator;

    fn small_sql_fleet() -> (Vec<ServerTelemetry>, i64) {
        let spec = sql_fleet_spec(21, 20);
        let start = spec.start_day;
        (FleetGenerator::new(spec).generate_weeks(2), start)
    }

    #[test]
    fn persistent_forecast_evaluates_whole_fleet() {
        let (fleet, start) = small_sql_fleet();
        let pf = PersistentForecast::previous_day();
        let rows = evaluate_models(&fleet, &[("persistent", &pf)], start + 8, 7, 2);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.forecasts > 0, "forecasts {}", row.forecasts);
        assert!(row.mean_nrmse.is_finite() && row.mean_nrmse >= 0.0);
        assert!(row.mase.is_finite() && row.mase >= 0.0);
        // Persistent forecast needs no training.
        assert!(row.train_time < row.infer_time + Duration::from_millis(50));
    }

    #[test]
    fn model_ordering_matches_paper_cost_profile() {
        let (fleet, start) = small_sql_fleet();
        let subset = &fleet[..6];
        let pf = PersistentForecast::previous_day();
        let nn = FeedForwardForecaster::new(FeedForwardConfig {
            context_len: 24,
            prediction_len: 24,
            hidden: vec![8],
            epochs: 4,
            batch_size: 16,
            learning_rate: 1e-3,
            stride: 4,
            seed: 1,
        });
        let arima = ArimaForecaster::new(ArimaConfig {
            max_p: 1,
            max_d: 1,
            max_q: 1,
            max_sp: 0,
            max_sd: 1,
            max_sq: 0,
            period: 96,
            refine_iterations: 5,
            prescreen: false,
        });
        let rows = evaluate_models(
            &fleet[..subset.len()],
            &[("persistent", &pf), ("neural-net", &nn), ("arima", &arima)],
            start + 8,
            7,
            1,
        );
        assert_eq!(rows.len(), 3);
        // Training cost: persistent << neural net and ARIMA (Figure 17).
        assert!(rows[0].train_time < rows[1].train_time);
        assert!(rows[0].train_time < rows[2].train_time);
    }

    #[test]
    fn short_history_databases_are_skipped() {
        let (fleet, start) = small_sql_fleet();
        let pf = PersistentForecast::previous_day();
        // Target day right at the window start: no 7-day history exists.
        let rows = evaluate_models(&fleet, &[("persistent", &pf)], start, 7, 1);
        assert_eq!(rows[0].forecasts, 0);
        assert_eq!(rows[0].skipped, fleet.len());
    }

    #[test]
    fn spec_mix_is_valid() {
        sql_fleet_spec(1, 10).mix.validate().unwrap();
    }
}
