//! SQL database classification — Definition 10.
//!
//! "A stable database is defined as a database whose variation does not
//! exceed one standard deviation for the last three days in the period
//! evaluated. Otherwise, a database is called unstable" (Appendix A.1).
//!
//! The definition leaves the unit of "one standard deviation" open. We read
//! it as a fixed deviation budget in CPU percentage points (the natural unit
//! of the signal): a database is stable when the standard deviation of its
//! load over the last three days does not exceed `sigma_budget` points.
//! A relative reading (tail spread vs. the period's own σ) cannot work: for
//! any stationary noisy-but-flat database the two are equal by construction,
//! so *no* database would ever classify as stable regardless of how flat it
//! is. With the default budget the paper's measured 19.36 % stable share is
//! reproduced by the synthetic SQL population
//! ([`crate::evaluate::sql_fleet_spec`]).

use seagull_telemetry::fleet::ServerTelemetry;
use seagull_timeseries::{TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

/// Definition 10 parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StableDbConfig {
    /// Days of trailing history the rule inspects (paper: 3).
    pub window_days: i64,
    /// Maximum standard deviation of the trailing window, in CPU percentage
    /// points, for the database to count as stable.
    pub sigma_budget: f64,
}

impl Default for StableDbConfig {
    fn default() -> Self {
        StableDbConfig {
            window_days: 3,
            sigma_budget: 2.0,
        }
    }
}

/// Applies Definition 10 to one database's load over the evaluated period.
/// Returns `false` when fewer than `window_days` full days exist.
pub fn is_stable_database(series: &TimeSeries, config: &StableDbConfig) -> bool {
    let Some(last) = series.last_full_day() else {
        return false;
    };
    let first_needed = last - config.window_days + 1;
    let from = Timestamp::from_days(first_needed);
    let to = Timestamp::from_days(last + 1);
    let Ok(tail) = series.slice_values(from, to) else {
        return false;
    };
    let present: Vec<f64> = tail.iter().copied().filter(|v| !v.is_nan()).collect();
    if present.len() < tail.len() / 2 {
        return false; // Too little data in the window to call it stable.
    }
    seagull_timeseries::stddev(&present) <= config.sigma_budget
}

/// Fleet-level classification result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqlClassification {
    /// Databases classified.
    pub databases: usize,
    /// Databases meeting the Definition 10 stability criterion.
    pub stable: usize,
}

impl SqlClassification {
    /// Percentage of stable databases (the paper's 19.36 %).
    pub fn stable_pct(&self) -> f64 {
        if self.databases == 0 {
            0.0
        } else {
            100.0 * self.stable as f64 / self.databases as f64
        }
    }
}

/// Classifies a SQL fleet.
pub fn classify_sql_fleet(fleet: &[ServerTelemetry], config: &StableDbConfig) -> SqlClassification {
    let stable = fleet
        .iter()
        .filter(|db| is_stable_database(&db.series, config))
        .count();
    SqlClassification {
        databases: fleet.len(),
        stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(days: usize, f: impl Fn(Timestamp) -> f64) -> TimeSeries {
        TimeSeries::from_fn(Timestamp::from_days(500), 15, days * 96, f).unwrap()
    }

    #[test]
    fn flat_database_is_stable() {
        let s = series(7, |_| 20.0);
        assert!(is_stable_database(&s, &StableDbConfig::default()));
    }

    #[test]
    fn mild_noise_is_stable() {
        let s = series(7, |t| 20.0 + ((t.minutes() / 15) % 3) as f64);
        // Values 20, 21, 22: stddev < 1.
        assert!(is_stable_database(&s, &StableDbConfig::default()));
    }

    #[test]
    fn swinging_tail_is_unstable() {
        let s = series(7, |t| {
            if t.day_index() >= 504 {
                if (t.minutes() / 15) % 2 == 0 {
                    0.0
                } else {
                    80.0
                }
            } else {
                30.0
            }
        });
        assert!(!is_stable_database(&s, &StableDbConfig::default()));
    }

    #[test]
    fn calm_tail_after_noisy_history_is_stable() {
        // The rule only inspects the trailing window.
        let s = series(7, |t| {
            if t.day_index() < 504 {
                if (t.minutes() / 15) % 2 == 0 {
                    10.0
                } else {
                    50.0
                }
            } else {
                30.0
            }
        });
        assert!(is_stable_database(&s, &StableDbConfig::default()));
    }

    #[test]
    fn short_history_is_unstable() {
        let s = series(2, |_| 20.0);
        assert!(!is_stable_database(&s, &StableDbConfig::default()));
    }

    #[test]
    fn missing_data_blocks_stability() {
        let mut s = series(4, |_| 20.0);
        let n = s.len();
        for v in s.values_mut()[n - 2 * 96..].iter_mut() {
            *v = f64::NAN;
        }
        assert!(!is_stable_database(&s, &StableDbConfig::default()));
    }

    #[test]
    fn budget_tightens_or_loosens() {
        let s = series(7, |t| 30.0 + 5.0 * ((t.minutes() / 15) % 2) as f64);
        // stddev = 2.5.
        let loose = StableDbConfig {
            sigma_budget: 3.0,
            ..StableDbConfig::default()
        };
        let tight = StableDbConfig {
            sigma_budget: 2.0,
            ..StableDbConfig::default()
        };
        assert!(is_stable_database(&s, &loose));
        assert!(!is_stable_database(&s, &tight));
    }

    #[test]
    fn fleet_percentage_matches_paper_ballpark() {
        use seagull_telemetry::fleet::FleetGenerator;
        let spec = crate::evaluate::sql_fleet_spec(9, 600);
        let fleet = FleetGenerator::new(spec).generate_weeks(1);
        let report = classify_sql_fleet(&fleet, &StableDbConfig::default());
        assert_eq!(report.databases, 600);
        // The paper measures 19.36 % stable.
        let pct = report.stable_pct();
        assert!(pct > 12.0 && pct < 28.0, "stable {pct}%");
    }
}
