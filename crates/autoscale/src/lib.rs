//! # seagull-autoscale
//!
//! The second Seagull use case: preemptive auto-scale of Azure SQL databases
//! (Appendix A of the paper).
//!
//! SQL telemetry is coarser than PostgreSQL/MySQL telemetry — "database
//! identifier, timestamp in minutes, and average CPU load per 15 minutes" —
//! and the prediction target is the full CPU curve 24 hours ahead rather
//! than a lowest-load window. Accuracy therefore uses the standard Mean
//! NRMSE and MASE metrics (Equations 1–3), not the bucket ratio.
//!
//! * [`classify`] — Definition 10 stable/unstable databases (the paper
//!   measures 19.36 % stable).
//! * [`evaluate`] — the Figure 16/17 harness: per-model accuracy (Mean
//!   NRMSE, MASE) and training/inference/accuracy-evaluation runtime for a
//!   24-hour-ahead forecast per database.

#![warn(missing_docs)]

pub mod classify;
pub mod evaluate;
pub mod policy;

pub use classify::{classify_sql_fleet, is_stable_database, SqlClassification, StableDbConfig};
pub use evaluate::{evaluate_models, sql_fleet_spec, ModelEvalRow};
pub use policy::{
    evaluate_policy, simulate_day, AutoscalePolicy, DayOutcome, PolicySummary, SizingMode,
    SkuLadder,
};
