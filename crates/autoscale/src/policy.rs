//! Preemptive auto-scale policy — the Appendix A scenario end-to-end.
//!
//! The paper's second use case: "we will use SEAGULL infrastructure for
//! preemptive auto-scale of resources for Azure SQL databases" (Appendix A),
//! motivated by Figure 13(b)'s observation that 96.3 % of servers never
//! reach capacity. This module closes the loop the appendix sketches:
//! predicted load → recommended allocation on a discrete SKU ladder →
//! simulated outcome (throttling violations vs wasted capacity), with a
//! *reactive* baseline (yesterday's peak) for comparison.

use seagull_core::par::parallel_map;
use seagull_forecast::Forecaster;
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_timeseries::{TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

/// The discrete capacity steps databases can be resized between, in the same
/// CPU-percentage units as the telemetry (100 = the largest SKU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuLadder {
    /// Capacity steps in ascending order.
    pub steps: Vec<f64>,
}

impl Default for SkuLadder {
    fn default() -> Self {
        SkuLadder {
            steps: vec![12.5, 25.0, 50.0, 75.0, 100.0],
        }
    }
}

impl SkuLadder {
    /// The smallest step covering `demand`, or the largest step if none does.
    pub fn fit(&self, demand: f64) -> f64 {
        self.steps
            .iter()
            .copied()
            .find(|s| *s >= demand)
            .unwrap_or_else(|| self.steps.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }
}

/// Sizing policy applied to a predicted (or observed) day of load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// The sizing statistic: quantile of the day's load (1.0 = max).
    pub sizing_quantile: f64,
    /// Multiplicative headroom above the sizing statistic.
    pub headroom: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            sizing_quantile: 0.98,
            headroom: 1.15,
        }
    }
}

impl AutoscalePolicy {
    /// Target capacity for a day of (predicted) load.
    pub fn target(&self, day: &TimeSeries, ladder: &SkuLadder) -> f64 {
        let q = seagull_timeseries::quantile(day.values(), self.sizing_quantile);
        ladder.fit(q * self.headroom)
    }

    /// The same policy with `headroom` scaled by `multiplier` — the hook
    /// the watch layer's accuracy monitor feeds: a region whose deployment
    /// accuracy regressed sizes with wider safety margins
    /// (`AccuracyMonitor::headroom_multiplier` returns 1.0 when healthy)
    /// until the refit restores accuracy.
    pub fn with_headroom_multiplier(self, multiplier: f64) -> AutoscalePolicy {
        AutoscalePolicy {
            headroom: self.headroom * multiplier,
            ..self
        }
    }
}

/// Outcome of running one database for one day at a fixed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DayOutcome {
    /// Allocated capacity.
    pub capacity: f64,
    /// Minutes in which true demand exceeded capacity (throttling).
    pub violation_min: f64,
    /// Integral of unused capacity, in CPU-percent·hours.
    pub waste_pct_hours: f64,
}

/// Simulates one day: demand above capacity is throttled (a violation);
/// capacity above demand is waste.
pub fn simulate_day(truth: &TimeSeries, capacity: f64) -> DayOutcome {
    let step_h = truth.step_min() as f64 / 60.0;
    let mut violation_min = 0.0;
    let mut waste = 0.0;
    for &v in truth.values() {
        if v.is_nan() {
            continue;
        }
        if v > capacity {
            violation_min += truth.step_min() as f64;
        } else {
            waste += (capacity - v) * step_h;
        }
    }
    DayOutcome {
        capacity,
        violation_min,
        waste_pct_hours: waste,
    }
}

/// Which signal sizes the allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizingMode {
    /// Preemptive: size on the model's 24 h-ahead prediction (the Seagull
    /// use case).
    Preemptive,
    /// Reactive: size on yesterday's observed load (what reactive auto-scale
    /// converges to, one day late).
    Reactive,
    /// Static: stay on the largest SKU (no auto-scale).
    StaticMax,
}

/// Fleet-level aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Databases simulated.
    pub databases: usize,
    /// Database-days with both a forecast and truth to evaluate.
    pub evaluated: usize,
    /// Share of evaluated database-days with any throttling, percent.
    pub violation_rate_pct: f64,
    /// Mean throttled minutes per database-day.
    pub mean_violation_min: f64,
    /// Mean wasted capacity per database-day, CPU-percent·hours.
    pub mean_waste_pct_hours: f64,
    /// Mean allocated capacity.
    pub mean_capacity: f64,
}

/// Evaluates a sizing mode over a fleet for `target_day`.
#[allow(clippy::too_many_arguments)] // mirrors the experiment parameter list
pub fn evaluate_policy(
    fleet: &[ServerTelemetry],
    target_day: i64,
    mode: SizingMode,
    policy: &AutoscalePolicy,
    ladder: &SkuLadder,
    forecaster: &dyn Forecaster,
    train_days: i64,
    threads: usize,
) -> PolicySummary {
    let outcomes: Vec<Option<DayOutcome>> = parallel_map(fleet, threads, |db| {
        let truth = db.series.day(target_day)?;
        let capacity = match mode {
            SizingMode::StaticMax => ladder
                .steps
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            SizingMode::Reactive => {
                let yesterday = db.series.day(target_day - 1)?;
                policy.target(&yesterday, ladder)
            }
            SizingMode::Preemptive => {
                let day_start = Timestamp::from_days(target_day);
                let history = db
                    .series
                    .slice(Timestamp::from_days(target_day - train_days), day_start)
                    .ok()?;
                if history.check_finite().is_err() {
                    return None;
                }
                let predicted = forecaster.fit_predict(&history, truth.len()).ok()?;
                policy.target(&predicted, ladder)
            }
        };
        Some(simulate_day(&truth, capacity))
    });
    let ok: Vec<&DayOutcome> = outcomes.iter().flatten().collect();
    let n = ok.len().max(1) as f64;
    PolicySummary {
        databases: fleet.len(),
        evaluated: ok.len(),
        violation_rate_pct: 100.0 * ok.iter().filter(|o| o.violation_min > 0.0).count() as f64 / n,
        mean_violation_min: ok.iter().map(|o| o.violation_min).sum::<f64>() / n,
        mean_waste_pct_hours: ok.iter().map(|o| o.waste_pct_hours).sum::<f64>() / n,
        mean_capacity: ok.iter().map(|o| o.capacity).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::sql_fleet_spec;
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::FleetGenerator;

    #[test]
    fn ladder_fit() {
        let ladder = SkuLadder::default();
        assert_eq!(ladder.fit(5.0), 12.5);
        assert_eq!(ladder.fit(12.5), 12.5);
        assert_eq!(ladder.fit(26.0), 50.0);
        assert_eq!(ladder.fit(500.0), 100.0, "clamps to the largest SKU");
    }

    #[test]
    fn regressed_headroom_widens_targets() {
        let day =
            TimeSeries::new(Timestamp::from_days(5), 15, vec![20.0, 22.0, 21.0, 23.0]).unwrap();
        // A fine-grained ladder so the wider margin is visible in the fit.
        let ladder = SkuLadder {
            steps: (1..=100).map(|s| s as f64).collect(),
        };
        let policy = AutoscalePolicy::default();
        let healthy = policy.with_headroom_multiplier(1.0);
        let regressed = policy.with_headroom_multiplier(1.25);
        assert_eq!(healthy.target(&day, &ladder), policy.target(&day, &ladder));
        assert!(
            regressed.target(&day, &ladder) > healthy.target(&day, &ladder),
            "a regressed region must size with wider safety margins"
        );
    }

    #[test]
    fn simulate_day_accounting() {
        let truth =
            TimeSeries::new(Timestamp::from_days(5), 15, vec![10.0, 30.0, 10.0, 10.0]).unwrap();
        let out = simulate_day(&truth, 20.0);
        assert_eq!(out.violation_min, 15.0);
        // Waste = (10+10+10) * 0.25h = 7.5 %·h over the non-violating buckets.
        assert!((out.waste_pct_hours - 7.5).abs() < 1e-9);
        let all_covered = simulate_day(&truth, 50.0);
        assert_eq!(all_covered.violation_min, 0.0);
    }

    #[test]
    fn static_max_never_violates_but_wastes_most() {
        let spec = sql_fleet_spec(3, 40);
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(2);
        let model = PersistentForecast::previous_day();
        let policy = AutoscalePolicy::default();
        let ladder = SkuLadder::default();
        let day = start + 8;
        let s_static = evaluate_policy(
            &fleet,
            day,
            SizingMode::StaticMax,
            &policy,
            &ladder,
            &model,
            7,
            2,
        );
        let s_pre = evaluate_policy(
            &fleet,
            day,
            SizingMode::Preemptive,
            &policy,
            &ladder,
            &model,
            7,
            2,
        );
        assert_eq!(s_static.violation_rate_pct, 0.0);
        assert!(
            s_static.mean_waste_pct_hours > s_pre.mean_waste_pct_hours,
            "static {} vs preemptive {}",
            s_static.mean_waste_pct_hours,
            s_pre.mean_waste_pct_hours
        );
        assert!(s_pre.mean_capacity < s_static.mean_capacity);
    }

    #[test]
    fn preemptive_beats_reactive_on_waste_or_violations() {
        let spec = sql_fleet_spec(4, 60);
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(2);
        let model = PersistentForecast::previous_day();
        let policy = AutoscalePolicy::default();
        let ladder = SkuLadder::default();
        let day = start + 8;
        let pre = evaluate_policy(
            &fleet,
            day,
            SizingMode::Preemptive,
            &policy,
            &ladder,
            &model,
            7,
            2,
        );
        let rea = evaluate_policy(
            &fleet,
            day,
            SizingMode::Reactive,
            &policy,
            &ladder,
            &model,
            7,
            2,
        );
        // With previous-day persistence the preemptive forecast equals
        // yesterday's curve, so the two agree almost everywhere; preemptive
        // must not be materially worse on either axis.
        assert!(pre.mean_violation_min <= rea.mean_violation_min + 5.0);
        assert!(pre.mean_waste_pct_hours <= rea.mean_waste_pct_hours * 1.1 + 1.0);
        assert!(pre.evaluated > 0);
    }

    #[test]
    fn first_day_cannot_be_evaluated() {
        let spec = sql_fleet_spec(5, 5);
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(1);
        let model = PersistentForecast::previous_day();
        let s = evaluate_policy(
            &fleet,
            start,
            SizingMode::Preemptive,
            &AutoscalePolicy::default(),
            &SkuLadder::default(),
            &model,
            7,
            1,
        );
        assert_eq!(s.evaluated, 0);
    }
}
