//! Property tests for the log-bucketed histogram, driven by a seeded
//! generator sweep (the obs crate is dependency-free, so these are
//! hand-rolled rather than proptest-based — each property is checked over
//! many deterministic random value sets).

use seagull_obs::metrics::{bucket_upper, Histogram, BUCKETS};

/// SplitMix64: the same deterministic generator used across the workspace.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Log-uniform over ~12 orders of magnitude, the histogram's sweet spot.
    fn value(&mut self) -> f64 {
        10f64.powf(self.unit() * 12.0 - 6.0)
    }
}

fn fill(seed: u64, n: usize) -> (Histogram, Vec<f64>) {
    let mut rng = Rng(seed);
    let h = Histogram::default();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let v = rng.value();
        h.observe(v);
        values.push(v);
    }
    (h, values)
}

#[test]
fn quantiles_are_monotone_in_q() {
    for seed in 0..50 {
        let (h, _) = fill(seed, 200);
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for w in qs.windows(2) {
            let lo = h.quantile(w[0]);
            let hi = h.quantile(w[1]);
            assert!(
                lo <= hi,
                "seed {seed}: quantile({}) = {lo} > quantile({}) = {hi}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn quantile_estimates_contain_true_quantile_within_bucket_bound() {
    // The estimate interpolates within the bucket holding the target rank,
    // clamped to the max: it must be within one bucket width (factor
    // sqrt(2)) of the true quantile, on either side.
    for seed in 0..50 {
        let (h, mut values) = fill(seed, 500);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = h.quantile(q);
            assert!(
                est >= truth / 2f64.sqrt() - 1e-12,
                "seed {seed} q={q}: estimate {est} more than a bucket below {truth}"
            );
            assert!(
                est <= truth * 2f64.sqrt() + 1e-12,
                "seed {seed} q={q}: estimate {est} beyond bucket bound of {truth}"
            );
        }
        assert_eq!(h.quantile(1.0), h.max());
        assert_eq!(h.max(), *values.last().unwrap());
    }
}

#[test]
fn merged_quantiles_match_whole_stream_quantiles_within_one_bucket() {
    // Shards merged into one histogram must estimate the same quantiles as
    // the undivided stream: exactly equal to the direct histogram (the
    // estimate is a pure function of the bucket tallies) and within one
    // bucket width (factor sqrt(2)) of the true stream quantile.
    for seed in 0..30 {
        let (a, va) = fill(seed * 4 + 1, 170);
        let (b, vb) = fill(seed * 4 + 2, 90);
        let (c, vc) = fill(seed * 4 + 3, 40);
        let merged = Histogram::default();
        merged.merge(&a);
        merged.merge(&b);
        merged.merge(&c);

        let mut stream: Vec<f64> = va.iter().chain(&vb).chain(&vc).copied().collect();
        let direct = Histogram::default();
        for &v in &stream {
            direct.observe(v);
        }
        stream.sort_by(|a, b| a.partial_cmp(b).unwrap());

        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let est = merged.quantile(q);
            assert_eq!(est, direct.quantile(q), "seed {seed} q={q}");
            let rank = ((q * stream.len() as f64).ceil() as usize).clamp(1, stream.len());
            let truth = stream[rank - 1];
            assert!(
                est >= truth / 2f64.sqrt() - 1e-12 && est <= truth * 2f64.sqrt() + 1e-12,
                "seed {seed} q={q}: merged estimate {est} not within a bucket of {truth}"
            );
        }
    }
}

#[test]
fn every_observation_lands_in_a_containing_bucket() {
    // Bucket upper bounds are a partition: for each observed value, the
    // cumulative count at the first bucket whose upper bound >= value must
    // include that value.
    for seed in 0..20 {
        let (h, values) = fill(seed, 300);
        let buckets = h.nonzero_buckets();
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, values.len() as u64);
        for &v in &values {
            let cum: u64 = buckets
                .iter()
                .filter(|(upper, _)| *upper >= v)
                .map(|(_, c)| c)
                .sum();
            let at_least: usize = values.iter().filter(|&&x| x >= v).count();
            assert!(
                cum >= at_least as u64,
                "seed {seed}: buckets above {v} hold {cum} < {at_least} actual"
            );
        }
    }
}

#[test]
fn bucket_upper_bounds_are_strictly_increasing() {
    for i in 1..BUCKETS {
        assert!(
            bucket_upper(i) > bucket_upper(i - 1),
            "bucket {i} upper {} <= bucket {} upper {}",
            bucket_upper(i),
            i - 1,
            bucket_upper(i - 1)
        );
    }
}

#[test]
fn merge_is_associative_and_order_independent() {
    for seed in 0..20 {
        let (a, _) = fill(seed * 3 + 1, 100);
        let (b, _) = fill(seed * 3 + 2, 150);
        let (c, _) = fill(seed * 3 + 3, 50);

        // (a + b) + c
        let left = Histogram::default();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);

        // a + (b + c), built by merging in a different order
        let bc = Histogram::default();
        bc.merge(&c);
        bc.merge(&b);
        let right = Histogram::default();
        right.merge(&bc);
        right.merge(&a);

        assert_eq!(left.count(), right.count());
        assert_eq!(left.max(), right.max());
        assert!((left.sum() - right.sum()).abs() < 1e-9 * left.sum().abs().max(1.0));
        assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(left.quantile(q), right.quantile(q), "seed {seed} q={q}");
        }
    }
}

#[test]
fn merge_matches_observing_everything_in_one_histogram() {
    for seed in 0..20 {
        let (a, va) = fill(seed * 2 + 10, 120);
        let (b, vb) = fill(seed * 2 + 11, 80);
        let merged = Histogram::default();
        merged.merge(&a);
        merged.merge(&b);

        let direct = Histogram::default();
        for v in va.iter().chain(&vb) {
            direct.observe(*v);
        }
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.nonzero_buckets(), direct.nonzero_buckets());
        assert_eq!(merged.max(), direct.max());
        for q in [0.25, 0.5, 0.75, 0.95, 0.99] {
            assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }
}
