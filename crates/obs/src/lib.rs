//! # seagull-obs: fleet-wide observability
//!
//! Dependency-free observability layer shared by every Seagull crate:
//!
//! * [`metrics`] — a lock-cheap registry of counters, gauges, and
//!   log-bucketed histograms (p50/p95/p99/max), labelled by
//!   `(region, stage)`-style label sets.
//! * [`trace`] — span tracing with explicit start/end, parent links, and
//!   dual clocks: virtual scheduler ticks (deterministic) and wall time.
//! * [`export`] — Prometheus text exposition, JSON-lines spans, and
//!   chrome://tracing `trace_event` output, each with a parser so
//!   round-trips are testable.
//! * [`profile`] — per-worker profiles for `parallel_map` regions
//!   (items processed, steal-idle time, imbalance ratio).
//!
//! ## Determinism contract
//!
//! With a fixed seed and the simulated clock, every metric and span tick
//! recorded by the pipeline is a pure function of the inputs, so
//! [`Obs::stable_export`] is **byte-identical across runs**. Anything
//! derived from wall time or OS scheduling must be registered
//! [`metrics::Stability::Volatile`] (or carried in span wall fields), which
//! the stable export excludes.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use export::TimeMode;
pub use metrics::{
    Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, MetricId, MetricSample, Registry,
    SampleValue, Stability,
};
pub use profile::{ParallelProfile, WorkerProfile};
pub use trace::{SpanId, SpanRecord, Tracer};

use std::sync::Arc;

/// Shared observability handle: one registry + one tracer, cheap to clone.
#[derive(Clone, Default)]
pub struct Obs {
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
}

impl Obs {
    /// Creates a fresh handle with an empty registry and tracer.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// The metrics registry shared by all clones of this handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer shared by all clones of this handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Deterministic export: Prometheus text for stable metrics, a blank
    /// line, then stable JSON-lines spans. Byte-identical across same-seed
    /// runs.
    pub fn stable_export(&self) -> String {
        let mut out = export::to_prometheus(&self.registry.stable_snapshot());
        out.push('\n');
        out.push_str(&export::spans_to_json_lines(
            &self.tracer.spans(),
            TimeMode::Stable,
        ));
        out
    }

    /// Fold another `Obs` into this one: counters add, gauges take the
    /// other's latest value, histograms merge, and spans are appended with
    /// remapped ids (see [`Registry::absorb`] and [`Tracer::absorb`]).
    ///
    /// Used by the fleet orchestrator to merge per-region scratch handles in
    /// region input order, keeping [`Obs::stable_export`] independent of
    /// which region finished first.
    pub fn absorb(&self, other: &Obs) {
        self.registry.absorb(&other.registry);
        self.tracer.absorb(&other.tracer);
    }

    /// Full export including volatile metrics and span wall times.
    pub fn full_export(&self) -> String {
        let mut out = export::to_prometheus(&self.registry.snapshot());
        out.push('\n');
        out.push_str(&export::spans_to_json_lines(
            &self.tracer.spans(),
            TimeMode::Full,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_clone_shares_state() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.registry().counter("shared_total", &[]).inc();
        let span = clone.tracer().start("s", &[], 0);
        clone.tracer().end(span, 1);
        assert_eq!(obs.registry().counter("shared_total", &[]).get(), 1);
        assert_eq!(obs.tracer().spans().len(), 1);
    }

    #[test]
    fn stable_export_is_byte_identical_across_runs() {
        let run = || {
            let obs = Obs::new();
            let reg = obs.registry();
            reg.counter(
                "seagull_retry_attempts_total",
                &[("region", "west"), ("stage", "features")],
            )
            .add(3);
            reg.histogram("seagull_stage_ticks", &[("region", "west")])
                .observe(7.0);
            // Volatile wall metric must not leak into the stable export.
            reg.gauge_with("seagull_wall_seconds", &[], Stability::Volatile)
                .set(0.123456);
            let root = obs.tracer().start("run-week", &[("region", "west")], 0);
            let stage = obs.tracer().child(root, "features", &[], 2);
            obs.tracer().end(stage, 3);
            obs.tracer().end(root, 7);
            obs.stable_export()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.contains("seagull_wall_seconds"));
        assert!(!a.contains("wall_us"));
        assert!(a.contains("seagull_retry_attempts_total"));
    }

    #[test]
    fn full_export_includes_volatile_and_wall() {
        let obs = Obs::new();
        obs.registry()
            .gauge_with("seagull_wall_seconds", &[], Stability::Volatile)
            .set(1.5);
        let s = obs.tracer().start("stage", &[], 0);
        obs.tracer().end(s, 1);
        let full = obs.full_export();
        assert!(full.contains("seagull_wall_seconds"));
        assert!(full.contains("wall_us"));
    }
}
