//! Lock-cheap metrics registry: monotonic counters, gauges, and
//! log-bucketed histograms, labelled by `(region, stage)`-style label sets.
//!
//! The registry mutex is only taken when a metric handle is first created
//! (or when snapshotting); the hot path — `Counter::inc`,
//! `Histogram::observe` — is pure atomics on a shared `Arc` handle.
//!
//! Determinism: every aggregate a metric exposes (counts, sums, bucket
//! tallies, quantile estimates) is a pure function of the observed values,
//! and snapshots iterate a `BTreeMap`, so a run that observes the same
//! values in any order exports byte-identical text. Metrics derived from
//! wall-clock time must be registered [`Stability::Volatile`] so the stable
//! export can exclude them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether a metric is reproducible across same-seed runs.
///
/// `Stable` metrics depend only on simulated inputs (ticks, item counts,
/// seeded faults) and appear in the stable export. `Volatile` metrics carry
/// wall-clock or scheduling noise and are excluded from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stability {
    /// Reproducible across same-seed runs; included in the stable export.
    Stable,
    /// Carries wall-clock or scheduling noise; excluded from the stable
    /// export.
    Volatile,
}

/// Metric identity: name plus a sorted label set.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `seagull_retry_attempts_total`.
    pub name: String,
    /// Label pairs, sorted by key so equal label sets compare equal.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id from a name and unsorted label pairs (sorting them).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value. For mirroring an external cumulative total
    /// (e.g. a chaos store's op counters) into the registry idempotently —
    /// regular counting should use [`Counter::inc`]/[`Counter::add`].
    pub fn store(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Latest value set (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log buckets: index 0 catches `v <= 2^-30`, indices `1..=181`
/// cover half-octave buckets `(2^(k/2), 2^((k+1)/2)]` for `k in -60..=120`.
pub const BUCKETS: usize = 182;

const MIN_EXP2: i64 = -60; // in half-octaves: 2^-30
const MAX_EXP2: i64 = 120; // 2^60

fn bucket_index(v: f64) -> usize {
    // NaN and non-positive values (including -0.0) land in the catch-all
    // bucket 0.
    if v <= 0.0 || v.is_nan() {
        return 0;
    }
    let k = (v.log2() * 2.0).floor() as i64;
    let k = k.clamp(MIN_EXP2, MAX_EXP2);
    (k - MIN_EXP2 + 1) as usize
}

/// Upper bound of bucket `i` (the value reported for quantiles landing in it).
pub fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        return 2f64.powf(MIN_EXP2 as f64 / 2.0);
    }
    2f64.powf((i as i64 + MIN_EXP2) as f64 / 2.0)
}

/// Lower bound of bucket `i`. Bucket 0 is the non-positive/underflow
/// catch-all, so its lower bound is 0.0 for interpolation purposes.
pub fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    bucket_upper(i - 1)
}

/// A sampled observation annotating one histogram bucket with a pointer to
/// the trace that produced it, so a tail-latency bucket links back to the
/// span tree of a concrete query.
///
/// Exemplars are reservoir-sampled per bucket and carry wall-clock-adjacent
/// identity (span ids differ across thread interleavings), so they are
/// stripped from [`Registry::stable_snapshot`] — they appear only in full
/// exports. The stable/volatile split is therefore preserved: attaching
/// exemplars to a [`Stability::Stable`] histogram does not perturb its
/// stable export.
#[derive(Clone, Debug, PartialEq)]
pub struct Exemplar {
    /// The observed value this exemplar annotates.
    pub value: f64,
    /// Raw id of the span recording the sampled operation (resolve against
    /// the same `Obs` handle's tracer).
    pub span_id: u64,
    /// Virtual tick at which the observation was recorded.
    pub tick: u64,
}

/// SplitMix64 step — the deterministic hash behind per-bucket reservoir
/// replacement.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A log-bucketed histogram with p50/p95/p99/max estimation.
///
/// Buckets grow geometrically (factor `sqrt(2)` per bucket), so the quantile
/// estimate returned by [`Histogram::quantile`] is at most one half-octave
/// above the true value, and never above the observed maximum.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, f64 bits, CAS-updated.
    sum_bits: AtomicU64,
    /// Max observation, f64 bits, CAS-updated.
    max_bits: AtomicU64,
    /// Per-bucket exemplar reservoirs: bucket index → (observations offered
    /// to that bucket's reservoir, kept exemplar). Off the hot path — the
    /// mutex is only taken by `observe_exemplar`, merges, and snapshots.
    exemplars: Mutex<BTreeMap<usize, (u64, Exemplar)>>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exemplars: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Histogram {
    /// Records one observation (NaN and non-positive values land in the
    /// catch-all underflow bucket).
    pub fn observe(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest observed value (0.0 when empty).
    pub fn max(&self) -> f64 {
        let m = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if m == f64::NEG_INFINITY {
            0.0
        } else {
            m
        }
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the bucket tallies.
    ///
    /// Interpolates linearly within the bucket containing the target rank
    /// (a rank one-third of the way into a bucket's tally lands one-third
    /// of the way between the bucket's bounds), clamped to the observed
    /// maximum; 0.0 when empty. Because the estimate is a pure function of
    /// the bucket tallies, merged histograms report exactly the quantiles
    /// the whole stream would, and the estimate is always within one bucket
    /// width (a factor of `sqrt(2)`) of the true quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 && cum + c >= rank {
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                let frac = (rank - cum) as f64 / c as f64;
                return (lo + frac * (hi - lo)).min(self.max());
            }
            cum += c;
        }
        self.max()
    }

    /// Records one observation and offers `exemplar` to the target bucket's
    /// reservoir slot.
    ///
    /// Each bucket keeps exactly one exemplar, replaced via reservoir
    /// sampling: the `k`-th offer to a bucket is kept with probability
    /// `1/k`, decided by a deterministic hash of the exemplar identity and
    /// the offer count — no hidden RNG state, so a single-threaded replay
    /// of the same offers keeps the same exemplars.
    pub fn observe_exemplar(&self, v: f64, exemplar: Exemplar) {
        self.observe(v);
        let i = bucket_index(v);
        let mut slots = self.exemplars.lock().unwrap();
        match slots.get_mut(&i) {
            None => {
                slots.insert(i, (1, exemplar));
            }
            Some((seen, kept)) => {
                *seen += 1;
                if splitmix64(exemplar.span_id ^ exemplar.value.to_bits()).is_multiple_of(*seen) {
                    *kept = exemplar;
                }
            }
        }
    }

    /// The kept exemplars as `(bucket_upper, exemplar)`, ascending by
    /// bucket.
    pub fn exemplars(&self) -> Vec<(f64, Exemplar)> {
        self.exemplars
            .lock()
            .unwrap()
            .iter()
            .map(|(i, (_, ex))| (bucket_upper(*i), ex.clone()))
            .collect()
    }

    /// Non-empty buckets as `(bucket_upper, count)`, for export.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                if c > 0 {
                    Some((bucket_upper(i), c))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Merge another histogram's tallies into this one (associative).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let n = other.count.load(Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        if n > 0 {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + other.sum()).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
            let other_max = f64::from_bits(other.max_bits.load(Ordering::Relaxed));
            let mut cur = self.max_bits.load(Ordering::Relaxed);
            while other_max > f64::from_bits(cur) {
                match self.max_bits.compare_exchange_weak(
                    cur,
                    other_max.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
            let theirs = other.exemplars.lock().unwrap().clone();
            let mut mine = self.exemplars.lock().unwrap();
            for (i, (seen, ex)) in theirs {
                match mine.get_mut(&i) {
                    // A bucket only this histogram has seen keeps the
                    // other's slot verbatim.
                    None => {
                        mine.insert(i, (seen, ex));
                    }
                    // Both sides hold a slot: combine the offer counts and
                    // keep the side that sampled more offers (ties keep
                    // ours) — exemplars are full-export-only, so this
                    // heuristic never touches the stable export.
                    Some((my_seen, my_ex)) => {
                        if seen > *my_seen {
                            *my_ex = ex;
                        }
                        *my_seen += seen;
                    }
                }
            }
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    metric: Metric,
    stability: Stability,
}

/// A point-in-time reading of one metric, as produced by
/// [`Registry::snapshot`]. Sorted by `(name, labels)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Which metric this reading belongs to.
    pub id: MetricId,
    /// Whether the metric is reproducible across same-seed runs.
    pub stability: Stability,
    /// The reading itself.
    pub value: SampleValue,
}

/// The value part of a [`MetricSample`], by metric kind.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// A counter's cumulative total.
    Counter(u64),
    /// A gauge's latest value.
    Gauge(f64),
    /// A histogram's aggregates and bucket tallies.
    Histogram(HistogramSnapshot),
}

/// Point-in-time aggregates of one [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value.
    pub max: f64,
    /// Estimated median (see [`Histogram::quantile`]).
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// `(bucket_upper, count)` for non-empty buckets.
    pub buckets: Vec<(f64, u64)>,
    /// `(bucket_upper, exemplar)` for buckets holding a sampled exemplar.
    /// Always empty in stable snapshots (see [`Exemplar`]).
    pub exemplars: Vec<(f64, Exemplar)>,
}

/// The fleet-wide metrics registry.
///
/// Cheap to clone handles out of; intended to be shared via [`crate::Obs`].
/// The registry mutex is only taken when a handle is first created or a
/// snapshot is read — incrementing through a handle is pure atomics.
///
/// # Example
///
/// ```
/// use seagull_obs::{Registry, SampleValue};
///
/// let reg = Registry::new();
/// reg.counter("requests_total", &[("region", "west")]).inc();
/// reg.histogram("latency_ticks", &[]).observe(3.0);
///
/// let snap = reg.snapshot();
/// assert_eq!(snap.len(), 2);
/// assert_eq!(snap[1].id.name, "requests_total");
/// assert_eq!(snap[1].value, SampleValue::Counter(1));
/// ```
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricId, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Handle to the counter with this identity, registering a
    /// [`Stability::Stable`] one on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter_with(name, labels, Stability::Stable)
    }

    /// Like [`Registry::counter`] with an explicit stability class (the
    /// class recorded at first registration wins).
    ///
    /// # Panics
    /// If the identity is already registered as a different metric type.
    pub fn counter_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        stability: Stability,
    ) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics.entry(id).or_insert_with(|| Entry {
            metric: Metric::Counter(Arc::new(Counter::default())),
            stability,
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Handle to the gauge with this identity, registering a
    /// [`Stability::Stable`] one on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge_with(name, labels, Stability::Stable)
    }

    /// Like [`Registry::gauge`] with an explicit stability class (the
    /// class recorded at first registration wins).
    ///
    /// # Panics
    /// If the identity is already registered as a different metric type.
    pub fn gauge_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        stability: Stability,
    ) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics.entry(id).or_insert_with(|| Entry {
            metric: Metric::Gauge(Arc::new(Gauge::default())),
            stability,
        });
        match &entry.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Handle to the histogram with this identity, registering a
    /// [`Stability::Stable`] one on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with(name, labels, Stability::Stable)
    }

    /// Like [`Registry::histogram`] with an explicit stability class (the
    /// class recorded at first registration wins).
    ///
    /// # Panics
    /// If the identity is already registered as a different metric type.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        stability: Stability,
    ) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics.entry(id).or_insert_with(|| Entry {
            metric: Metric::Histogram(Arc::new(Histogram::default())),
            stability,
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Read every metric, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(id, entry)| MetricSample {
                id: id.clone(),
                stability: entry.stability,
                value: match &entry.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                        buckets: h.nonzero_buckets(),
                        exemplars: h.exemplars(),
                    }),
                },
            })
            .collect()
    }

    /// Snapshot restricted to [`Stability::Stable`] metrics: the set that
    /// must be byte-identical across same-seed runs. Exemplars are stripped
    /// even from stable histograms — reservoir slots depend on thread
    /// interleaving (see [`Exemplar`]).
    pub fn stable_snapshot(&self) -> Vec<MetricSample> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.stability == Stability::Stable)
            .map(|mut s| {
                if let SampleValue::Histogram(h) = &mut s.value {
                    h.exemplars.clear();
                }
                s
            })
            .collect()
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other's latest value, histograms merge bucket tallies. Stability is
    /// taken from the other registry when the metric is first seen here.
    ///
    /// This is the metrics half of determinism-by-merge: concurrent region
    /// runs record into private scratch registries, which the orchestrator
    /// absorbs in region input order so the merged export is independent of
    /// completion order.
    pub fn absorb(&self, other: &Registry) {
        let entries: Vec<(MetricId, Stability, Metric)> = {
            let metrics = other.metrics.lock().unwrap();
            metrics
                .iter()
                .map(|(id, entry)| {
                    let metric = match &entry.metric {
                        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
                        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
                        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
                    };
                    (id.clone(), entry.stability, metric)
                })
                .collect()
        };
        for (id, stability, metric) in entries {
            let labels: Vec<(&str, &str)> = id
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match metric {
                Metric::Counter(theirs) => {
                    self.counter_with(&id.name, &labels, stability)
                        .add(theirs.get());
                }
                Metric::Gauge(theirs) => {
                    self.gauge_with(&id.name, &labels, stability)
                        .set(theirs.get());
                }
                Metric::Histogram(theirs) => {
                    self.histogram_with(&id.name, &labels, stability)
                        .merge(&theirs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", &[("region", "west"), ("stage", "ingest")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same id returns the same underlying counter.
        let c2 = reg.counter("requests_total", &[("stage", "ingest"), ("region", "west")]);
        c2.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_holds_latest() {
        let reg = Registry::new();
        let g = reg.gauge("breaker_state", &[("region", "east")]);
        g.set(2.0);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = Histogram::default();
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.max(), 1000.0);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Half-octave buckets with in-bucket interpolation: estimate within
        // one bucket width (factor sqrt(2)) of the true quantile, either side.
        let rt2 = 2f64.sqrt();
        assert!(p50 >= 500.0 / rt2 && p50 <= 500.0 * rt2, "p50 = {p50}");
        assert!(p99 >= 990.0 / rt2 && p99 <= 990.0 * rt2, "p99 = {p99}");
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn bucket_bounds_nest() {
        for i in 1..BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1));
            assert!(bucket_lower(i) < bucket_upper(i));
        }
        assert_eq!(bucket_lower(0), 0.0);
    }

    #[test]
    fn single_bucket_quantiles_interpolate_not_pin_to_upper() {
        // 100 identical observations land in one bucket; interpolated
        // quantiles must spread across the bucket rather than all reporting
        // the bucket upper bound (the old pessimistic behaviour).
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(10.0);
        }
        let (p10, p90) = (h.quantile(0.10), h.quantile(0.90));
        assert!(p10 < p90, "interpolation collapsed: p10={p10} p90={p90}");
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn exemplars_attach_to_buckets_and_stay_out_of_stable_snapshots() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[]);
        h.observe_exemplar(
            4.0,
            Exemplar {
                value: 4.0,
                span_id: 7,
                tick: 2,
            },
        );
        h.observe(4.0);
        assert_eq!(h.count(), 2);
        let ex = h.exemplars();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].1.span_id, 7);
        assert_eq!(ex[0].0, bucket_upper(bucket_index(4.0)));
        // Full snapshot carries the exemplar; the stable snapshot strips it.
        let full = reg.snapshot();
        let SampleValue::Histogram(hs) = &full[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(hs.exemplars.len(), 1);
        let stable = reg.stable_snapshot();
        let SampleValue::Histogram(hs) = &stable[0].value else {
            panic!("expected histogram");
        };
        assert!(hs.exemplars.is_empty());
    }

    #[test]
    fn exemplar_merge_keeps_slots_from_both_sides() {
        let a = Histogram::default();
        let b = Histogram::default();
        let ex = |id: u64, v: f64| Exemplar {
            value: v,
            span_id: id,
            tick: 0,
        };
        a.observe_exemplar(2.0, ex(1, 2.0));
        b.observe_exemplar(2000.0, ex(2, 2000.0));
        a.merge(&b);
        let slots = a.exemplars();
        assert_eq!(slots.len(), 2);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn histogram_nonpositive_goes_to_underflow_bucket() {
        let h = Histogram::default();
        h.observe(0.0);
        h.observe(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets().len(), 1);
    }

    #[test]
    fn absorb_merges_each_metric_kind() {
        let shared = Registry::new();
        shared.counter("ops_total", &[("region", "a")]).add(2);
        let scratch = Registry::new();
        scratch.counter("ops_total", &[("region", "a")]).add(3);
        scratch.gauge("depth", &[]).set(7.0);
        scratch
            .histogram_with("lat", &[], Stability::Volatile)
            .observe(4.0);
        shared.absorb(&scratch);
        assert_eq!(shared.counter("ops_total", &[("region", "a")]).get(), 5);
        assert_eq!(shared.gauge("depth", &[]).get(), 7.0);
        let h = shared.histogram_with("lat", &[], Stability::Volatile);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 4.0);
        // Stability carried over from the scratch registry.
        let snap = shared.snapshot();
        let lat = snap.iter().find(|s| s.id.name == "lat").unwrap();
        assert_eq!(lat.stability, Stability::Volatile);
    }

    #[test]
    fn absorb_in_fixed_order_is_deterministic() {
        let run = |counts: &[u64]| {
            let shared = Registry::new();
            for (i, n) in counts.iter().enumerate() {
                let scratch = Registry::new();
                scratch.counter("c_total", &[]).add(*n);
                scratch.gauge("last", &[]).set(i as f64);
                shared.absorb(&scratch);
            }
            shared.snapshot()
        };
        assert_eq!(run(&[1, 2, 3]), run(&[1, 2, 3]));
    }

    #[test]
    fn snapshot_is_sorted_and_stability_filtered() {
        let reg = Registry::new();
        reg.counter("b_total", &[]).inc();
        reg.counter("a_total", &[]).inc();
        reg.histogram_with("wall_seconds", &[], Stability::Volatile)
            .observe(0.5);
        let all = reg.snapshot();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].id < w[1].id));
        let stable = reg.stable_snapshot();
        assert_eq!(stable.len(), 2);
        assert!(stable.iter().all(|s| s.stability == Stability::Stable));
    }
}
