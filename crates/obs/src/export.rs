//! Export formats and their parsers.
//!
//! Metrics render to Prometheus-style text exposition; spans render to
//! JSON-lines and to the chrome://tracing `trace_event` array format.
//! Each textual format ships with a parser so round-trips are testable
//! and downstream tools can re-ingest a dump.
//!
//! Determinism: rendering iterates pre-sorted snapshots and formats
//! numbers via shortest-roundtrip `Display`, so equal inputs produce
//! byte-identical text.

use crate::metrics::{MetricSample, SampleValue};
use crate::trace::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which clock(s) a span export includes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeMode {
    /// Virtual ticks only: byte-identical across same-seed runs.
    Stable,
    /// Virtual ticks plus wall-clock micros.
    Full,
}

fn fmt_num(out: &mut String, v: f64) {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn fmt_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, String)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render metric samples as Prometheus text exposition. Histograms use the
/// conventional `_bucket{le=...}` / `_sum` / `_count` series.
pub fn to_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in samples {
        let name = s.id.name.as_str();
        if last_name != Some(name) {
            let kind = match &s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_name = Some(name);
        }
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(name);
                fmt_labels(&mut out, &s.id.labels, None);
                let _ = writeln!(out, " {v}");
            }
            SampleValue::Gauge(v) => {
                out.push_str(name);
                fmt_labels(&mut out, &s.id.labels, None);
                out.push(' ');
                fmt_num(&mut out, *v);
                out.push('\n');
            }
            SampleValue::Histogram(h) => {
                let mut cum = 0u64;
                for (upper, count) in &h.buckets {
                    cum += count;
                    let mut le = String::new();
                    fmt_num(&mut le, *upper);
                    let _ = write!(out, "{name}_bucket");
                    fmt_labels(&mut out, &s.id.labels, Some(("le", le)));
                    let _ = writeln!(out, " {cum}");
                }
                let _ = write!(out, "{name}_bucket");
                fmt_labels(&mut out, &s.id.labels, Some(("le", "+Inf".to_string())));
                let _ = writeln!(out, " {}", h.count);
                let _ = write!(out, "{name}_sum");
                fmt_labels(&mut out, &s.id.labels, None);
                out.push(' ');
                fmt_num(&mut out, h.sum);
                out.push('\n');
                let _ = write!(out, "{name}_count");
                fmt_labels(&mut out, &s.id.labels, None);
                let _ = writeln!(out, " {}", h.count);
                // Exemplars render as comment lines (OpenMetrics-flavoured)
                // so the plain-Prometheus parser above round-trips the
                // numeric series untouched.
                for (upper, ex) in &h.exemplars {
                    let mut le = String::new();
                    fmt_num(&mut le, *upper);
                    let _ = write!(out, "# EXEMPLAR {name}_bucket");
                    fmt_labels(&mut out, &s.id.labels, Some(("le", le)));
                    out.push_str(" value=");
                    fmt_num(&mut out, ex.value);
                    let _ = writeln!(out, " span={} tick={}", ex.span_id, ex.tick);
                }
            }
        }
    }
    out
}

/// One parsed Prometheus sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: BTreeMap<String, String>,
    /// The sample value.
    pub value: f64,
}

/// Parse Prometheus text exposition back into raw sample lines
/// (`# TYPE`/comment lines are skipped).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        let (name_labels, value) = line.rsplit_once(' ').ok_or_else(|| err("missing value"))?;
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse::<f64>().map_err(|_| err("bad value"))?,
        };
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels.to_string(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                let mut labels = BTreeMap::new();
                let mut chars = body.chars().peekable();
                while chars.peek().is_some() {
                    let mut key = String::new();
                    for c in chars.by_ref() {
                        if c == '=' {
                            break;
                        }
                        key.push(c);
                    }
                    if chars.next() != Some('"') {
                        return Err(err("expected opening quote"));
                    }
                    let mut val = String::new();
                    let mut escaped = false;
                    for c in chars.by_ref() {
                        if escaped {
                            val.push(match c {
                                'n' => '\n',
                                other => other,
                            });
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else if c == '"' {
                            break;
                        } else {
                            val.push(c);
                        }
                    }
                    labels.insert(key, val);
                    if chars.peek() == Some(&',') {
                        chars.next();
                    }
                }
                (name.to_string(), labels)
            }
        };
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

fn escape_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn span_to_json(out: &mut String, s: &SpanRecord, mode: TimeMode) {
    let _ = write!(out, "{{\"id\":{},\"parent\":", s.id);
    match s.parent {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"name\":");
    escape_json(out, &s.name);
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in s.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(out, k);
        out.push(':');
        escape_json(out, v);
    }
    let _ = write!(out, "}},\"seq\":{},\"start_tick\":{}", s.seq, s.start_tick);
    if let Some(end) = s.end_tick {
        let _ = write!(out, ",\"end_tick\":{end}");
    }
    if mode == TimeMode::Full {
        if let Some(wall) = s.wall {
            let _ = write!(out, ",\"wall_us\":{}", wall.as_micros());
        }
        if s.volatile {
            out.push_str(",\"volatile\":true");
        }
    }
    out.push('}');
}

/// Render spans as JSON-lines, one span object per line, in start order.
///
/// In [`TimeMode::Stable`], volatile spans (per-item operator detail, see
/// [`SpanRecord::volatile`]) are dropped and the surviving ids/seq are
/// renumbered compactly — the stable dump is byte-identical to one from a
/// run that never emitted them, so execution strategies that decompose a
/// stage differently still compare equal. Children of a dropped span are
/// re-parented to their nearest retained ancestor.
pub fn spans_to_json_lines(spans: &[SpanRecord], mode: TimeMode) -> String {
    let mut out = String::new();
    if mode == TimeMode::Stable && spans.iter().any(|s| s.volatile) {
        let parent_of: BTreeMap<u64, Option<u64>> =
            spans.iter().map(|s| (s.id, s.parent)).collect();
        let mut new_id: BTreeMap<u64, u64> = BTreeMap::new();
        for s in spans.iter().filter(|s| !s.volatile) {
            let next = new_id.len() as u64 + 1;
            new_id.insert(s.id, next);
        }
        for s in spans.iter().filter(|s| !s.volatile) {
            let mut r = s.clone();
            r.id = new_id[&s.id];
            let mut parent = s.parent;
            r.parent = loop {
                match parent {
                    None => break None,
                    Some(p) => match new_id.get(&p) {
                        Some(mapped) => break Some(*mapped),
                        None => parent = parent_of.get(&p).copied().flatten(),
                    },
                }
            };
            r.seq = r.id - 1;
            span_to_json(&mut out, &r, mode);
            out.push('\n');
        }
        return out;
    }
    for s in spans {
        span_to_json(&mut out, s, mode);
        out.push('\n');
    }
    out
}

/// Parse a JSON-lines span dump back into records (wall time, if present,
/// is restored with microsecond precision).
pub fn parse_span_json_lines(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let obj = v.as_object().ok_or_else(|| err("not an object"))?;
        let get_u64 = |key: &str| -> Option<u64> { obj.get(key).and_then(|v| v.as_u64()) };
        let labels = match obj.get("labels") {
            Some(json::Value::Object(map)) => map
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| err("label value not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        spans.push(SpanRecord {
            id: get_u64("id").ok_or_else(|| err("missing id"))?,
            parent: get_u64("parent"),
            name: obj
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| err("missing name"))?
                .to_string(),
            labels,
            seq: get_u64("seq").ok_or_else(|| err("missing seq"))?,
            start_tick: get_u64("start_tick").ok_or_else(|| err("missing start_tick"))?,
            end_tick: get_u64("end_tick"),
            wall: get_u64("wall_us").map(std::time::Duration::from_micros),
            volatile: matches!(obj.get("volatile"), Some(json::Value::Bool(true))),
        });
    }
    Ok(spans)
}

/// Microseconds of chrome-trace time per virtual tick: ticks render as
/// milliseconds so day-granular spans are visible in the viewer.
const TICK_US: u64 = 1000;

/// Render spans as a chrome://tracing `trace_event` JSON array of complete
/// (`"ph":"X"`) events on the virtual clock. Load via `chrome://tracing`
/// or <https://ui.perfetto.dev>.
pub fn spans_to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for s in spans {
        let Some(end) = s.end_tick else { continue };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":");
        escape_json(&mut out, &s.name);
        let ts = s.start_tick * TICK_US + s.seq;
        let dur = ((end - s.start_tick) * TICK_US).max(1);
        let _ = write!(
            out,
            ",\"cat\":\"seagull\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":1,\"args\":{{"
        );
        for (k, v) in &s.labels {
            escape_json(&mut out, k);
            out.push(':');
            escape_json(&mut out, v);
            out.push(',');
        }
        let _ = write!(out, "\"id\":{}", s.id);
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":{p}");
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Minimal JSON value tree + parser, local to the obs crate so it stays
/// dependency-free. Only what the span/trace round-trip needs.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON `true`/`false`.
        Bool(bool),
        /// Any JSON number (held as `f64`).
        Number(f64),
        /// A JSON string.
        String(String),
        /// A JSON array.
        Array(Vec<Value>),
        /// A JSON object with sorted keys.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// The object's map, if this value is an object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The array's elements, if this value is an array.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string contents, if this value is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The number, if this value is numeric.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The number as a non-negative integer, if exactly representable.
        pub fn as_u64(&self) -> Option<u64> {
            self.as_f64()
                .filter(|v| *v >= 0.0 && v.trunc() == *v)
                .map(|v| v as u64)
        }

        /// Member lookup: `Some` only for objects containing `key`.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object().and_then(|m| m.get(key))
        }
    }

    /// Parses a JSON document into a [`Value`] tree.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, kw: &str) -> bool {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'n') if self.eat("null") => Ok(Value::Null),
                Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.string().map(Value::String),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|b| b as char),
                    self.pos
                )),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.pos += 1; // opening quote
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                self.pos += 4;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(format!("bad escape \\{}", other as char)),
                        }
                    }
                    Some(_) => {
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| e.to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }

        fn array(&mut self) -> Result<Value, String> {
            self.pos += 1; // '['
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => {
                        return Err(format!(
                            "expected , or ] got {:?}",
                            other.map(|b| b as char)
                        ))
                    }
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.pos += 1; // '{'
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                if self.peek() != Some(b'"') {
                    return Err("expected object key".to_string());
                }
                let key = self.string()?;
                self.skip_ws();
                if self.peek() != Some(b':') {
                    return Err("expected :".to_string());
                }
                self.pos += 1;
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    other => {
                        return Err(format!(
                            "expected , or }} got {:?}",
                            other.map(|b| b as char)
                        ))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::Tracer;

    #[test]
    fn prometheus_round_trip() {
        let reg = Registry::new();
        reg.counter(
            "seagull_ops_total",
            &[("region", "west"), ("stage", "ingestion")],
        )
        .add(7);
        reg.gauge("seagull_breaker_state", &[("region", "west")])
            .set(2.0);
        let h = reg.histogram("seagull_stage_ticks", &[("region", "west")]);
        h.observe(1.0);
        h.observe(6.0);
        h.observe(7.0);

        let text = to_prometheus(&reg.snapshot());
        let parsed = parse_prometheus(&text).expect("parse");

        let find = |name: &str| {
            parsed
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(find("seagull_ops_total").value, 7.0);
        assert_eq!(
            find("seagull_ops_total")
                .labels
                .get("stage")
                .map(String::as_str),
            Some("ingestion")
        );
        assert_eq!(find("seagull_breaker_state").value, 2.0);
        assert_eq!(find("seagull_stage_ticks_count").value, 3.0);
        assert_eq!(find("seagull_stage_ticks_sum").value, 14.0);
        let inf_bucket = parsed
            .iter()
            .find(|s| {
                s.name == "seagull_stage_ticks_bucket"
                    && s.labels.get("le").map(String::as_str) == Some("+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf_bucket.value, 3.0);
    }

    #[test]
    fn prometheus_rendering_is_deterministic() {
        let build = || {
            let reg = Registry::new();
            // Register in scrambled order; BTreeMap snapshot sorts it.
            reg.counter("z_total", &[("region", "b")]).add(1);
            reg.counter("a_total", &[("region", "a")]).add(2);
            reg.counter("z_total", &[("region", "a")]).add(3);
            to_prometheus(&reg.snapshot())
        };
        assert_eq!(build(), build());
        let text = build();
        let a = text.find("a_total").unwrap();
        let z = text.find("z_total").unwrap();
        assert!(a < z, "samples must be name-sorted:\n{text}");
    }

    #[test]
    fn span_json_lines_round_trip() {
        let t = Tracer::new();
        let root = t.start("run-week", &[("region", "west")], 0);
        let child = t.child(root, "train \"quoted\"", &[], 2);
        t.end(child, 5);
        t.end(root, 7);

        for mode in [TimeMode::Stable, TimeMode::Full] {
            let text = spans_to_json_lines(&t.spans(), mode);
            let parsed = parse_span_json_lines(&text).expect("parse");
            assert_eq!(parsed.len(), 2);
            assert_eq!(parsed[0].name, "run-week");
            assert_eq!(
                parsed[0].labels,
                vec![("region".to_string(), "west".to_string())]
            );
            assert_eq!(parsed[1].parent, Some(parsed[0].id));
            assert_eq!(parsed[1].name, "train \"quoted\"");
            assert_eq!(parsed[1].start_tick, 2);
            assert_eq!(parsed[1].end_tick, Some(5));
            match mode {
                TimeMode::Stable => assert!(parsed.iter().all(|s| s.wall.is_none())),
                TimeMode::Full => assert!(parsed.iter().all(|s| s.wall.is_some())),
            }
        }
    }

    #[test]
    fn stable_span_dump_drops_and_renumbers_volatile_spans() {
        use std::time::Duration;
        // A "fused" trace: stage span with per-item volatile children, then
        // a later stage. The stable dump must be byte-identical to a trace
        // that never recorded the volatile spans.
        let fused = Tracer::new();
        let root = fused.start("run-week", &[("region", "west")], 0);
        let stage = fused.child(root, "train-infer", &[], 1);
        for server in 0..3 {
            fused.child_complete(
                stage,
                "fused-op",
                &[("server", &server.to_string())],
                1,
                1,
                Duration::from_millis(server),
            );
        }
        fused.end(stage, 2);
        let later = fused.child(root, "deployment", &[], 2);
        fused.end(later, 3);
        fused.end(root, 3);

        let plain = Tracer::new();
        let root = plain.start("run-week", &[("region", "west")], 0);
        let stage = plain.child(root, "train-infer", &[], 1);
        plain.end(stage, 2);
        let later = plain.child(root, "deployment", &[], 2);
        plain.end(later, 3);
        plain.end(root, 3);

        assert_eq!(
            spans_to_json_lines(&fused.spans(), TimeMode::Stable),
            spans_to_json_lines(&plain.spans(), TimeMode::Stable),
        );
        // The full dump keeps the operator spans, flagged volatile.
        let full = spans_to_json_lines(&fused.spans(), TimeMode::Full);
        assert_eq!(full.matches("\"volatile\":true").count(), 3);
        let parsed = parse_span_json_lines(&full).expect("parse full dump");
        assert_eq!(parsed.iter().filter(|s| s.volatile).count(), 3);
    }

    #[test]
    fn stable_json_lines_are_reproducible() {
        let run = || {
            let t = Tracer::new();
            let root = t.start("w", &[("region", "east")], 7);
            let c = t.child(root, "stage", &[], 7);
            t.end(c, 8);
            t.end(root, 14);
            spans_to_json_lines(&t.spans(), TimeMode::Stable)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let t = Tracer::new();
        let root = t.start("run-week", &[("region", "west")], 0);
        let child = t.child(root, "ingestion", &[], 0);
        t.end(child, 1);
        t.end(root, 7);
        let _unfinished = t.start("pending", &[], 3);

        let text = spans_to_chrome_trace(&t.spans());
        let v = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = v.as_array().expect("array");
        assert_eq!(events.len(), 2, "unfinished spans are skipped");
        let first = &events[0];
        assert_eq!(first.get("name").and_then(|v| v.as_str()), Some("run-week"));
        assert_eq!(first.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(first.get("dur").and_then(|v| v.as_u64()), Some(7000));
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("region"))
                .and_then(|v| v.as_str()),
            Some("west")
        );
    }
}
