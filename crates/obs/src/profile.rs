//! Profiling hooks for parallel execution: per-worker items processed,
//! busy/steal-idle wall time, and an imbalance ratio.
//!
//! Worker-to-item assignment depends on OS scheduling, so everything here
//! except the total item count is inherently non-deterministic; when
//! recorded into a [`crate::metrics::Registry`] the per-worker series are
//! registered [`crate::metrics::Stability::Volatile`].

use crate::metrics::{Registry, Stability};
use std::time::Duration;

/// What one worker did during a `parallel_map` region.
#[derive(Clone, Debug)]
pub struct WorkerProfile {
    /// Worker index within the pool.
    pub worker: usize,
    /// Items this worker pulled from the shared queue.
    pub items: u64,
    /// Wall time spent inside the mapped closure.
    pub busy: Duration,
    /// Wall time the worker spent without work while the region was still
    /// running (steal-idle: the queue was drained but siblings were busy).
    pub idle: Duration,
}

/// Profile of one parallel region.
#[derive(Clone, Debug, Default)]
pub struct ParallelProfile {
    /// Per-worker breakdown, indexed by worker.
    pub workers: Vec<WorkerProfile>,
    /// Wall duration of the whole region (fork to last join).
    pub region_wall: Duration,
}

impl ParallelProfile {
    /// Items processed across all workers.
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Steal-idle time summed across all workers.
    pub fn total_idle(&self) -> Duration {
        self.workers.iter().map(|w| w.idle).sum()
    }

    /// Max items on one worker over the mean items per worker.
    /// 1.0 means perfectly balanced; 0.0 when the region processed nothing.
    pub fn imbalance_ratio(&self) -> f64 {
        let total = self.total_items();
        if total == 0 || self.workers.is_empty() {
            return 0.0;
        }
        let max = self.workers.iter().map(|w| w.items).max().unwrap_or(0) as f64;
        let mean = total as f64 / self.workers.len() as f64;
        max / mean
    }

    /// Record this profile into `registry` under the given stage label.
    ///
    /// Stable: item totals. Volatile: worker count (it mirrors the
    /// configured thread count, and stable exports must compare equal across
    /// thread counts), per-worker items, busy/idle seconds, imbalance ratio
    /// (all scheduling-dependent).
    pub fn record(&self, registry: &Registry, stage: &str) {
        let labels = [("stage", stage)];
        registry
            .counter("seagull_parallel_items_total", &labels)
            .add(self.total_items());
        registry
            .gauge_with("seagull_parallel_workers", &labels, Stability::Volatile)
            .set(self.workers.len() as f64);
        registry
            .gauge_with(
                "seagull_parallel_imbalance_ratio",
                &labels,
                Stability::Volatile,
            )
            .set(self.imbalance_ratio());
        registry
            .gauge_with(
                "seagull_parallel_idle_seconds",
                &labels,
                Stability::Volatile,
            )
            .set(self.total_idle().as_secs_f64());
        let items_hist = registry.histogram_with(
            "seagull_parallel_worker_items",
            &labels,
            Stability::Volatile,
        );
        let busy_hist = registry.histogram_with(
            "seagull_parallel_worker_busy_seconds",
            &labels,
            Stability::Volatile,
        );
        for w in &self.workers {
            items_hist.observe(w.items as f64);
            busy_hist.observe(w.busy.as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{SampleValue, Stability};

    fn worker(worker: usize, items: u64, busy_ms: u64, idle_ms: u64) -> WorkerProfile {
        WorkerProfile {
            worker,
            items,
            busy: Duration::from_millis(busy_ms),
            idle: Duration::from_millis(idle_ms),
        }
    }

    #[test]
    fn imbalance_ratio_balanced_is_one() {
        let p = ParallelProfile {
            workers: vec![worker(0, 10, 5, 0), worker(1, 10, 5, 0)],
            region_wall: Duration::from_millis(5),
        };
        assert!((p.imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio_skew() {
        let p = ParallelProfile {
            workers: vec![worker(0, 30, 5, 0), worker(1, 10, 2, 3)],
            region_wall: Duration::from_millis(5),
        };
        // max=30, mean=20 -> 1.5
        assert!((p.imbalance_ratio() - 1.5).abs() < 1e-12);
        assert_eq!(p.total_items(), 40);
        assert_eq!(p.total_idle(), Duration::from_millis(3));
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = ParallelProfile::default();
        assert_eq!(p.imbalance_ratio(), 0.0);
        assert_eq!(p.total_items(), 0);
    }

    #[test]
    fn record_marks_scheduling_series_volatile() {
        let reg = Registry::new();
        let p = ParallelProfile {
            workers: vec![worker(0, 4, 1, 0), worker(1, 2, 1, 1)],
            region_wall: Duration::from_millis(2),
        };
        p.record(&reg, "train-infer");
        let snapshot = reg.snapshot();
        let stability = |name: &str| {
            snapshot
                .iter()
                .find(|s| s.id.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .stability
        };
        assert_eq!(stability("seagull_parallel_items_total"), Stability::Stable);
        assert_eq!(stability("seagull_parallel_workers"), Stability::Volatile);
        assert_eq!(
            stability("seagull_parallel_imbalance_ratio"),
            Stability::Volatile
        );
        assert_eq!(
            stability("seagull_parallel_worker_items"),
            Stability::Volatile
        );
        let items = snapshot
            .iter()
            .find(|s| s.id.name == "seagull_parallel_items_total")
            .unwrap();
        assert_eq!(items.value, SampleValue::Counter(6));
    }
}
