//! Span-based tracing with explicit start/end, parent links, and dual
//! clocks: every span records its position in **virtual scheduler-tick
//! time** (caller-supplied, deterministic) and in **wall time** (measured
//! internally with `Instant`, excluded from stable exports).
//!
//! Spans are exported as JSON-lines (one span per line) or as a
//! chrome://tracing `trace_event` array laid out on the virtual clock.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Handle to an in-flight or finished span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The numeric span id as recorded in [`SpanRecord::id`].
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One recorded span. `end_tick`/`wall` are `None` while in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span id, 1-based in start order.
    pub id: u64,
    /// Id of the enclosing span, `None` for roots.
    pub parent: Option<u64>,
    /// Span name, e.g. a pipeline stage.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Start order: deterministic tiebreaker for spans sharing a tick.
    pub seq: u64,
    /// Virtual scheduler tick the span started at.
    pub start_tick: u64,
    /// Virtual tick the span ended at, `None` while in flight.
    pub end_tick: Option<u64>,
    /// Wall-clock duration, set at `end`. Never part of stable exports.
    pub wall: Option<Duration>,
    /// Volatile spans carry wall-timing detail only (per-item operator
    /// spans recorded by [`Tracer::child_complete`]): they appear in full
    /// exports but are dropped — and the remaining ids renumbered — in
    /// stable exports, so execution strategies that differ only in how
    /// they decompose a stage stay byte-identical on the stable surface.
    pub volatile: bool,
}

impl SpanRecord {
    /// Duration on the virtual clock, `None` while in flight.
    pub fn tick_duration(&self) -> Option<u64> {
        self.end_tick.map(|e| e.saturating_sub(self.start_tick))
    }
}

struct ActiveSpan {
    record: SpanRecord,
    started: Instant,
}

#[derive(Default)]
struct TracerInner {
    /// Finished and in-flight spans, indexed by `id - 1`.
    spans: Vec<ActiveSpan>,
}

/// Collects spans for one run. Share via [`crate::Obs`].
///
/// # Example
///
/// ```
/// use seagull_obs::Tracer;
///
/// let tracer = Tracer::new();
/// let root = tracer.start("run-week", &[("region", "west")], 0);
/// let stage = tracer.child(root, "ingestion", &[], 2);
/// tracer.end(stage, 5);
/// tracer.end(root, 9);
///
/// let spans = tracer.spans();
/// assert_eq!(spans[1].parent, Some(spans[0].id));
/// assert_eq!(spans[1].tick_duration(), Some(3));
/// ```
#[derive(Default)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Start a root span at the given virtual tick.
    pub fn start(&self, name: &str, labels: &[(&str, &str)], start_tick: u64) -> SpanId {
        self.start_impl(name, labels, None, start_tick)
    }

    /// Start a span nested under `parent`.
    pub fn child(
        &self,
        parent: SpanId,
        name: &str,
        labels: &[(&str, &str)],
        start_tick: u64,
    ) -> SpanId {
        self.start_impl(name, labels, Some(parent.0), start_tick)
    }

    fn start_impl(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        parent: Option<u64>,
        start_tick: u64,
    ) -> SpanId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let mut inner = self.inner.lock().unwrap();
        let id = inner.spans.len() as u64 + 1;
        let seq = id - 1;
        inner.spans.push(ActiveSpan {
            record: SpanRecord {
                id,
                parent,
                name: name.to_string(),
                labels,
                seq,
                start_tick,
                end_tick: None,
                wall: None,
                volatile: false,
            },
            started: Instant::now(),
        });
        SpanId(id)
    }

    /// Record an already-completed span under `parent` with an explicit,
    /// externally measured wall duration.
    ///
    /// Parallel operators cannot call [`Tracer::child`]/[`Tracer::end`]
    /// directly without making span ids depend on thread interleaving, so
    /// the fused dataflow pipeline measures each per-server operator's wall
    /// time off-thread and commits the span *retroactively* at the serial
    /// absorb barrier, in server input order — span ids, seq, and structure
    /// stay deterministic across thread counts.
    ///
    /// The recorded span is [volatile](SpanRecord::volatile): per-item
    /// operator spans are wall-timing detail, visible in full exports and
    /// chrome traces but excluded from the stable export, whose span dump
    /// must not depend on how a stage was decomposed.
    pub fn child_complete(
        &self,
        parent: SpanId,
        name: &str,
        labels: &[(&str, &str)],
        start_tick: u64,
        end_tick: u64,
        wall: Duration,
    ) -> SpanId {
        let id = self.start_impl(name, labels, Some(parent.0), start_tick);
        let mut inner = self.inner.lock().unwrap();
        if let Some(active) = inner.spans.get_mut(id.0 as usize - 1) {
            active.record.end_tick = Some(end_tick.max(start_tick));
            active.record.wall = Some(wall);
            active.record.volatile = true;
        }
        id
    }

    /// Finish a span at the given virtual tick with an explicit, externally
    /// measured wall duration instead of this tracer's own clock. Used for
    /// stages whose cost is the sum of per-item operator walls measured
    /// inside a parallel region (e.g. the fused pipeline's featurize
    /// sub-stage). First end wins, like [`Tracer::end`].
    pub fn end_with_wall(&self, span: SpanId, end_tick: u64, wall: Duration) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(active) = inner.spans.get_mut(span.0 as usize - 1) {
            if active.record.end_tick.is_none() {
                active.record.end_tick = Some(end_tick.max(active.record.start_tick));
                active.record.wall = Some(wall);
            }
        }
    }

    /// Finish a span at the given virtual tick, capturing wall duration.
    /// Finishing twice is a no-op (first end wins).
    pub fn end(&self, span: SpanId, end_tick: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(active) = inner.spans.get_mut(span.0 as usize - 1) {
            if active.record.end_tick.is_none() {
                active.record.end_tick = Some(end_tick.max(active.record.start_tick));
                active.record.wall = Some(active.started.elapsed());
            }
        }
    }

    /// Wall-clock duration of a finished span.
    pub fn wall_duration(&self, span: SpanId) -> Option<Duration> {
        let inner = self.inner.lock().unwrap();
        inner
            .spans
            .get(span.0 as usize - 1)
            .and_then(|a| a.record.wall)
    }

    /// Snapshot of all spans in start order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let inner = self.inner.lock().unwrap();
        inner.spans.iter().map(|a| a.record.clone()).collect()
    }

    /// Spans that have finished, in start order.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.spans()
            .into_iter()
            .filter(|s| s.end_tick.is_some())
            .collect()
    }

    /// Append every span of `other`, remapping ids (and parent links) past
    /// this tracer's current range and reassigning `seq` to the new start
    /// order. Wall durations and ticks are preserved.
    ///
    /// The tracing half of determinism-by-merge: concurrent region runs
    /// trace into private scratch tracers, absorbed in region input order so
    /// span ids/seq in the merged export do not depend on interleaving.
    pub fn absorb(&self, other: &Tracer) {
        let mut inner = self.inner.lock().unwrap();
        let theirs = other.inner.lock().unwrap();
        let base = inner.spans.len() as u64;
        for active in &theirs.spans {
            let mut record = active.record.clone();
            record.id += base;
            record.parent = record.parent.map(|p| p + base);
            record.seq = record.id - 1;
            inner.spans.push(ActiveSpan {
                record,
                started: active.started,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_complete_records_finished_span_with_given_wall() {
        let t = Tracer::new();
        let root = t.start("run-week", &[], 0);
        let wall = Duration::from_millis(42);
        let op = t.child_complete(root, "fused-op", &[("server", "7")], 3, 3, wall);
        t.end(root, 9);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].name, "fused-op");
        assert_eq!(spans[1].end_tick, Some(3));
        assert_eq!(spans[1].wall, Some(wall));
        assert!(spans[1].volatile, "retroactive op spans are volatile");
        assert!(!spans[0].volatile);
        assert_eq!(t.wall_duration(op), Some(wall));
        assert_eq!(t.finished_spans().len(), 2);
    }

    #[test]
    fn end_with_wall_overrides_the_tracer_clock() {
        let t = Tracer::new();
        let s = t.start("features", &[], 2);
        let wall = Duration::from_millis(7);
        t.end_with_wall(s, 2, wall);
        t.end_with_wall(s, 9, Duration::from_millis(99));
        let spans = t.spans();
        assert_eq!(spans[0].end_tick, Some(2), "first end wins");
        assert_eq!(spans[0].wall, Some(wall));
        assert!(!spans[0].volatile);
    }

    #[test]
    fn parent_links_and_ticks() {
        let t = Tracer::new();
        let root = t.start("run-week", &[("region", "west")], 0);
        let child = t.child(root, "ingestion", &[("region", "west")], 0);
        t.end(child, 3);
        t.end(root, 7);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "run-week");
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].tick_duration(), Some(3));
        assert_eq!(spans[0].tick_duration(), Some(7));
        assert!(spans.iter().all(|s| s.wall.is_some()));
    }

    #[test]
    fn double_end_keeps_first() {
        let t = Tracer::new();
        let s = t.start("stage", &[], 1);
        t.end(s, 2);
        t.end(s, 9);
        assert_eq!(t.spans()[0].end_tick, Some(2));
    }

    #[test]
    fn end_tick_never_precedes_start() {
        let t = Tracer::new();
        let s = t.start("stage", &[], 5);
        t.end(s, 3);
        assert_eq!(t.spans()[0].end_tick, Some(5));
    }

    #[test]
    fn absorb_remaps_ids_parents_and_seq() {
        let shared = Tracer::new();
        let existing = shared.start("main", &[], 0);
        shared.end(existing, 1);

        let scratch = Tracer::new();
        let root = scratch.start("run-week", &[("region", "b")], 0);
        let child = scratch.child(root, "ingestion", &[], 1);
        scratch.end(child, 2);
        scratch.end(root, 5);

        shared.absorb(&scratch);
        let spans = shared.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].id, 2);
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[2].id, 3);
        assert_eq!(spans[2].parent, Some(2));
        assert!(spans.iter().enumerate().all(|(i, s)| s.seq == i as u64));
        assert_eq!(spans[2].tick_duration(), Some(1));
        assert!(spans[2].wall.is_some());
    }

    #[test]
    fn unfinished_spans_are_excluded_from_finished() {
        let t = Tracer::new();
        let a = t.start("done", &[], 0);
        let _b = t.start("pending", &[], 0);
        t.end(a, 1);
        let finished = t.finished_spans();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].name, "done");
    }
}
