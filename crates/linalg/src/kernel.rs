//! Chunked, FMA-friendly vector kernels.
//!
//! Every hot inner loop in this crate bottoms out in one of two shapes: a
//! dot product (`Σ aᵢ·bᵢ`) or an axpy (`yᵢ += α·xᵢ`). Written naively over
//! indexed elements those loops carry bounds checks and a single serial
//! accumulator, which blocks the compiler from keeping several
//! fused-multiply-adds in flight. The kernels here process both operands in
//! fixed-width chunks with independent accumulators — `chunks_exact` erases
//! the bounds checks and the 4/8-wide accumulator banks give the backend
//! straight-line code it can vectorize — and handle the ragged tail
//! separately.
//!
//! Accumulation order is fixed by the chunk layout, so results are
//! deterministic for a given input (they differ from a serial left-to-right
//! sum by the usual floating-point reassociation, which every caller in
//! this workspace tolerates).

/// Chunk width for the dot-product accumulator bank.
const DOT_LANES: usize = 8;

/// Dot product `Σ aᵢ·bᵢ` over the common prefix of `a` and `b`, computed
/// with an 8-wide accumulator bank.
///
/// Debug builds assert equal lengths; release builds silently use the
/// shorter slice, matching `Iterator::zip`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot operands must be equal length");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; DOT_LANES];
    let mut ca = a.chunks_exact(DOT_LANES);
    let mut cb = b.chunks_exact(DOT_LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..DOT_LANES {
            acc[l] = xa[l].mul_add(xb[l], acc[l]);
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail = x.mul_add(*y, tail);
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// `y[i] += alpha * x[i]` over the common prefix, in 4-wide chunks.
#[inline]
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len(), "axpy operands must be equal length");
    if alpha == 0.0 {
        return;
    }
    let n = y.len().min(x.len());
    let (y, x) = (&mut y[..n], &x[..n]);
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (wy, wx) in (&mut cy).zip(&mut cx) {
        wy[0] = wx[0].mul_add(alpha, wy[0]);
        wy[1] = wx[1].mul_add(alpha, wy[1]);
        wy[2] = wx[2].mul_add(alpha, wy[2]);
        wy[3] = wx[3].mul_add(alpha, wy[3]);
    }
    for (py, px) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *py = px.mul_add(alpha, *py);
    }
}

/// `y[i] -= alpha * x[i]` over the common prefix — the subtraction twin of
/// [`axpy`], used by the triangular solvers.
#[inline]
pub fn axmy(y: &mut [f64], alpha: f64, x: &[f64]) {
    axpy(y, -alpha, x);
}

/// Squared Euclidean norm `Σ aᵢ²`.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// `y[i] *= alpha` in place.
#[inline]
pub fn scale(y: &mut [f64], alpha: f64) {
    for v in y {
        *v *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, k: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(k) % 97) as f64 / 7.0 - 5.0)
            .collect()
    }

    #[test]
    fn dot_matches_serial_sum() {
        for n in [0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let a = series(n, 31);
            let b = series(n, 17);
            let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let chunked = dot(&a, &b);
            assert!(
                (serial - chunked).abs() <= 1e-9 * serial.abs().max(1.0),
                "n={n}: serial {serial} vs chunked {chunked}"
            );
        }
    }

    #[test]
    fn axpy_matches_serial_update() {
        for n in [0, 1, 2, 3, 4, 5, 11, 100] {
            let x = series(n, 13);
            let mut y = series(n, 29);
            let mut expect = y.clone();
            for (e, v) in expect.iter_mut().zip(&x) {
                *e += 2.5 * v;
            }
            axpy(&mut y, 2.5, &x);
            for (a, b) in y.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let x = vec![f64::MAX; 8];
        let mut y = series(8, 3);
        let before = y.clone();
        axpy(&mut y, 0.0, &x);
        assert_eq!(y, before);
    }

    #[test]
    fn axmy_subtracts() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = vec![10.0; 5];
        axmy(&mut y, 2.0, &x);
        assert_eq!(y, vec![8.0, 6.0, 4.0, 2.0, 0.0]);
    }

    #[test]
    fn norm_sq_and_scale() {
        let mut v = vec![3.0, 4.0];
        assert!((norm_sq(&v) - 25.0).abs() < 1e-12);
        scale(&mut v, 2.0);
        assert_eq!(v, vec![6.0, 8.0]);
    }

    #[test]
    fn dot_deterministic_across_calls() {
        let a = series(1023, 41);
        let b = series(1023, 43);
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }
}
