//! Hankel (trajectory) matrices for singular spectrum analysis.

use crate::matrix::Matrix;

/// Builds the SSA trajectory matrix of a series: an `L × K` Hankel matrix
/// whose column `k` is the window `series[k .. k+L]`, with `K = n - L + 1`.
///
/// Panics if `window == 0` or `window > series.len()` — SSA callers validate
/// the window against the history length before embedding.
pub fn hankel_matrix(series: &[f64], window: usize) -> Matrix {
    assert!(
        window > 0 && window <= series.len(),
        "SSA window {} out of range for series of length {}",
        window,
        series.len()
    );
    let l = window;
    let k = series.len() - window + 1;
    // Row i is the contiguous window series[i..i+k]; filling row-wise from
    // a pooled buffer keeps the embed allocation-free in batched fits
    // (recycle the matrix after use to close the loop).
    let mut data = crate::scratch::take(l * k);
    for i in 0..l {
        data.extend_from_slice(&series[i..i + k]);
    }
    Matrix::from_rows(l, k, data)
}

/// The Gram matrix `H Hᵀ` of the trajectory embedding, computed directly
/// from the series without materializing the `L × K` Hankel matrix.
///
/// `G[i][j] = Σ_t series[i+t]·series[j+t]` over the `K = n − L + 1` window
/// positions. The first row is computed by direct sliding dot products and
/// every later entry by the O(1) diagonal recurrence
/// `G[i][j] = G[i−1][j−1] − s[i−1]s[j−1] + s[i−1+K]s[j−1+K]`, so the whole
/// matrix costs `O(L·n)` instead of the `O(L²·K)` of `hankel_matrix + gram`.
/// The diagonal is recomputed with exact dot products (it carries the total
/// energy used for SSA rank selection, so it should not accumulate
/// recurrence drift).
///
/// The result is pool-backed — recycle it in batched fits. Panics on the
/// same window bounds as [`hankel_matrix`].
pub fn hankel_gram(series: &[f64], window: usize) -> Matrix {
    assert!(
        window > 0 && window <= series.len(),
        "SSA window {} out of range for series of length {}",
        window,
        series.len()
    );
    let l = window;
    let k = series.len() - window + 1;
    let mut g = Matrix::zeros_pooled(l, l);
    for j in 0..l {
        g[(0, j)] = crate::kernel::dot(&series[0..k], &series[j..j + k]);
    }
    for i in 1..l {
        for j in i..l {
            g[(i, j)] = g[(i - 1, j - 1)] - series[i - 1] * series[j - 1]
                + series[i - 1 + k] * series[j - 1 + k];
        }
    }
    for i in 0..l {
        g[(i, i)] = crate::kernel::norm_sq(&series[i..i + k]);
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

/// Inverse of the Hankel embedding: averages the anti-diagonals of an
/// `L × K` matrix back into a series of length `L + K - 1`.
///
/// For a matrix that is exactly Hankel this reproduces the original series;
/// for the low-rank approximations SSA produces it is the diagonal-averaging
/// (hankelization) step of the algorithm.
pub fn hankelize(m: &Matrix) -> Vec<f64> {
    let (l, k) = m.shape();
    if l == 0 || k == 0 {
        return Vec::new();
    }
    let n = l + k - 1;
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0u32; n];
    for i in 0..l {
        let row = m.row(i);
        for (j, &v) in row.iter().enumerate() {
            sums[i + j] += v;
            counts[i + j] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| s / c as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_shape_and_content() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        let h = hankel_matrix(&s, 3);
        assert_eq!(h.shape(), (3, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(h.row(1), &[2.0, 3.0, 4.0]);
        assert_eq!(h.row(2), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn hankelize_inverts_embedding() {
        let s: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        for window in [1, 2, 5, 10, 20] {
            let h = hankel_matrix(&s, window);
            let back = hankelize(&h);
            assert_eq!(back.len(), s.len());
            for (a, b) in back.iter().zip(&s) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hankelize_averages_antidiagonals() {
        // A non-Hankel matrix: check explicit averaging.
        let m = Matrix::from_rows(2, 2, vec![1.0, 3.0, 5.0, 7.0]);
        let s = hankelize(&m);
        assert_eq!(s, vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn empty_matrix_hankelizes_to_empty() {
        assert!(hankelize(&Matrix::zeros(0, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_window_panics() {
        hankel_matrix(&[1.0, 2.0], 3);
    }

    #[test]
    fn hankel_gram_matches_explicit_product() {
        let s: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.31).sin() * 40.0 + 50.0 + (i % 7) as f64)
            .collect();
        for window in [1, 2, 12, 48, 60] {
            let g = hankel_gram(&s, window);
            let h = hankel_matrix(&s, window);
            let explicit = h.matmul(&h.transpose()).unwrap();
            let scale = explicit[(0, 0)].abs().max(1.0);
            assert!(
                g.max_abs_diff(&explicit) < 1e-9 * scale,
                "window {window}: diff {}",
                g.max_abs_diff(&explicit)
            );
            g.recycle();
        }
    }

    #[test]
    fn hankel_gram_is_symmetric() {
        let s: Vec<f64> = (0..50).map(|i| ((i * i) % 13) as f64).collect();
        let g = hankel_gram(&s, 10);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(g[(i, j)].to_bits(), g[(j, i)].to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hankel_gram_oversized_window_panics() {
        hankel_gram(&[1.0, 2.0], 3);
    }
}
