//! Hankel (trajectory) matrices for singular spectrum analysis.

use crate::matrix::Matrix;

/// Builds the SSA trajectory matrix of a series: an `L × K` Hankel matrix
/// whose column `k` is the window `series[k .. k+L]`, with `K = n - L + 1`.
///
/// Panics if `window == 0` or `window > series.len()` — SSA callers validate
/// the window against the history length before embedding.
pub fn hankel_matrix(series: &[f64], window: usize) -> Matrix {
    assert!(
        window > 0 && window <= series.len(),
        "SSA window {} out of range for series of length {}",
        window,
        series.len()
    );
    let l = window;
    let k = series.len() - window + 1;
    // Row i is the contiguous window series[i..i+k]; filling row-wise from
    // a pooled buffer keeps the embed allocation-free in batched fits
    // (recycle the matrix after use to close the loop).
    let mut data = crate::scratch::take(l * k);
    for i in 0..l {
        data.extend_from_slice(&series[i..i + k]);
    }
    Matrix::from_rows(l, k, data)
}

/// Inverse of the Hankel embedding: averages the anti-diagonals of an
/// `L × K` matrix back into a series of length `L + K - 1`.
///
/// For a matrix that is exactly Hankel this reproduces the original series;
/// for the low-rank approximations SSA produces it is the diagonal-averaging
/// (hankelization) step of the algorithm.
pub fn hankelize(m: &Matrix) -> Vec<f64> {
    let (l, k) = m.shape();
    if l == 0 || k == 0 {
        return Vec::new();
    }
    let n = l + k - 1;
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0u32; n];
    for i in 0..l {
        let row = m.row(i);
        for (j, &v) in row.iter().enumerate() {
            sums[i + j] += v;
            counts[i + j] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| s / c as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_shape_and_content() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        let h = hankel_matrix(&s, 3);
        assert_eq!(h.shape(), (3, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(h.row(1), &[2.0, 3.0, 4.0]);
        assert_eq!(h.row(2), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn hankelize_inverts_embedding() {
        let s: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        for window in [1, 2, 5, 10, 20] {
            let h = hankel_matrix(&s, window);
            let back = hankelize(&h);
            assert_eq!(back.len(), s.len());
            for (a, b) in back.iter().zip(&s) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hankelize_averages_antidiagonals() {
        // A non-Hankel matrix: check explicit averaging.
        let m = Matrix::from_rows(2, 2, vec![1.0, 3.0, 5.0, 7.0]);
        let s = hankelize(&m);
        assert_eq!(s, vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn empty_matrix_hankelizes_to_empty() {
        assert!(hankelize(&Matrix::zeros(0, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_window_panics() {
        hankel_matrix(&[1.0, 2.0], 3);
    }
}
