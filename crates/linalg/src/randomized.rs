//! Randomized truncated eigendecomposition for symmetric PSD matrices.
//!
//! SSA only ever keeps the leading `r ≪ L` eigentriples of the `L × L`
//! trajectory Gram matrix, yet the dense cyclic-Jacobi path pays for all
//! `L` of them. This module implements the classic randomized subspace
//! recipe (Halko–Martinsson–Tropp): sketch the range with a seeded Gaussian
//! test matrix, sharpen it with a few power iterations, project the problem
//! into the `q`-dimensional subspace, and solve the tiny `q × q`
//! eigenproblem with the existing Jacobi code. With oversampling `q =
//! r + p` the leading `r` eigenpairs come out accurate to working precision
//! for the rapidly-decaying spectra SSA produces.
//!
//! Everything is deterministic: the Gaussian sketch comes from a seeded
//! [`SubspaceRng`] (the same SplitMix64 stream as `seagull-telemetry`'s
//! `DetRng`), so a given `(matrix, rank, config)` always yields the same
//! decomposition, independent of threads or call ordering.

use crate::eigen::symmetric_eigen;
use crate::kernel;
use crate::matrix::{LinalgError, Matrix};

/// SplitMix64 stream — deliberately the same generator as
/// `seagull_telemetry::DetRng`, re-implemented here so the linalg substrate
/// stays dependency-free. Used only to draw the Gaussian sketch.
#[derive(Debug, Clone)]
pub struct SubspaceRng {
    state: u64,
}

impl SubspaceRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SubspaceRng {
        SubspaceRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal deviate via Box–Muller (one of the pair; the other
    /// is discarded to keep the stream position a simple function of the
    /// draw count).
    pub fn next_gaussian(&mut self) -> f64 {
        // Guard against ln(0): push u1 into (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Knobs for the randomized range finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubspaceConfig {
    /// Extra sketch columns beyond the requested rank. More oversampling
    /// buys accuracy on slowly-decaying spectra; 8 is ample for SSA.
    pub oversample: usize,
    /// Power iterations sharpening the sketch (each one multiplies the
    /// spectral gap's effect). Two suffice for working-precision leading
    /// eigenpairs on PSD Gram matrices.
    pub power_iters: usize,
    /// Seed for the Gaussian test matrix.
    pub seed: u64,
}

impl Default for SubspaceConfig {
    fn default() -> Self {
        SubspaceConfig {
            oversample: 8,
            power_iters: 2,
            seed: 0x5ea9_0111_7af1_75eb,
        }
    }
}

/// Truncated eigendecomposition of a symmetric PSD matrix: the leading
/// `rank` eigenpairs, eigenvalues descending.
///
/// Eigenvectors are returned as *rows* of `vectors_t` (each row contiguous)
/// because every consumer walks whole eigenvectors; transpose if column
/// orientation is needed.
#[derive(Debug, Clone)]
pub struct TruncatedEigh {
    /// Leading eigenvalues, descending, length `rank`.
    pub values: Vec<f64>,
    /// Eigenvectors, one per **row**, index-aligned with `values`
    /// (`rank × n`, pool-backed — recycle in hot loops).
    pub vectors_t: Matrix,
}

impl TruncatedEigh {
    /// Returns the backing stores to the scratch pool.
    pub fn recycle(self) {
        self.vectors_t.recycle();
    }
}

/// Computes the leading `rank` eigenpairs of symmetric PSD `g` by the
/// randomized subspace method; falls back to dense Jacobi (truncated
/// afterwards) when the sketch would not be meaningfully smaller than the
/// matrix.
///
/// Deterministic for fixed `(g, rank, cfg)`. Rank-deficient input is fine:
/// directions the range finder cannot resolve are deflated to zero vectors
/// with zero eigenvalues and sort to the tail.
pub fn truncated_eigh(
    g: &Matrix,
    rank: usize,
    cfg: &SubspaceConfig,
) -> Result<TruncatedEigh, LinalgError> {
    let n = g.rows();
    if g.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            lhs: g.shape(),
            rhs: g.shape(),
        });
    }
    let q = rank.min(n);
    if q == 0 {
        return Ok(TruncatedEigh {
            values: Vec::new(),
            vectors_t: Matrix::zeros(0, n),
        });
    }
    // A sketch nearly as wide as the matrix saves nothing — use Jacobi.
    if 2 * q >= n {
        let eig = symmetric_eigen(g, 100)?;
        let vectors_t = Matrix::from_fn(q, n, |c, i| eig.vectors[(i, c)]);
        return Ok(TruncatedEigh {
            values: eig.values[..q].to_vec(),
            vectors_t,
        });
    }

    let omega_t = gaussian_sketch(q, n, cfg.seed);
    let out = project_with_sketch(g, &omega_t, cfg.power_iters);
    omega_t.recycle();
    out
}

/// The transposed Gaussian test matrix `Ωᵀ` (`rows × cols`, pool-backed)
/// drawn from a seeded [`SubspaceRng`]. Batched fitting draws one sketch per
/// same-shape group and shares it across every [`truncated_eigh_with_sketch`]
/// call — the sketch depends only on shape and seed, never on the data.
pub fn gaussian_sketch(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SubspaceRng::new(seed);
    let mut m = Matrix::zeros_pooled(rows, cols);
    for v in m.data_mut() {
        *v = rng.next_gaussian();
    }
    m
}

/// Like [`truncated_eigh`] but with a caller-supplied sketch (`Ωᵀ`, shaped
/// `min(rank, n) × n`), so batches of same-shape problems can share one.
/// Bitwise identical to `truncated_eigh` with a sketch drawn from the same
/// seed.
pub fn truncated_eigh_with_sketch(
    g: &Matrix,
    rank: usize,
    omega_t: &Matrix,
    power_iters: usize,
) -> Result<TruncatedEigh, LinalgError> {
    let n = g.rows();
    if g.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            lhs: g.shape(),
            rhs: g.shape(),
        });
    }
    let q = rank.min(n);
    if q == 0 {
        return Ok(TruncatedEigh {
            values: Vec::new(),
            vectors_t: Matrix::zeros(0, n),
        });
    }
    if 2 * q >= n {
        // Dense fallback, same rule as truncated_eigh; the sketch is unused.
        let eig = symmetric_eigen(g, 100)?;
        let vectors_t = Matrix::from_fn(q, n, |c, i| eig.vectors[(i, c)]);
        return Ok(TruncatedEigh {
            values: eig.values[..q].to_vec(),
            vectors_t,
        });
    }
    if omega_t.shape() != (q, n) {
        return Err(LinalgError::ShapeMismatch {
            lhs: omega_t.shape(),
            rhs: (q, n),
        });
    }
    project_with_sketch(g, omega_t, power_iters)
}

/// Shared core: range-find with the given sketch, power-iterate, project,
/// solve the small problem, lift back.
fn project_with_sketch(
    g: &Matrix,
    omega_t: &Matrix,
    power_iters: usize,
) -> Result<TruncatedEigh, LinalgError> {
    let q = omega_t.rows();
    let n = g.rows();
    // Range finder: Yᵀ = Ωᵀ G. Working with transposed blocks keeps every
    // basis vector a contiguous row.
    let mut yt = omega_t.matmul_pooled(g)?;
    orthonormalize_rows(&mut yt);
    // Power iterations: Yᵀ ← orth(Yᵀ) G, sharpening the subspace towards
    // the leading invariant one. G is symmetric so row-times-G is exact.
    for _ in 0..power_iters {
        let next = yt.matmul_pooled(g)?;
        yt.recycle();
        yt = next;
        orthonormalize_rows(&mut yt);
    }

    // Project: B = Q G Qᵀ (q × q), solve densely, lift back.
    let qg = yt.matmul_pooled(g)?;
    let b = Matrix::from_fn(q, q, |i, j| kernel::dot(qg.row(i), yt.row(j)));
    qg.recycle();
    let small = symmetric_eigen(&b, 100)?;
    // vectors_t[c] = Σ_j W[j][c] · Q[j] — contiguous axpys.
    let mut vectors_t = Matrix::zeros_pooled(q, n);
    for c in 0..q {
        let row = vectors_t.row_mut(c);
        for j in 0..q {
            kernel::axpy(row, small.vectors[(j, c)], yt.row(j));
        }
    }
    yt.recycle();
    Ok(TruncatedEigh {
        values: small.values,
        vectors_t,
    })
}

/// Modified Gram–Schmidt over the rows of `m`, in place. Rows whose
/// residual norm collapses (rank deficiency in the sketch) are deflated to
/// zero rather than normalized into noise.
fn orthonormalize_rows(m: &mut Matrix) {
    let rows = m.rows();
    let scale = {
        let data = m.data();
        (kernel::norm_sq(data) / (rows.max(1) as f64)).sqrt()
    };
    let tol = 1e-12 * scale.max(1e-300);
    for i in 0..rows {
        for j in 0..i {
            let (ri, rj) = m.row_pair_mut(i, j);
            let r = kernel::dot(ri, rj);
            kernel::axmy(ri, r, rj);
        }
        let row = m.row_mut(i);
        let norm = kernel::norm_sq(row).sqrt();
        if norm <= tol {
            row.fill(0.0);
        } else {
            kernel::scale(row, 1.0 / norm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psd(n: usize, decay: f64) -> Matrix {
        // Σ λ_c u_c u_cᵀ with geometric eigenvalues and a fixed orthogonal
        // basis built from shifted cosines.
        let basis = {
            let raw = Matrix::from_fn(n, n, |i, j| {
                ((i * j) as f64 * 0.7 + i as f64 * 0.13).cos() + if i == j { 2.0 } else { 0.0 }
            });
            let mut m = raw;
            orthonormalize_rows(&mut m);
            m
        };
        let mut g = Matrix::zeros(n, n);
        for c in 0..n {
            let lambda = decay.powi(c as i32);
            for i in 0..n {
                let ui = basis[(c, i)];
                if ui == 0.0 {
                    continue;
                }
                kernel::axpy(g.row_mut(i), lambda * ui, basis.row(c));
            }
        }
        g
    }

    #[test]
    fn leading_eigenpairs_match_dense_jacobi() {
        let g = psd(40, 0.6);
        let dense = symmetric_eigen(&g, 100).unwrap();
        let trunc = truncated_eigh(&g, 14, &SubspaceConfig::default()).unwrap();
        assert_eq!(trunc.values.len(), 14);
        for c in 0..6 {
            let rel = (trunc.values[c] - dense.values[c]).abs() / dense.values[0];
            assert!(rel < 1e-9, "eigenvalue {c}: rel err {rel}");
            // Eigenvectors match up to sign.
            let dot: f64 = (0..40)
                .map(|i| trunc.vectors_t[(c, i)] * dense.vectors[(i, c)])
                .sum();
            assert!(
                dot.abs() > 1.0 - 1e-7,
                "eigenvector {c}: |dot| {}",
                dot.abs()
            );
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let g = psd(32, 0.7);
        let a = truncated_eigh(&g, 10, &SubspaceConfig::default()).unwrap();
        let b = truncated_eigh(&g, 10, &SubspaceConfig::default()).unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.vectors_t.data(), b.vectors_t.data());
    }

    #[test]
    fn rank_deficient_input_deflates() {
        // Rank-1 PSD matrix: one real eigenpair, the rest ~0.
        let n = 24;
        let g = Matrix::from_fn(n, n, |i, j| ((i + 1) * (j + 1)) as f64);
        let trunc = truncated_eigh(&g, 6, &SubspaceConfig::default()).unwrap();
        assert!(trunc.values[0] > 0.0);
        for c in 1..6 {
            assert!(
                trunc.values[c].abs() <= 1e-6 * trunc.values[0],
                "trailing eigenvalue {c} = {}",
                trunc.values[c]
            );
        }
        for v in trunc.vectors_t.data() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn small_matrix_falls_back_to_dense() {
        let g = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let trunc = truncated_eigh(&g, 2, &SubspaceConfig::default()).unwrap();
        assert!((trunc.values[0] - 3.0).abs() < 1e-10);
        assert!((trunc.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn orthonormal_output_rows() {
        let g = psd(36, 0.5);
        let trunc = truncated_eigh(&g, 12, &SubspaceConfig::default()).unwrap();
        for i in 0..12 {
            for j in 0..=i {
                let d = kernel::dot(trunc.vectors_t.row(i), trunc.vectors_t.row(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "({i},{j}) dot {d}");
            }
        }
    }

    #[test]
    fn non_square_rejected() {
        let g = Matrix::zeros(3, 4);
        assert!(truncated_eigh(&g, 2, &SubspaceConfig::default()).is_err());
    }

    #[test]
    fn shared_sketch_is_bitwise_identical() {
        let cfg = SubspaceConfig::default();
        let g1 = psd(36, 0.6);
        let g2 = psd(36, 0.8);
        let sketch = gaussian_sketch(12, 36, cfg.seed);
        for g in [&g1, &g2] {
            let solo = truncated_eigh(g, 12, &cfg).unwrap();
            let batched = truncated_eigh_with_sketch(g, 12, &sketch, cfg.power_iters).unwrap();
            assert_eq!(solo.values, batched.values);
            assert_eq!(solo.vectors_t.data(), batched.vectors_t.data());
        }
        sketch.recycle();
    }

    #[test]
    fn wrong_sketch_shape_rejected() {
        let g = psd(30, 0.5);
        let sketch = gaussian_sketch(5, 30, 1);
        assert!(truncated_eigh_with_sketch(&g, 10, &sketch, 2).is_err());
    }

    #[test]
    fn gaussian_stream_is_reasonable() {
        let mut rng = SubspaceRng::new(42);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let g = rng.next_gaussian();
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
