//! Per-worker scratch buffers for batched linear algebra.
//!
//! SSA fits embed every server's history into a fresh `L × K` trajectory
//! matrix, decompose it, and reconstruct a low-rank approximation — three
//! large allocations per fit that are dead microseconds later. When the
//! pipeline fits thousands of servers per worker thread, the allocator
//! becomes measurable. This module keeps a small thread-local pool of
//! `Vec<f64>` backing stores: [`take`] hands out a recycled buffer when one
//! is available, and [`recycle`] returns a buffer for the next fit on the
//! same worker.
//!
//! Thread-local by construction: no locks, no cross-thread traffic, and a
//! pool that dies with its worker. Recycling is strictly optional — a
//! buffer that is never returned is simply freed by `Vec`'s own drop.

use std::cell::RefCell;

/// Max buffers kept per thread; beyond this, recycled buffers are freed.
const MAX_POOLED: usize = 8;

/// Buffers above this capacity are never pooled (protects against one huge
/// fit permanently pinning memory on every worker).
const MAX_POOLED_CAPACITY: usize = 4 << 20; // 4M f64 = 32 MiB

#[derive(Default)]
struct Pool {
    buffers: Vec<Vec<f64>>,
    reuses: u64,
    fresh: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Counters for this thread's pool, for tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// `take` calls served from the pool.
    pub reuses: u64,
    /// `take` calls that had to allocate fresh.
    pub fresh: u64,
}

/// An empty `Vec<f64>` with at least `capacity` spare room, recycled from
/// this thread's pool when possible.
pub fn take(capacity: usize) -> Vec<f64> {
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        // Best fit: the smallest pooled buffer that already has room, so
        // big buffers stay available for big requests.
        let best = pool
            .buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= capacity)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                pool.reuses += 1;
                pool.buffers.swap_remove(i)
            }
            None => {
                pool.fresh += 1;
                Vec::with_capacity(capacity)
            }
        }
    })
}

/// Returns a buffer to this thread's pool. The contents are cleared; only
/// the capacity is kept.
pub fn recycle(mut buffer: Vec<f64>) {
    buffer.clear();
    if buffer.capacity() == 0 || buffer.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.buffers.len() < MAX_POOLED {
            pool.buffers.push(buffer);
        } else if let Some(smallest) = pool
            .buffers
            .iter_mut()
            .min_by_key(|b| b.capacity())
            .filter(|b| b.capacity() < buffer.capacity())
        {
            *smallest = buffer;
        }
    });
}

/// This thread's pool counters.
pub fn stats() -> ScratchStats {
    POOL.with(|pool| {
        let pool = pool.borrow();
        ScratchStats {
            reuses: pool.reuses,
            fresh: pool.fresh,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_roundtrip_reuses_capacity() {
        let before = stats();
        let mut a = take(1024);
        a.extend(std::iter::repeat(1.0).take(1024));
        let ptr = a.as_ptr();
        recycle(a);
        let b = take(512);
        assert_eq!(b.as_ptr(), ptr, "recycled allocation is handed back");
        assert!(b.is_empty(), "recycled buffer is cleared");
        assert!(b.capacity() >= 1024);
        let after = stats();
        assert_eq!(after.reuses, before.reuses + 1);
        assert_eq!(after.fresh, before.fresh + 1);
    }

    #[test]
    fn undersized_pool_entries_are_skipped() {
        recycle(Vec::with_capacity(8));
        let big = take(1 << 16);
        assert!(big.capacity() >= 1 << 16);
    }
}
