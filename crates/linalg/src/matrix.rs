//! Row-major dense matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Errors from linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        lhs: (usize, usize),
        rhs: (usize, usize),
    },
    /// A factorization found the matrix singular or not positive-definite.
    NotPositiveDefinite,
    /// The system is rank-deficient (no unique least-squares solution).
    RankDeficient,
    /// An iterative method failed to converge.
    NoConvergence { iterations: usize },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { lhs, rhs } => {
                write!(
                    f,
                    "shape mismatch: {}x{} vs {}x{}",
                    lhs.0, lhs.1, rhs.0, rhs.1
                )
            }
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::RankDeficient => write!(f, "matrix is rank deficient"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Like [`Matrix::zeros`], but backed by a recycled buffer from this
    /// thread's [`crate::scratch`] pool when one is available. Pair with
    /// [`Matrix::recycle`] in batched hot loops.
    pub fn zeros_pooled(rows: usize, cols: usize) -> Matrix {
        let n = rows * cols;
        let mut data = crate::scratch::take(n);
        data.resize(n, 0.0);
        Matrix { rows, cols, data }
    }

    /// Consumes the matrix and returns its backing store to this thread's
    /// [`crate::scratch`] pool.
    pub fn recycle(self) {
        crate::scratch::recycle(self.data);
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data. Panics if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Simultaneous mutable borrows of two distinct rows. Panics if `i == j`.
    #[inline]
    pub fn row_pair_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(i, j, "row_pair_mut requires distinct rows");
        let cols = self.cols;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let lo_row = &mut head[lo * cols..(lo + 1) * cols];
        let hi_row = &mut tail[..cols];
        if i < j {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// The transpose (pool-backed; recycle it in hot loops).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros_pooled(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        Ok(out)
    }

    /// Like [`Matrix::matmul`] but the output borrows from this thread's
    /// [`crate::scratch`] pool — pair with [`Matrix::recycle`] in hot loops.
    pub fn matmul_pooled(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros_pooled(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        Ok(out)
    }

    /// `out += self * rhs` with `out` pre-zeroed by the callers above.
    /// i-k-j loop order keeps the inner axpy contiguous in both operands.
    fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in arow.iter().enumerate() {
                crate::kernel::axpy(orow, a, rhs.row(k));
            }
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::kernel::dot(self.row(i), x))
            .collect())
    }

    /// Gram matrix `selfᵀ * self` (symmetric, cols × cols), computed without
    /// materializing the transpose: each input row rank-1-updates the upper
    /// triangle through contiguous axpys.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros_pooled(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let grow = &mut g.data[i * n + i..(i + 1) * n];
                crate::kernel::axpy(grow, row[i], &row[i..]);
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute elementwise difference to `other`; infinity if shapes
    /// differ. Useful in tests.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        if self.shape() != other.shape() {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_rows_length_checked() {
        Matrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_and_zeros() {
        let i = Matrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let z = Matrix::zeros(2, 2);
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        assert_eq!(m.matmul(&Matrix::identity(3)).unwrap(), m);
        assert_eq!(Matrix::identity(3).matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]);
        let y = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, -1.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f64 - 2.0);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn row_pair_mut_either_order() {
        let mut m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        {
            let (r2, r0) = m.row_pair_mut(2, 0);
            assert_eq!(r2, &[4.0, 5.0]);
            assert_eq!(r0, &[0.0, 1.0]);
            r2[0] = -1.0;
        }
        assert_eq!(m[(2, 0)], -1.0);
        let (r0, r1) = m.row_pair_mut(0, 1);
        assert_eq!(r0, &[0.0, 1.0]);
        assert_eq!(r1, &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn row_pair_mut_same_row_panics() {
        let mut m = Matrix::zeros(2, 2);
        let _ = m.row_pair_mut(1, 1);
    }

    #[test]
    fn matmul_pooled_matches_matmul() {
        let a = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let b = Matrix::from_fn(3, 5, |i, j| ((i * 5 + j) % 7) as f64);
        let plain = a.matmul(&b).unwrap();
        let pooled = a.matmul_pooled(&b).unwrap();
        assert_eq!(plain.data(), pooled.data());
        pooled.recycle();
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert_eq!(a.max_abs_diff(&b), f64::INFINITY);
    }
}
