//! # seagull-linalg
//!
//! Small dense linear-algebra substrate for the Seagull forecasting models.
//!
//! The paper's model zoo leans on numerical kernels that its Python stack got
//! for free (ML.NET's SSA decomposition, Prophet's penalized regression,
//! ARIMA's least-squares fits). This crate provides the from-scratch
//! equivalents: a row-major dense [`Matrix`], Cholesky and QR solvers, ridge
//! regression, a cyclic-Jacobi symmetric eigendecomposition, a thin SVD built
//! on it, and Hankel-matrix helpers for singular spectrum analysis.
//!
//! Matrices here are small (SSA windows are ≤ a few hundred columns), so the
//! implementations favor clarity and numerical robustness over blocking or
//! SIMD; all hot paths are still allocation-free inner loops over contiguous
//! rows.

pub mod eigen;
pub mod hankel;
pub mod matrix;
pub mod scratch;
pub mod solve;
pub mod svd;

pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use hankel::{hankel_matrix, hankelize};
pub use matrix::{LinalgError, Matrix};
pub use scratch::ScratchStats;
pub use solve::{cholesky_solve, least_squares, ridge_regression};
pub use svd::{thin_svd, ThinSvd};
