//! # seagull-linalg
//!
//! Small dense linear-algebra substrate for the Seagull forecasting models.
//!
//! The paper's model zoo leans on numerical kernels that its Python stack got
//! for free (ML.NET's SSA decomposition, Prophet's penalized regression,
//! ARIMA's least-squares fits). This crate provides the from-scratch
//! equivalents: a row-major dense [`Matrix`], Cholesky and QR solvers, ridge
//! regression, a cyclic-Jacobi symmetric eigendecomposition, a randomized
//! truncated eigensolver for when only the leading subspace is needed, a thin
//! SVD, and Hankel-matrix helpers for singular spectrum analysis.
//!
//! Matrices here are small (SSA windows are ≤ a few hundred columns), so
//! blocking is unnecessary — but the inner loops matter. Every hot path
//! bottoms out in the chunked FMA kernels of [`kernel`] (multi-accumulator
//! dot/axpy over contiguous rows, no per-element bounds checks) and borrows
//! its buffers from the thread-local [`scratch`] pool so steady-state fitting
//! is allocation-free.

pub mod eigen;
pub mod hankel;
pub mod kernel;
pub mod matrix;
pub mod randomized;
pub mod scratch;
pub mod solve;
pub mod svd;

pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use hankel::{hankel_gram, hankel_matrix, hankelize};
pub use matrix::{LinalgError, Matrix};
pub use randomized::{
    gaussian_sketch, truncated_eigh, truncated_eigh_with_sketch, SubspaceConfig, SubspaceRng,
    TruncatedEigh,
};
pub use scratch::ScratchStats;
pub use solve::{cholesky_solve, least_squares, ridge_regression};
pub use svd::{thin_svd, ThinSvd};
