//! Symmetric eigendecomposition by the cyclic Jacobi method.

use crate::matrix::{LinalgError, Matrix};

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix, with
/// eigenvalues sorted in descending order and eigenvectors as the *columns*
/// of `vectors`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, same order as `values`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi rotation method.
///
/// Jacobi is quadratic per sweep but converges in a handful of sweeps and is
/// unconditionally stable — exactly right for the ≤ few-hundred-column Gram
/// matrices that SSA produces. Symmetry of the input is assumed (only the
/// upper triangle is trusted); asymmetric input gives the decomposition of
/// its symmetric part.
pub fn symmetric_eigen(a: &Matrix, max_sweeps: usize) -> Result<SymmetricEigen, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    // Work on the symmetrized copy to be robust to tiny asymmetries from
    // accumulated floating-point error in Gram computations.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    // Accumulate rotations into Vᵀ so each rotation touches two contiguous
    // rows instead of two strided columns; transposed back in `finish`.
    let mut vt = Matrix::identity(n);
    if n <= 1 {
        return Ok(SymmetricEigen {
            values: (0..n).map(|i| m[(i, i)]).collect(),
            vectors: vt,
        });
    }

    let eps = 1e-12 * m.frobenius_norm().max(1e-300);
    for _sweep in 0..max_sweeps {
        // Sum of squares of the off-diagonal: the convergence measure.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= eps {
            return Ok(finish(m, vt));
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= eps / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable computation of the rotation (Golub & Van Loan).
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation to columns p and q of M — one pass over
                // the rows, two in-row accesses each.
                for chunk in m.data_mut().chunks_exact_mut(n) {
                    let mkp = chunk[p];
                    let mkq = chunk[q];
                    chunk[p] = c * mkp - s * mkq;
                    chunk[q] = s * mkp + c * mkq;
                }
                // And to rows p and q: two contiguous slices, zipped.
                let (rp, rq) = m.row_pair_mut(p, q);
                for (x, y) in rp.iter_mut().zip(rq.iter_mut()) {
                    let mpk = *x;
                    let mqk = *y;
                    *x = c * mpk - s * mqk;
                    *y = s * mpk + c * mqk;
                }
                // Accumulate the rotation into Vᵀ (rows p, q — contiguous).
                let (vp, vq) = vt.row_pair_mut(p, q);
                for (x, y) in vp.iter_mut().zip(vq.iter_mut()) {
                    let vkp = *x;
                    let vkq = *y;
                    *x = c * vkp - s * vkq;
                    *y = s * vkp + c * vkq;
                }
            }
        }
    }
    // One final convergence check after the last sweep.
    let mut off = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            off += m[(i, j)] * m[(i, j)];
        }
    }
    if off.sqrt() <= eps * 1e3 {
        Ok(finish(m, vt))
    } else {
        Err(LinalgError::NoConvergence {
            iterations: max_sweeps,
        })
    }
}

/// Sorts eigenpairs descending and transposes the accumulated Vᵀ back into
/// column-per-eigenvector orientation.
fn finish(m: Matrix, vt: Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        m[(b, b)]
            .partial_cmp(&m[(a, a)])
            .expect("finite eigenvalues")
    });
    let values = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| vt[(order[j], i)]);
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.values.len();
        let lambda = Matrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        e.vectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = symmetric_eigen(&a, 30).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a, 30).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        // A pseudo-random symmetric matrix.
        let n = 8;
        let raw = Matrix::from_fn(n, n, |i, j| (((i * 31 + j * 17) % 13) as f64) / 3.0 - 2.0);
        let a = Matrix::from_fn(n, n, |i, j| 0.5 * (raw[(i, j)] + raw[(j, i)]));
        let e = symmetric_eigen(&a, 60).unwrap();
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-8);
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(n)) < 1e-8);
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_preserved() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 2.0, 1.0, 5.0, 0.5, 2.0, 0.5, 6.0]);
        let e = symmetric_eigen(&a, 50).unwrap();
        let trace = 4.0 + 5.0 + 6.0;
        let sum: f64 = e.values.iter().sum();
        assert!((sum - trace).abs() < 1e-9);
    }

    #[test]
    fn one_by_one_and_empty() {
        let a = Matrix::from_rows(1, 1, vec![7.0]);
        let e = symmetric_eigen(&a, 10).unwrap();
        assert_eq!(e.values, vec![7.0]);
        let z = Matrix::zeros(0, 0);
        assert!(symmetric_eigen(&z, 10).unwrap().values.is_empty());
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(symmetric_eigen(&a, 10).is_err());
    }

    #[test]
    fn psd_gram_has_nonnegative_eigenvalues() {
        let b = Matrix::from_fn(6, 4, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let g = b.gram();
        let e = symmetric_eigen(&g, 60).unwrap();
        for v in &e.values {
            assert!(*v > -1e-9, "eigenvalue {v} should be nonnegative");
        }
    }
}
