//! Thin singular value decomposition via the Gram-matrix eigenproblem.

use crate::eigen::symmetric_eigen;
use crate::matrix::{LinalgError, Matrix};

/// A thin SVD `A ≈ U diag(σ) Vᵀ` with `k = min(rows, cols)` retained
/// components, singular values descending.
#[derive(Debug, Clone)]
pub struct ThinSvd {
    /// Left singular vectors, `rows × k`, one per column.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `cols × k`, one per column.
    pub v: Matrix,
}

impl ThinSvd {
    /// Number of singular values above `tol` relative to the largest.
    pub fn effective_rank(&self, tol: f64) -> usize {
        let s0 = self.sigma.first().copied().unwrap_or(0.0);
        if s0 <= 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|&&s| s > tol * s0).count()
    }

    /// Reconstructs `A` from the leading `k` components.
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let k = k.min(self.sigma.len());
        let rows = self.u.rows();
        let cols = self.v.rows();
        let mut out = Matrix::zeros(rows, cols);
        for c in 0..k {
            let s = self.sigma[c];
            let vc = self.v.col(c);
            for i in 0..rows {
                crate::kernel::axpy(out.row_mut(i), self.u[(i, c)] * s, &vc);
            }
        }
        out
    }
}

/// Relative floor under which a singular value is treated as zero when
/// recovering the paired singular vectors: the Gram squaring limits σ
/// accuracy to ~√ε·σ₀, so dividing by a σ below that floor amplifies
/// eigensolver noise into garbage directions — the corresponding columns
/// are left as zero vectors instead. Near-rank-deficient inputs (e.g. the
/// trajectory Gram of a constant-load server) hit this constantly; an
/// absolute threshold does not scale with the series magnitude and let
/// noise columns through.
pub const SIGMA_RELATIVE_FLOOR: f64 = 1e-8;

/// Computes a thin SVD by eigendecomposing whichever Gram matrix
/// (`AᵀA` or `AAᵀ`) is smaller, then recovering the other factor.
///
/// Accuracy for small singular values is limited to ~sqrt(machine epsilon)
/// because of the squaring — ample for SSA signal-subspace extraction, where
/// only the dominant components are kept.
pub fn thin_svd(a: &Matrix) -> Result<ThinSvd, LinalgError> {
    let (m, n) = a.shape();
    let k = m.min(n);
    if k == 0 {
        return Ok(ThinSvd {
            u: Matrix::zeros(m, 0),
            sigma: Vec::new(),
            v: Matrix::zeros(n, 0),
        });
    }
    if n <= m {
        // Eigen of AᵀA (n×n): V and sigma, then U = A V / sigma.
        let gram = a.gram();
        let eig = symmetric_eigen(&gram, 100)?;
        gram.recycle();
        let sigma: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let floor = sigma.first().copied().unwrap_or(0.0) * SIGMA_RELATIVE_FLOOR;
        let v = eig.vectors; // n×n, columns are right singular vectors.
        let mut u = Matrix::zeros(m, k);
        for c in 0..k {
            let s = sigma[c];
            if s <= floor || s <= 0.0 {
                continue; // Numerically zero: leave the column as zeros.
            }
            let vc = v.col(c);
            let av = a.matvec(&vc)?;
            for i in 0..m {
                u[(i, c)] = av[i] / s;
            }
        }
        let v_thin = Matrix::from_fn(n, k, |i, j| v[(i, j)]);
        v.recycle();
        Ok(ThinSvd {
            u,
            sigma: sigma[..k].to_vec(),
            v: v_thin,
        })
    } else {
        // Eigen of AAᵀ (m×m): U and sigma, then V = Aᵀ U / sigma.
        let at = a.transpose();
        let aat = at.gram(); // (Aᵀ)ᵀ(Aᵀ) = A Aᵀ, m×m.
        let eig = symmetric_eigen(&aat, 100)?;
        aat.recycle();
        let sigma: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let floor = sigma.first().copied().unwrap_or(0.0) * SIGMA_RELATIVE_FLOOR;
        let u = eig.vectors; // m×m.
        let mut v = Matrix::zeros(n, k);
        for c in 0..k {
            let s = sigma[c];
            if s <= floor || s <= 0.0 {
                continue; // Numerically zero: leave the column as zeros.
            }
            let uc = u.col(c);
            let atu = at.matvec(&uc)?;
            for i in 0..n {
                v[(i, c)] = atu[i] / s;
            }
        }
        at.recycle();
        let u_thin = Matrix::from_fn(m, k, |i, j| u[(i, j)]);
        u.recycle();
        Ok(ThinSvd {
            u: u_thin,
            sigma: sigma[..k].to_vec(),
            v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_singular_values() {
        let a = Matrix::from_rows(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        let svd = thin_svd(&a).unwrap();
        assert!((svd.sigma[0] - 4.0).abs() < 1e-9);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn full_reconstruction_tall() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.reconstruct(3).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn full_reconstruction_wide() {
        let a = Matrix::from_fn(3, 6, |i, j| ((i * 7 + j * 2) % 9) as f64 - 4.0);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.reconstruct(3).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn rank_one_matrix() {
        // Outer product u vᵀ has exactly one nonzero singular value.
        let a = Matrix::from_fn(4, 3, |i, j| (i + 1) as f64 * (j + 1) as f64);
        let svd = thin_svd(&a).unwrap();
        assert_eq!(svd.effective_rank(1e-8), 1);
        assert!(svd.reconstruct(1).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn truncated_reconstruction_is_best_approx() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i * 5 + j * 3) % 7) as f64);
        let svd = thin_svd(&a).unwrap();
        // Error of the rank-k truncation equals sqrt(sum of discarded σ²).
        let r2 = svd.reconstruct(2);
        let mut err = 0.0;
        for i in 0..5 {
            for j in 0..4 {
                let d = r2[(i, j)] - a[(i, j)];
                err += d * d;
            }
        }
        let expect: f64 = svd.sigma[2..].iter().map(|s| s * s).sum();
        assert!((err - expect).abs() < 1e-6, "err={err} expect={expect}");
    }

    #[test]
    fn singular_vectors_orthonormal() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 2 + j * 7) % 5) as f64 - 2.0);
        let svd = thin_svd(&a).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(4)) < 1e-6);
        assert!(vtv.max_abs_diff(&Matrix::identity(4)) < 1e-6);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 3);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.sigma.is_empty());
    }

    #[test]
    fn flat_server_trajectory_is_numerically_rank_one() {
        // A constant-load server embeds into a rank-1 Hankel matrix whose
        // Gram matrix is maximally rank-deficient. The recovered factors
        // must stay finite and the sub-floor columns exactly zero — with an
        // absolute σ threshold the tiny trailing σ's (~1e-13 relative)
        // passed the guard and produced noise-amplified vectors.
        let series = vec![57.25f64; 64];
        let a = crate::hankel::hankel_matrix(&series, 16);
        let svd = thin_svd(&a).unwrap();
        assert_eq!(svd.effective_rank(1e-8), 1);
        assert!(svd.sigma[0] > 0.0);
        for v in svd.u.data().iter().chain(svd.v.data()) {
            assert!(v.is_finite());
        }
        // The trajectory matrix is wide (16×49), so the *recovered* factor is
        // V = AᵀU/σ — its sub-floor columns are the ones that must be zeroed.
        for c in 1..svd.sigma.len() {
            if svd.sigma[c] <= svd.sigma[0] * SIGMA_RELATIVE_FLOOR {
                for i in 0..svd.v.rows() {
                    assert_eq!(svd.v[(i, c)], 0.0, "v column {c} not zeroed");
                }
            }
        }
        // Rank-1 reconstruction still reproduces the constant series.
        let r1 = svd.reconstruct(1);
        assert!(r1.max_abs_diff(&a) < 1e-6 * 57.25 * 64.0);
    }

    #[test]
    fn near_rank_deficient_gram_columns_zeroed_not_noisy() {
        // Constant plus a whisper of structure: trailing singular values sit
        // ~15 orders below σ₀. Their vector columns must be zero, not noise.
        let series: Vec<f64> = (0..80)
            .map(|i| 40.0 + 1e-9 * (i as f64 * 0.4).sin())
            .collect();
        let a = crate::hankel::hankel_matrix(&series, 20);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.effective_rank(1e-8) <= 3);
        let floor = svd.sigma[0] * SIGMA_RELATIVE_FLOOR;
        // Wide input → V is the recovered factor; each column is either a
        // unit vector or exactly zero, never noise.
        for c in 0..svd.sigma.len() {
            let norm: f64 = (0..svd.v.rows()).map(|i| svd.v[(i, c)].powi(2)).sum();
            if svd.sigma[c] <= floor {
                assert_eq!(norm, 0.0, "column {c} should be exactly zero");
            } else {
                assert!((norm - 1.0).abs() < 1e-6, "column {c} norm {norm}");
            }
        }
    }
}
