//! Thin singular value decomposition via the Gram-matrix eigenproblem.

use crate::eigen::symmetric_eigen;
use crate::matrix::{LinalgError, Matrix};

/// A thin SVD `A ≈ U diag(σ) Vᵀ` with `k = min(rows, cols)` retained
/// components, singular values descending.
#[derive(Debug, Clone)]
pub struct ThinSvd {
    /// Left singular vectors, `rows × k`, one per column.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `cols × k`, one per column.
    pub v: Matrix,
}

impl ThinSvd {
    /// Number of singular values above `tol` relative to the largest.
    pub fn effective_rank(&self, tol: f64) -> usize {
        let s0 = self.sigma.first().copied().unwrap_or(0.0);
        if s0 <= 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|&&s| s > tol * s0).count()
    }

    /// Reconstructs `A` from the leading `k` components.
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let k = k.min(self.sigma.len());
        let rows = self.u.rows();
        let cols = self.v.rows();
        let mut out = Matrix::zeros(rows, cols);
        for c in 0..k {
            let s = self.sigma[c];
            for i in 0..rows {
                let us = self.u[(i, c)] * s;
                if us == 0.0 {
                    continue;
                }
                for j in 0..cols {
                    out[(i, j)] += us * self.v[(j, c)];
                }
            }
        }
        out
    }
}

/// Computes a thin SVD by eigendecomposing whichever Gram matrix
/// (`AᵀA` or `AAᵀ`) is smaller, then recovering the other factor.
///
/// Accuracy for small singular values is limited to ~sqrt(machine epsilon)
/// because of the squaring — ample for SSA signal-subspace extraction, where
/// only the dominant components are kept.
pub fn thin_svd(a: &Matrix) -> Result<ThinSvd, LinalgError> {
    let (m, n) = a.shape();
    let k = m.min(n);
    if k == 0 {
        return Ok(ThinSvd {
            u: Matrix::zeros(m, 0),
            sigma: Vec::new(),
            v: Matrix::zeros(n, 0),
        });
    }
    if n <= m {
        // Eigen of AᵀA (n×n): V and sigma, then U = A V / sigma.
        let gram = a.gram();
        let eig = symmetric_eigen(&gram, 100)?;
        gram.recycle();
        let sigma: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.vectors; // n×n, columns are right singular vectors.
        let mut u = Matrix::zeros(m, k);
        for c in 0..k {
            let vc = v.col(c);
            let av = a.matvec(&vc)?;
            let s = sigma[c];
            if s > 1e-300 {
                for i in 0..m {
                    u[(i, c)] = av[i] / s;
                }
            }
        }
        let v_thin = Matrix::from_fn(n, k, |i, j| v[(i, j)]);
        v.recycle();
        Ok(ThinSvd {
            u,
            sigma: sigma[..k].to_vec(),
            v: v_thin,
        })
    } else {
        // Eigen of AAᵀ (m×m): U and sigma, then V = Aᵀ U / sigma.
        let at = a.transpose();
        let aat = at.gram(); // (Aᵀ)ᵀ(Aᵀ) = A Aᵀ, m×m.
        let eig = symmetric_eigen(&aat, 100)?;
        aat.recycle();
        let sigma: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let u = eig.vectors; // m×m.
        let mut v = Matrix::zeros(n, k);
        for c in 0..k {
            let uc = u.col(c);
            let atu = at.matvec(&uc)?;
            let s = sigma[c];
            if s > 1e-300 {
                for i in 0..n {
                    v[(i, c)] = atu[i] / s;
                }
            }
        }
        at.recycle();
        let u_thin = Matrix::from_fn(m, k, |i, j| u[(i, j)]);
        u.recycle();
        Ok(ThinSvd {
            u: u_thin,
            sigma: sigma[..k].to_vec(),
            v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_singular_values() {
        let a = Matrix::from_rows(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        let svd = thin_svd(&a).unwrap();
        assert!((svd.sigma[0] - 4.0).abs() < 1e-9);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn full_reconstruction_tall() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.reconstruct(3).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn full_reconstruction_wide() {
        let a = Matrix::from_fn(3, 6, |i, j| ((i * 7 + j * 2) % 9) as f64 - 4.0);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.reconstruct(3).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn rank_one_matrix() {
        // Outer product u vᵀ has exactly one nonzero singular value.
        let a = Matrix::from_fn(4, 3, |i, j| (i + 1) as f64 * (j + 1) as f64);
        let svd = thin_svd(&a).unwrap();
        assert_eq!(svd.effective_rank(1e-8), 1);
        assert!(svd.reconstruct(1).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn truncated_reconstruction_is_best_approx() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i * 5 + j * 3) % 7) as f64);
        let svd = thin_svd(&a).unwrap();
        // Error of the rank-k truncation equals sqrt(sum of discarded σ²).
        let r2 = svd.reconstruct(2);
        let mut err = 0.0;
        for i in 0..5 {
            for j in 0..4 {
                let d = r2[(i, j)] - a[(i, j)];
                err += d * d;
            }
        }
        let expect: f64 = svd.sigma[2..].iter().map(|s| s * s).sum();
        assert!((err - expect).abs() < 1e-6, "err={err} expect={expect}");
    }

    #[test]
    fn singular_vectors_orthonormal() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 2 + j * 7) % 5) as f64 - 2.0);
        let svd = thin_svd(&a).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(4)) < 1e-6);
        assert!(vtv.max_abs_diff(&Matrix::identity(4)) < 1e-6);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 3);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.sigma.is_empty());
    }
}
