//! Linear solvers: Cholesky, Householder QR least squares, ridge regression.

use crate::matrix::{LinalgError, Matrix};

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// factorization (`A = L Lᵀ`).
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    // Factorize into a lower triangle stored densely.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Solves the least-squares problem `min ||A x - b||₂` for a tall matrix
/// (`rows >= cols`) via Householder QR with implicit Q application.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if m < n {
        return Err(LinalgError::RankDeficient);
    }
    let mut r = a.clone();
    let mut rhs = b.to_vec();
    // Householder triangularization, applying each reflector to rhs as we go.
    for k in 0..n {
        // Compute the norm of the k-th column below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-14 {
            return Err(LinalgError::RankDeficient);
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        // v = x - alpha * e_k, normalized implicitly through vtv.
        let mut v = vec![0.0f64; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in k + 1..m {
            v[i - k] = r[(i, k)];
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv < 1e-300 {
            continue; // Column already triangular.
        }
        // Apply H = I - 2 v vᵀ / vᵀv to the remaining columns of R.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let scale = 2.0 * dot / vtv;
            for i in k..m {
                r[(i, j)] -= scale * v[i - k];
            }
        }
        // And to the right-hand side.
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * rhs[i];
        }
        let scale = 2.0 * dot / vtv;
        for i in k..m {
            rhs[i] -= scale * v[i - k];
        }
    }
    // Back substitution on the n×n upper triangle.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = rhs[i];
        for j in i + 1..n {
            sum -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-12 {
            return Err(LinalgError::RankDeficient);
        }
        x[i] = sum / d;
    }
    Ok(x)
}

/// Ridge regression: solves `min ||A x - b||² + lambda ||x||²` via the normal
/// equations `(AᵀA + λI) x = Aᵀ b`, which are positive definite for λ > 0.
///
/// This is the fitting backend for the Prophet-style additive model, where the
/// Fourier design matrix can be nearly collinear and the paper's original uses
/// a penalized fit.
pub fn ridge_regression(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut gram = a.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    // Aᵀ b without materializing the transpose.
    let n = a.cols();
    let mut atb = vec![0.0f64; n];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &v) in a.row(i).iter().enumerate() {
            atb[j] += v * bi;
        }
    }
    cholesky_solve(&gram, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = cholesky_solve(&a, &[10.0, 9.0]).unwrap();
        assert_close(&x, &[1.5, 2.0], 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            cholesky_solve(&a, &[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn cholesky_shape_checked() {
        let a = Matrix::zeros(2, 3);
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_err());
        let b = Matrix::identity(2);
        assert!(cholesky_solve(&b, &[1.0]).is_err());
    }

    #[test]
    fn least_squares_exact_square() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
        let x = least_squares(&a, &[2.0, 8.0]).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // Fit y = 1 + 2 t through noisy-free points: exact recovery.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let x = least_squares(&a, &b).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: the LS solution must satisfy the normal
        // equations Aᵀ(Ax - b) = 0.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 1.0, 2.0, 1.0, 3.0]);
        let b = [1.0, 2.0, 2.0];
        let x = least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let at_r = a.transpose().matvec(&resid).unwrap();
        for v in at_r {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_detects_rank_deficiency() {
        // Two identical columns.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert!(least_squares(&a, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn least_squares_underdetermined_rejected() {
        let a = Matrix::zeros(1, 2);
        assert!(least_squares(&a, &[1.0]).is_err());
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let x0 = ridge_regression(&a, &b, 1e-9).unwrap();
        assert_close(&x0, &[1.0, 2.0], 1e-5);
        let x_big = ridge_regression(&a, &b, 1e6).unwrap();
        assert!(x_big[1].abs() < 0.1);
    }

    #[test]
    fn ridge_handles_collinear_columns() {
        // Identical columns break plain LS but ridge stays solvable.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let x = ridge_regression(&a, &[2.0, 4.0, 6.0], 1e-6).unwrap();
        // Symmetric solution splits the weight.
        assert!((x[0] - x[1]).abs() < 1e-6);
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }
}
