//! Linear solvers: Cholesky, Householder QR least squares, ridge regression.
//!
//! All three route their inner loops through the chunked FMA kernels in
//! [`crate::kernel`] and borrow workspace from the thread-local
//! [`crate::scratch`] pool, so repeated fits are allocation-free.

use crate::kernel;
use crate::matrix::{LinalgError, Matrix};
use crate::scratch;

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// factorization (`A = L Lᵀ`).
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    // Factorize into a lower triangle stored densely (pooled workspace).
    // Row-prefix dot products replace the indexed k-loops.
    let mut l = scratch::take(n * n);
    l.resize(n * n, 0.0);
    for i in 0..n {
        let (head, tail) = l.split_at_mut(i * n);
        let li = &mut tail[..n];
        for j in 0..i {
            let lj = &head[j * n..j * n + j + 1];
            let sum = a[(i, j)] - kernel::dot(&li[..j], &lj[..j]);
            li[j] = sum / lj[j];
        }
        let diag = a[(i, i)] - kernel::norm_sq(&li[..i]);
        if diag <= 0.0 || !diag.is_finite() {
            scratch::recycle(l);
            return Err(LinalgError::NotPositiveDefinite);
        }
        li[i] = diag.sqrt();
    }
    // Forward substitution: L y = b.
    let mut y = scratch::take(n);
    for i in 0..n {
        let row = &l[i * n..i * n + i];
        let sum = b[i] - kernel::dot(row, &y);
        y.push(sum / l[i * n + i]);
    }
    // Back substitution: Lᵀ x = y (column access is strided; n is small
    // enough here that the walk is cache-resident anyway).
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    scratch::recycle(y);
    scratch::recycle(l);
    Ok(x)
}

/// Solves the least-squares problem `min ||A x - b||₂` for a tall matrix
/// (`rows >= cols`) via Householder QR with implicit Q application.
///
/// Internally works on `Aᵀ` so each Householder reflector touches
/// *contiguous* rows (the columns of `A`), letting the whole O(m·n²)
/// triangularization run through the chunked dot/axpy kernels.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if m < n {
        return Err(LinalgError::RankDeficient);
    }
    // at row j = column j of A, contiguous. R accumulates transposed in at:
    // R[i][j] = at[(j, i)] for j >= i.
    let mut at = a.transpose();
    let mut rhs = scratch::take(m);
    rhs.extend_from_slice(b);
    let mut v = scratch::take(m);
    let cleanup = |at: Matrix, rhs: Vec<f64>, v: Vec<f64>| {
        at.recycle();
        scratch::recycle(rhs);
        scratch::recycle(v);
    };
    // Householder triangularization, applying each reflector to rhs as we go.
    for k in 0..n {
        let norm = kernel::norm_sq(&at.row(k)[k..]).sqrt();
        if norm < 1e-14 {
            cleanup(at, rhs, v);
            return Err(LinalgError::RankDeficient);
        }
        let akk = at[(k, k)];
        let alpha = if akk >= 0.0 { -norm } else { norm };
        // v = x - alpha * e_k, normalized implicitly through vtv.
        v.clear();
        v.extend_from_slice(&at.row(k)[k..]);
        v[0] = akk - alpha;
        let vtv = kernel::norm_sq(&v);
        if vtv < 1e-300 {
            continue; // Column already triangular.
        }
        // Apply H = I - 2 v vᵀ / vᵀv to the remaining columns of A
        // (= remaining rows of at, each a contiguous slice).
        for j in k..n {
            let row = &mut at.row_mut(j)[k..];
            let d = kernel::dot(&v, row);
            kernel::axmy(row, 2.0 * d / vtv, &v);
        }
        // And to the right-hand side.
        let tail = &mut rhs[k..];
        let d = kernel::dot(&v, tail);
        kernel::axmy(tail, 2.0 * d / vtv, &v);
    }
    // Back substitution on the n×n upper triangle (strided reads of Rᵀ —
    // n is small, the triangle is cache-resident).
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = rhs[i];
        for j in i + 1..n {
            sum -= at[(j, i)] * x[j];
        }
        let d = at[(i, i)];
        if d.abs() < 1e-12 {
            cleanup(at, rhs, v);
            return Err(LinalgError::RankDeficient);
        }
        x[i] = sum / d;
    }
    cleanup(at, rhs, v);
    Ok(x)
}

/// Ridge regression: solves `min ||A x - b||² + lambda ||x||²` via the normal
/// equations `(AᵀA + λI) x = Aᵀ b`, which are positive definite for λ > 0.
///
/// This is the fitting backend for the Prophet-style additive model, where the
/// Fourier design matrix can be nearly collinear and the paper's original uses
/// a penalized fit.
pub fn ridge_regression(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut gram = a.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    // Aᵀ b without materializing the transpose: one contiguous axpy per row.
    let n = a.cols();
    let mut atb = scratch::take(n);
    atb.resize(n, 0.0);
    for (i, &bi) in b.iter().enumerate() {
        kernel::axpy(&mut atb, bi, a.row(i));
    }
    let x = cholesky_solve(&gram, &atb);
    gram.recycle();
    scratch::recycle(atb);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = cholesky_solve(&a, &[10.0, 9.0]).unwrap();
        assert_close(&x, &[1.5, 2.0], 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            cholesky_solve(&a, &[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn cholesky_shape_checked() {
        let a = Matrix::zeros(2, 3);
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_err());
        let b = Matrix::identity(2);
        assert!(cholesky_solve(&b, &[1.0]).is_err());
    }

    #[test]
    fn least_squares_exact_square() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
        let x = least_squares(&a, &[2.0, 8.0]).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // Fit y = 1 + 2 t through noisy-free points: exact recovery.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let x = least_squares(&a, &b).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: the LS solution must satisfy the normal
        // equations Aᵀ(Ax - b) = 0.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 1.0, 2.0, 1.0, 3.0]);
        let b = [1.0, 2.0, 2.0];
        let x = least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let at_r = a.transpose().matvec(&resid).unwrap();
        for v in at_r {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_detects_rank_deficiency() {
        // Two identical columns.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert!(least_squares(&a, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn least_squares_underdetermined_rejected() {
        let a = Matrix::zeros(1, 2);
        assert!(least_squares(&a, &[1.0]).is_err());
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let x0 = ridge_regression(&a, &b, 1e-9).unwrap();
        assert_close(&x0, &[1.0, 2.0], 1e-5);
        let x_big = ridge_regression(&a, &b, 1e6).unwrap();
        assert!(x_big[1].abs() < 0.1);
    }

    #[test]
    fn ridge_handles_collinear_columns() {
        // Identical columns break plain LS but ridge stays solvable.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let x = ridge_regression(&a, &[2.0, 4.0, 6.0], 1e-6).unwrap();
        // Symmetric solution splits the weight.
        assert!((x[0] - x[1]).abs() < 1e-6);
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }
}
