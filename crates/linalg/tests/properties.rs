//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use seagull_linalg::{
    cholesky_solve, hankel_matrix, hankelize, least_squares, ridge_regression, symmetric_eigen,
    thin_svd, Matrix,
};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, len..=len)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    small_vec(rows * cols).prop_map(move |data| Matrix::from_rows(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-9);
    }

    /// Gram matrices are symmetric positive semidefinite (checked via eigen).
    #[test]
    fn gram_is_psd(a in matrix(5, 3)) {
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
        let eig = symmetric_eigen(&g, 100).unwrap();
        for v in &eig.values {
            prop_assert!(*v > -1e-7, "eigenvalue {v}");
        }
    }

    /// Cholesky solutions actually solve the system.
    #[test]
    fn cholesky_solution_verifies(a in matrix(6, 4), b in small_vec(4)) {
        // A'A + I is SPD.
        let mut spd = a.gram();
        for i in 0..4 {
            spd[(i, i)] += 1.0;
        }
        let x = cholesky_solve(&spd, &b).unwrap();
        let ax = spd.matvec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
        }
    }

    /// Least squares satisfies the normal equations Aᵀ(Ax − b) = 0.
    #[test]
    fn least_squares_normal_equations(a in matrix(8, 3), b in small_vec(8)) {
        // Make the matrix well-conditioned by adding identity rows.
        let mut rows = a.data().to_vec();
        for i in 0..3 {
            let mut unit = vec![0.0; 3];
            unit[i] = 3.0;
            rows.extend_from_slice(&unit);
        }
        let a = Matrix::from_rows(11, 3, rows);
        let mut b = b;
        b.extend_from_slice(&[0.0, 0.0, 0.0]);
        let x = least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let atr = a.transpose().matvec(&resid).unwrap();
        for v in atr {
            prop_assert!(v.abs() < 1e-6, "normal equations violated: {v}");
        }
    }

    /// Ridge with a tiny lambda agrees with exact least squares on a
    /// well-conditioned system.
    #[test]
    fn ridge_approaches_least_squares(b in small_vec(6)) {
        let a = Matrix::from_fn(6, 2, |i, j| {
            if j == 0 { 1.0 } else { i as f64 }
        });
        let exact = least_squares(&a, &b).unwrap();
        let ridge = ridge_regression(&a, &b, 1e-10).unwrap();
        for (x, y) in exact.iter().zip(&ridge) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Eigendecomposition reconstructs the matrix and preserves the trace.
    #[test]
    fn eigen_reconstructs(a in matrix(4, 4)) {
        let sym = Matrix::from_fn(4, 4, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = symmetric_eigen(&sym, 100).unwrap();
        let lambda = Matrix::from_fn(4, 4, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rec = e
            .vectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        prop_assert!(rec.max_abs_diff(&sym) < 1e-7);
        let trace: f64 = (0..4).map(|i| sym[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    /// Thin SVD reconstructs the matrix at full rank and its singular values
    /// are nonnegative and sorted.
    #[test]
    fn svd_reconstructs(a in matrix(5, 3)) {
        let svd = thin_svd(&a).unwrap();
        prop_assert!(svd.reconstruct(3).max_abs_diff(&a) < 1e-6);
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        for s in &svd.sigma {
            prop_assert!(*s >= -1e-9);
        }
    }

    /// Hankel embedding followed by diagonal averaging is the identity.
    #[test]
    fn hankel_round_trip(series in small_vec(24), window in 1usize..24) {
        let h = hankel_matrix(&series, window);
        let back = hankelize(&h);
        prop_assert_eq!(back.len(), series.len());
        for (x, y) in back.iter().zip(&series) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }
}
