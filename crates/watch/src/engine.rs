//! The watch engine: sliding-window SLI series, burn-rate evaluation, and
//! alert lifecycle.
//!
//! The engine is fed SLI events (`good`/`bad` counts at a virtual tick)
//! through [`WatchEngine::record`] and its typed wrappers, and evaluated
//! with [`WatchEngine::evaluate`]. Evaluation computes burn rates over
//! every configured [`BurnRatePair`] window, raises one deduped incident
//! per `(SLO, pair, region)` through the shared [`IncidentManager`] on the
//! rising edge, resolves it on the falling edge, and maintains per-region
//! health gauges plus stable burn-rate/attainment series in the `Obs`
//! registry.
//!
//! ## Determinism
//!
//! State is keyed by `(SLO, region)`, so concurrent recorders touching
//! disjoint regions (the fleet pattern) cannot interleave observably;
//! counters are commutative. [`WatchEngine::evaluate`] mutates alert state
//! and raises incidents, so it must be called from a serial step — the
//! orchestrator barrier, a bench loop, a test — never from inside a
//! parallel region. Under that rule every gauge, counter, and incident row
//! is a pure function of the recorded events and byte-stable in
//! `Obs::stable_export()`.

use crate::slo::{default_pairs, BurnRatePair, SloKind, SloSpec};
use seagull_core::{IncidentManager, Severity};
use seagull_obs::Obs;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

/// One per-tick SLI reading: `(tick, good, bad)`.
type Reading = (u64, u64, u64);

/// Sliding event window for one `(SLO, region)` pair.
#[derive(Default)]
struct SloSeries {
    /// Per-tick aggregated readings, ticks ascending.
    ring: VecDeque<Reading>,
    /// Names of burn-rate pairs currently firing.
    active: BTreeSet<&'static str>,
}

impl SloSeries {
    /// Good/bad totals over the window `(tick - window, tick]`.
    fn window_counts(&self, tick: u64, window: u64) -> (u64, u64) {
        let from = tick.saturating_sub(window);
        let mut good = 0;
        let mut bad = 0;
        for &(t, g, b) in self.ring.iter().rev() {
            if t <= from {
                break;
            }
            if t <= tick {
                good += g;
                bad += b;
            }
        }
        (good, bad)
    }
}

/// One burn-rate alert edge produced by [`WatchEngine::evaluate`].
#[derive(Clone, Debug, PartialEq)]
pub struct AlertTransition {
    /// The SLO whose budget is burning (or recovered).
    pub slo: String,
    /// Region the alert applies to.
    pub region: String,
    /// Which [`BurnRatePair`] crossed its factor.
    pub pair: &'static str,
    /// Severity of the underlying incident.
    pub severity: Severity,
    /// `true` when the alert fired, `false` when it cleared.
    pub fired: bool,
}

/// Evaluates [`SloSpec`]s over sliding windows of the virtual clock.
pub struct WatchEngine {
    slos: Vec<SloSpec>,
    pairs: Vec<BurnRatePair>,
    incidents: IncidentManager,
    obs: Obs,
    /// Ticks of history to retain: the widest alert or attainment window.
    horizon: u64,
    state: Mutex<BTreeMap<(String, String), SloSeries>>,
}

impl WatchEngine {
    /// Creates an engine over the shared observability handle and incident
    /// log, with the [`default_pairs`] burn-rate rules.
    pub fn new(obs: Obs, incidents: IncidentManager) -> WatchEngine {
        WatchEngine {
            slos: Vec::new(),
            pairs: default_pairs(),
            incidents,
            obs,
            horizon: 1,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// Replaces the burn-rate pairs (e.g. to tighten windows in tests).
    pub fn with_pairs(mut self, pairs: Vec<BurnRatePair>) -> WatchEngine {
        self.pairs = pairs;
        self.recompute_horizon();
        self
    }

    /// Registers an objective.
    pub fn add_slo(&mut self, slo: SloSpec) {
        self.slos.push(slo);
        self.recompute_horizon();
    }

    fn recompute_horizon(&mut self) {
        let widest_pair = self.pairs.iter().map(|p| p.long).max().unwrap_or(1);
        let widest_slo = self.slos.iter().map(|s| s.window).max().unwrap_or(1);
        self.horizon = widest_pair.max(widest_slo);
    }

    /// The registered objectives.
    pub fn slos(&self) -> &[SloSpec] {
        &self.slos
    }

    /// The configured burn-rate pairs.
    pub fn pairs(&self) -> &[BurnRatePair] {
        &self.pairs
    }

    /// The incident log alerts fire through.
    pub fn incidents(&self) -> &IncidentManager {
        &self.incidents
    }

    /// The observability handle watch metrics land in.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    fn spec(&self, slo: &str) -> &SloSpec {
        self.slos
            .iter()
            .find(|s| s.name == slo)
            .unwrap_or_else(|| panic!("unknown SLO `{slo}`"))
    }

    /// Records `good`/`bad` events for `slo` in `region` at a virtual
    /// tick. Safe to call from concurrent recorders as long as each region
    /// is recorded by one thread at a time (the fleet's disjoint-region
    /// rule).
    pub fn record(&self, slo: &str, region: &str, tick: u64, good: u64, bad: u64) {
        // Panic on unknown SLOs up front (a typo would otherwise silently
        // accumulate events no evaluation ever reads).
        let _ = self.spec(slo);
        if good + bad == 0 {
            return;
        }
        let labels = [("region", region), ("slo", slo)];
        let registry = self.obs.registry();
        registry
            .counter("seagull_slo_good_events_total", &labels)
            .add(good);
        registry
            .counter("seagull_slo_bad_events_total", &labels)
            .add(bad);
        let mut state = self.state.lock().unwrap();
        let series = state
            .entry((slo.to_string(), region.to_string()))
            .or_default();
        match series.ring.back_mut() {
            Some((t, g, b)) if *t == tick => {
                *g += good;
                *b += bad;
            }
            Some((t, _, _)) if *t > tick => {
                // Late reading: fold into the closest earlier slot rather
                // than breaking ring monotonicity.
                if let Some((_, g, b)) = series.ring.iter_mut().rev().find(|(t, _, _)| *t <= tick) {
                    *g += good;
                    *b += bad;
                } else {
                    series.ring.push_front((tick, good, bad));
                }
            }
            _ => series.ring.push_back((tick, good, bad)),
        }
        let from = tick.saturating_sub(self.horizon);
        while series.ring.front().is_some_and(|&(t, _, _)| t <= from) {
            series.ring.pop_front();
        }
    }

    /// Records one request outcome for an [`SloKind::ErrorRate`] or
    /// [`SloKind::Availability`] objective.
    pub fn observe_outcome(&self, slo: &str, region: &str, tick: u64, ok: bool) {
        self.record(slo, region, tick, ok as u64, !ok as u64);
    }

    /// Records one latency observation against an
    /// [`SloKind::LatencyUnder`] objective's threshold.
    pub fn observe_latency(&self, slo: &str, region: &str, tick: u64, value: f64) {
        let SloKind::LatencyUnder { threshold } = self.spec(slo).kind else {
            panic!("SLO `{slo}` is not a latency objective");
        };
        self.record(
            slo,
            region,
            tick,
            (value <= threshold) as u64,
            (value > threshold) as u64,
        );
    }

    /// Records one staleness observation (e.g.
    /// `ServeService::staleness_days`) against an
    /// [`SloKind::StalenessUnder`] objective.
    pub fn observe_staleness(&self, slo: &str, region: &str, tick: u64, staleness_days: i64) {
        let SloKind::StalenessUnder { max_days } = self.spec(slo).kind else {
            panic!("SLO `{slo}` is not a staleness objective");
        };
        let ok = staleness_days <= max_days;
        self.record(slo, region, tick, ok as u64, !ok as u64);
    }

    /// Burn rate of `slo` in `region` over the trailing `window` ticks: the
    /// bad-event fraction divided by the error budget (0.0 with no events).
    pub fn burn_rate(&self, slo: &str, region: &str, tick: u64, window: u64) -> f64 {
        let spec = self.spec(slo);
        let state = self.state.lock().unwrap();
        let Some(series) = state.get(&(slo.to_string(), region.to_string())) else {
            return 0.0;
        };
        burn(series, tick, window, spec.budget())
    }

    /// Attainment of `slo` in `region` over its own window, percent (100.0
    /// with no events).
    pub fn attainment_pct(&self, slo: &str, region: &str, tick: u64) -> f64 {
        let spec = self.spec(slo);
        let state = self.state.lock().unwrap();
        let Some(series) = state.get(&(slo.to_string(), region.to_string())) else {
            return 100.0;
        };
        attainment(series, tick, spec.window)
    }

    /// Distinct regions with recorded events, sorted.
    pub fn regions(&self) -> Vec<String> {
        let state = self.state.lock().unwrap();
        let mut out: Vec<String> = state.keys().map(|(_, region)| region.clone()).collect();
        out.dedup();
        out.sort();
        out.dedup();
        out
    }

    /// Currently firing alerts as `(slo, region, pair, severity)`, sorted.
    pub fn open_alerts(&self) -> Vec<(String, String, &'static str, Severity)> {
        let state = self.state.lock().unwrap();
        let mut out = Vec::new();
        for ((slo, region), series) in state.iter() {
            for pair_name in &series.active {
                let severity = self
                    .pairs
                    .iter()
                    .find(|p| p.name == *pair_name)
                    .map(|p| p.severity)
                    .unwrap_or(Severity::Warning);
                out.push((slo.clone(), region.clone(), *pair_name, severity));
            }
        }
        out
    }

    /// Evaluates every `(SLO, region)` series at `tick`: updates burn-rate
    /// and attainment gauges, fires/clears burn-rate alerts through the
    /// incident log, and flips per-region health gauges. Returns the alert
    /// edges this evaluation produced, in sorted `(SLO, region)` order.
    ///
    /// Call from a serial step (an orchestrator barrier, a bench loop) —
    /// never from inside a parallel region.
    pub fn evaluate(&self, tick: u64) -> Vec<AlertTransition> {
        let registry = self.obs.registry();
        let mut transitions = Vec::new();
        let mut region_alerting: BTreeMap<String, bool> = BTreeMap::new();
        let mut state = self.state.lock().unwrap();
        for ((slo_name, region), series) in state.iter_mut() {
            let spec = self
                .slos
                .iter()
                .find(|s| &s.name == slo_name)
                .expect("recorded SLO is registered");
            for pair in &self.pairs {
                let burn_long = burn(series, tick, pair.long, spec.budget());
                let burn_short = burn(series, tick, pair.short, spec.budget());
                registry
                    .gauge(
                        "seagull_slo_burn_rate",
                        &[
                            ("pair", pair.name),
                            ("region", region),
                            ("slo", slo_name),
                            ("window", "long"),
                        ],
                    )
                    .set(burn_long);
                registry
                    .gauge(
                        "seagull_slo_burn_rate",
                        &[
                            ("pair", pair.name),
                            ("region", region),
                            ("slo", slo_name),
                            ("window", "short"),
                        ],
                    )
                    .set(burn_short);
                let firing = burn_long >= pair.factor && burn_short >= pair.factor;
                let was_firing = series.active.contains(pair.name);
                let source = format!("slo:{slo_name}:{}", pair.name);
                if firing && !was_firing {
                    series.active.insert(pair.name);
                    self.incidents.raise_keyed(
                        pair.severity,
                        &source,
                        region,
                        "burn-rate",
                        format!(
                            "SLO {slo_name} burn rate {burn_long:.2}x/{burn_short:.2}x \
                             over budget (pair {}, factor {})",
                            pair.name, pair.factor
                        ),
                    );
                    registry
                        .counter(
                            "seagull_slo_alerts_fired_total",
                            &[("pair", pair.name), ("region", region), ("slo", slo_name)],
                        )
                        .inc();
                    transitions.push(AlertTransition {
                        slo: slo_name.clone(),
                        region: region.clone(),
                        pair: pair.name,
                        severity: pair.severity,
                        fired: true,
                    });
                } else if !firing && was_firing {
                    series.active.remove(pair.name);
                    self.incidents.resolve_matching(&source, region);
                    registry
                        .counter(
                            "seagull_slo_alerts_cleared_total",
                            &[("pair", pair.name), ("region", region), ("slo", slo_name)],
                        )
                        .inc();
                    transitions.push(AlertTransition {
                        slo: slo_name.clone(),
                        region: region.clone(),
                        pair: pair.name,
                        severity: pair.severity,
                        fired: false,
                    });
                }
            }
            registry
                .gauge(
                    "seagull_slo_attainment_pct",
                    &[("region", region), ("slo", slo_name)],
                )
                .set(attainment(series, tick, spec.window));
            let entry = region_alerting.entry(region.clone()).or_default();
            *entry |= !series.active.is_empty();
        }
        for (region, alerting) in region_alerting {
            registry
                .gauge("seagull_watch_region_healthy", &[("region", &region)])
                .set(if alerting { 0.0 } else { 1.0 });
        }
        transitions
    }
}

/// Burn rate over `(tick - window, tick]` given an error budget.
fn burn(series: &SloSeries, tick: u64, window: u64, budget: f64) -> f64 {
    let (good, bad) = series.window_counts(tick, window);
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    (bad as f64 / total as f64) / budget
}

/// Good-event percentage over `(tick - window, tick]` (100.0 with no
/// events).
fn attainment(series: &SloSeries, tick: u64, window: u64) -> f64 {
    let (good, bad) = series.window_counts(tick, window);
    let total = good + bad;
    if total == 0 {
        return 100.0;
    }
    100.0 * good as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::TICKS_PER_HOUR;

    fn engine() -> WatchEngine {
        let mut e = WatchEngine::new(Obs::new(), IncidentManager::new());
        e.add_slo(SloSpec::error_rate("serve-errors", 0.99));
        e
    }

    #[test]
    fn no_events_means_no_alerts_and_full_attainment() {
        let e = engine();
        assert!(e.evaluate(100).is_empty());
        assert_eq!(e.attainment_pct("serve-errors", "west", 100), 100.0);
        assert_eq!(e.burn_rate("serve-errors", "west", 100, 60), 0.0);
    }

    #[test]
    fn sustained_errors_fire_fast_pair_then_clear_on_recovery() {
        // Only the fast pair, so the slow pair's wide windows don't keep
        // the incident log non-empty after recovery.
        let mut e =
            WatchEngine::new(Obs::new(), IncidentManager::new()).with_pairs(vec![BurnRatePair {
                name: "fast",
                long: TICKS_PER_HOUR,
                short: 5,
                factor: 14.4,
                severity: Severity::Critical,
            }]);
        e.add_slo(SloSpec::error_rate("serve-errors", 0.99));
        // One hour of 50% errors: burn = 0.5 / 0.01 = 50x >= 14.4x.
        for t in 1..=TICKS_PER_HOUR {
            e.record("serve-errors", "west", t, 10, 10);
        }
        let fired = e.evaluate(TICKS_PER_HOUR);
        assert!(
            fired.iter().any(|a| a.pair == "fast" && a.fired),
            "fast pair should fire: {fired:?}"
        );
        assert_eq!(e.incidents().open_total(), 1);
        let open = e.incidents().open();
        assert_eq!(open[0].source, "slo:serve-errors:fast");
        assert_eq!(open[0].severity, Severity::Critical);
        // Re-evaluating while still firing must not duplicate the incident.
        e.evaluate(TICKS_PER_HOUR);
        assert_eq!(e.incidents().open_total(), 1);
        assert_eq!(e.incidents().all().len(), 1);

        // Recovery: clean traffic long enough to drain the short window.
        for t in TICKS_PER_HOUR + 1..=2 * TICKS_PER_HOUR {
            e.record("serve-errors", "west", t, 20, 0);
        }
        let cleared = e.evaluate(2 * TICKS_PER_HOUR);
        assert!(cleared.iter().any(|a| a.pair == "fast" && !a.fired));
        assert_eq!(e.incidents().open_total(), 0);
        assert_eq!(
            e.obs()
                .registry()
                .gauge("seagull_watch_region_healthy", &[("region", "west")])
                .get(),
            1.0
        );
    }

    #[test]
    fn alerts_are_scoped_per_region() {
        let e = engine();
        for t in 1..=TICKS_PER_HOUR {
            e.record("serve-errors", "west", t, 0, 10);
            e.record("serve-errors", "east", t, 10, 0);
        }
        e.evaluate(TICKS_PER_HOUR);
        let healthy = |r: &str| {
            e.obs()
                .registry()
                .gauge("seagull_watch_region_healthy", &[("region", r)])
                .get()
        };
        assert_eq!(healthy("west"), 0.0);
        assert_eq!(healthy("east"), 1.0);
        assert!(e.open_alerts().iter().all(|(_, r, _, _)| r == "west"));
    }

    #[test]
    fn short_window_gates_stale_burns() {
        let e = engine();
        // Errors only in the first 5 minutes of the hour: the long window
        // still burns, but the short window has recovered — no alert.
        for t in 1..=5 {
            e.record("serve-errors", "west", t, 0, 100);
        }
        for t in 6..=TICKS_PER_HOUR {
            e.record("serve-errors", "west", t, 100, 0);
        }
        let fired = e.evaluate(TICKS_PER_HOUR);
        assert!(
            !fired.iter().any(|a| a.pair == "fast" && a.fired),
            "short window must gate: {fired:?}"
        );
    }

    #[test]
    fn staleness_and_latency_observers_classify_events() {
        let mut e = WatchEngine::new(Obs::new(), IncidentManager::new());
        e.add_slo(SloSpec::staleness_under("staleness", 14, 0.9));
        e.add_slo(SloSpec::latency_under("latency", 0.010, 0.95));
        e.observe_staleness("staleness", "west", 1, 7);
        e.observe_staleness("staleness", "west", 2, 21);
        e.observe_latency("latency", "west", 1, 0.005);
        e.observe_latency("latency", "west", 2, 0.500);
        assert_eq!(e.attainment_pct("staleness", "west", 2), 50.0);
        assert_eq!(e.attainment_pct("latency", "west", 2), 50.0);
    }

    #[test]
    fn evaluation_is_a_pure_function_of_recorded_events() {
        let run = || {
            let e = engine();
            for t in 1..=90 {
                e.record("serve-errors", "a", t, 9, 1);
                e.record("serve-errors", "b", t, 10, 0);
            }
            e.evaluate(90);
            e.obs().stable_export()
        };
        assert_eq!(run(), run());
    }
}
