//! Declarative service-level objectives and burn-rate alert windows.
//!
//! An SLO here is the standard good-events-over-total-events formulation:
//! every SLI reading the [`crate::WatchEngine`] records is a batch of
//! *good* and *bad* events at one virtual tick, and the objective is the
//! minimum good fraction over a window. Latency objectives count an event
//! good when it is at or under the threshold; staleness objectives emit
//! one event per observation, good while the deployed snapshot is fresh
//! enough; availability objectives count probe outcomes.
//!
//! ## The virtual clock
//!
//! Watch ticks are **virtual minutes**. The pipeline's day-granular
//! scheduler maps onto it via [`TICKS_PER_DAY`]; serving-side harnesses
//! that replay query traffic advance it a tick at a time. Burn-rate
//! windows are expressed in the same unit, so the canonical Google-SRE
//! pairs (5m/1h fast, 6h/3d slow) translate directly.

use seagull_core::Severity;

/// Virtual ticks per minute — the base unit of the watch clock.
pub const TICKS_PER_MINUTE: u64 = 1;
/// Virtual ticks per hour.
pub const TICKS_PER_HOUR: u64 = 60 * TICKS_PER_MINUTE;
/// Virtual ticks per day.
pub const TICKS_PER_DAY: u64 = 24 * TICKS_PER_HOUR;

/// What kind of service-level indicator an [`SloSpec`] evaluates.
#[derive(Clone, Debug, PartialEq)]
pub enum SloKind {
    /// Request outcomes: bad events are errors (rejections, failures).
    ErrorRate,
    /// Request latencies: an event is good when the observed value is at
    /// or under `threshold` (same unit the caller observes in).
    LatencyUnder {
        /// Latency threshold; observations above it are bad events.
        threshold: f64,
    },
    /// Snapshot staleness: one event per observation, good while the
    /// serving snapshot is at most `max_days` old.
    StalenessUnder {
        /// Maximum tolerated [`staleness`] in days before observations
        /// count as bad.
        ///
        /// [`staleness`]: https://sre.google/workbook/implementing-slos/
        max_days: i64,
    },
    /// Probe outcomes: bad events are unavailable probes.
    Availability,
}

/// One declarative service-level objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Objective name, e.g. `serve-errors` — part of incident sources and
    /// metric labels.
    pub name: String,
    /// The indicator this objective evaluates.
    pub kind: SloKind,
    /// Minimum good-event fraction, e.g. `0.999`.
    pub objective: f64,
    /// Attainment window in virtual ticks (reporting window; burn-rate
    /// alerts use the pair windows instead).
    pub window: u64,
}

impl SloSpec {
    /// An error-rate objective with a 3-day attainment window.
    pub fn error_rate(name: &str, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::ErrorRate,
            objective,
            window: 3 * TICKS_PER_DAY,
        }
    }

    /// A latency objective: fraction of events at or under `threshold`
    /// must stay at least `objective` over a 3-day window.
    pub fn latency_under(name: &str, threshold: f64, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::LatencyUnder { threshold },
            objective,
            window: 3 * TICKS_PER_DAY,
        }
    }

    /// A staleness objective: the serving snapshot must be at most
    /// `max_days` old for at least `objective` of observations over a
    /// 3-day window.
    pub fn staleness_under(name: &str, max_days: i64, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::StalenessUnder { max_days },
            objective,
            window: 3 * TICKS_PER_DAY,
        }
    }

    /// An availability objective over backup-runner (or other) probes.
    pub fn availability(name: &str, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::Availability,
            objective,
            window: 3 * TICKS_PER_DAY,
        }
    }

    /// Overrides the attainment window (ticks).
    pub fn with_window(mut self, window: u64) -> SloSpec {
        self.window = window.max(1);
        self
    }

    /// The error budget: the bad-event fraction the objective tolerates,
    /// floored away from zero so burn rates stay finite.
    pub fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// One multi-window burn-rate alert rule (Google-SRE style).
///
/// The *burn rate* over a window is the bad-event fraction divided by the
/// error budget: a burn rate of 1.0 spends exactly the budget if sustained
/// for the whole SLO window. A pair fires when **both** its long and short
/// windows burn at or above `factor` — the long window proves the burn is
/// sustained, the short window proves it is still happening (so alerts
/// clear quickly after recovery).
#[derive(Clone, Debug, PartialEq)]
pub struct BurnRatePair {
    /// Pair name (`fast` / `slow`) — part of incident sources and labels.
    pub name: &'static str,
    /// Long window, ticks.
    pub long: u64,
    /// Short (confirmation) window, ticks.
    pub short: u64,
    /// Minimum burn rate over both windows for the alert to fire.
    pub factor: f64,
    /// Severity of the incident the pair raises.
    pub severity: Severity,
}

/// The canonical pairs: a paging **fast** pair (5m/1h at 14.4× burn,
/// critical) and a ticketing **slow** pair (6h/3d at 1× burn, warning).
pub fn default_pairs() -> Vec<BurnRatePair> {
    vec![
        BurnRatePair {
            name: "fast",
            long: TICKS_PER_HOUR,
            short: 5 * TICKS_PER_MINUTE,
            factor: 14.4,
            severity: Severity::Critical,
        },
        BurnRatePair {
            name: "slow",
            long: 3 * TICKS_PER_DAY,
            short: 6 * TICKS_PER_HOUR,
            factor: 1.0,
            severity: Severity::Warning,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_floored_positive() {
        let slo = SloSpec::error_rate("e", 1.0);
        assert!(slo.budget() > 0.0);
        let slo = SloSpec::error_rate("e", 0.99);
        assert!((slo.budget() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn default_pairs_are_fast_then_slow() {
        let pairs = default_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].name, "fast");
        assert!(pairs[0].short < pairs[0].long);
        assert_eq!(pairs[1].name, "slow");
        assert!(pairs[1].short < pairs[1].long);
        assert!(pairs[0].factor > pairs[1].factor);
        assert_eq!(pairs[0].severity, Severity::Critical);
        assert_eq!(pairs[1].severity, Severity::Warning);
    }
}
