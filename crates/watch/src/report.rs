//! The watch report: one deterministic JSON artifact summarizing fleet
//! health.
//!
//! [`WatchReport::collect`] snapshots a [`WatchEngine`] (SLO attainment and
//! burn rates per region, open alerts, open incidents) and optionally an
//! [`AccuracyMonitor`] (per-region deployment-accuracy trends) into plain
//! serializable rows. [`WatchReport::to_json`] renders them with
//! `serde_json` in `BTreeMap`-sorted order, so the artifact is
//! byte-identical across same-seed runs — the `watch_dump` bench pairs it
//! with `Obs::stable_export()` as the machine-readable half of the dump.

use crate::accuracy::AccuracyMonitor;
use crate::engine::WatchEngine;
use serde::Serialize;

/// Attainment and burn state of one `(SLO, region)` pair.
#[derive(Clone, Debug, Serialize)]
pub struct SloRow {
    /// Objective name.
    pub slo: String,
    /// Region the row covers.
    pub region: String,
    /// Minimum good-event fraction the objective demands.
    pub objective: f64,
    /// Good-event percentage over the SLO's own window.
    pub attainment_pct: f64,
    /// Burn rate over each configured pair's long window, `(pair, burn)`.
    pub burn_rates: Vec<(String, f64)>,
}

/// One currently firing burn-rate alert.
#[derive(Clone, Debug, Serialize)]
pub struct AlertRow {
    /// Objective whose budget is burning.
    pub slo: String,
    /// Region the alert applies to.
    pub region: String,
    /// Burn-rate pair that crossed its factor.
    pub pair: String,
    /// Incident severity (`Warning` / `Critical`).
    pub severity: String,
}

/// One open incident from the shared incident log.
#[derive(Clone, Debug, Serialize)]
pub struct IncidentRow {
    /// Incident severity.
    pub severity: String,
    /// Component that raised it (e.g. `slo:serve-errors:fast`).
    pub source: String,
    /// Region the incident belongs to.
    pub region: String,
    /// Latest human-readable message.
    pub message: String,
    /// How many times it was raised while open.
    pub count: u32,
}

/// Rolling deployment-accuracy state of one region.
#[derive(Clone, Debug, Serialize)]
pub struct AccuracyRow {
    /// Region the row covers.
    pub region: String,
    /// Latest scored week's deployment accuracy, percent.
    pub latest_pct: f64,
    /// Latest week minus the mean of the preceding window, percent.
    pub drift_pct: f64,
    /// Whether the region is currently below the accuracy bound.
    pub regressed: bool,
    /// `(week_start_day, accuracy_pct)` rows, oldest first.
    pub trend: Vec<(i64, f64)>,
}

/// Point-in-time fleet-health summary, serializable to deterministic JSON.
#[derive(Clone, Debug, Serialize)]
pub struct WatchReport {
    /// Virtual tick the report was collected at.
    pub tick: u64,
    /// Attainment/burn rows for every recorded `(SLO, region)` pair.
    pub slos: Vec<SloRow>,
    /// Currently firing burn-rate alerts.
    pub alerts: Vec<AlertRow>,
    /// Open incidents in the engine's incident log (all sources, not just
    /// SLO alerts — model regressions and pipeline incidents included).
    pub incidents: Vec<IncidentRow>,
    /// Per-region deployment-accuracy rows (empty without a monitor).
    pub accuracy: Vec<AccuracyRow>,
}

impl WatchReport {
    /// Snapshots `engine` (and `monitor`, when given) at `tick`.
    pub fn collect(
        engine: &WatchEngine,
        monitor: Option<&AccuracyMonitor>,
        tick: u64,
    ) -> WatchReport {
        let regions = engine.regions();
        let mut slos = Vec::new();
        for spec in engine.slos() {
            for region in &regions {
                let burn_rates = engine
                    .pairs()
                    .iter()
                    .map(|p| {
                        (
                            p.name.to_string(),
                            engine.burn_rate(&spec.name, region, tick, p.long),
                        )
                    })
                    .collect();
                slos.push(SloRow {
                    slo: spec.name.clone(),
                    region: region.clone(),
                    objective: spec.objective,
                    attainment_pct: engine.attainment_pct(&spec.name, region, tick),
                    burn_rates,
                });
            }
        }
        let alerts = engine
            .open_alerts()
            .into_iter()
            .map(|(slo, region, pair, severity)| AlertRow {
                slo,
                region,
                pair: pair.to_string(),
                severity: format!("{severity:?}"),
            })
            .collect();
        let incidents = engine
            .incidents()
            .open()
            .into_iter()
            .map(|i| IncidentRow {
                severity: format!("{:?}", i.severity),
                source: i.source,
                region: i.region,
                message: i.message,
                count: i.count,
            })
            .collect();
        let accuracy = monitor
            .map(|m| {
                let regressed = m.regressed_regions();
                m.regions()
                    .into_iter()
                    .map(|region| AccuracyRow {
                        latest_pct: m.latest_accuracy_pct(&region).unwrap_or(100.0),
                        drift_pct: m.drift_pct(&region),
                        regressed: regressed.contains(&region),
                        trend: m.trend(&region),
                        region,
                    })
                    .collect()
            })
            .unwrap_or_default();
        WatchReport {
            tick,
            slos,
            alerts,
            incidents,
            accuracy,
        }
    }

    /// Renders the report as pretty-printed JSON. Field order is fixed by
    /// the struct definitions and rows are pre-sorted, so the output is
    /// deterministic for deterministic inputs.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloSpec;
    use seagull_core::pipeline::AccuracySink;
    use seagull_core::IncidentManager;
    use seagull_obs::Obs;

    #[test]
    fn report_is_deterministic_and_carries_all_sections() {
        let build = || {
            let mut engine = WatchEngine::new(Obs::new(), IncidentManager::new());
            engine.add_slo(SloSpec::error_rate("serve-errors", 0.99));
            for t in 1..=60 {
                engine.record("serve-errors", "west", t, 0, 10);
                engine.record("serve-errors", "east", t, 10, 0);
            }
            engine.evaluate(60);
            let monitor = AccuracyMonitor::default();
            monitor.on_scores(
                "west",
                7,
                &[seagull_core::pipeline::ScoredPrediction {
                    server_id: 1,
                    day: 7,
                    class: "stable",
                    window_correct: false,
                    load_accurate: false,
                    window_bucket_ratio: 40.0,
                }],
            );
            monitor.sweep(engine.obs(), engine.incidents(), None);
            WatchReport::collect(&engine, Some(&monitor), 60).to_json()
        };
        let json = build();
        assert_eq!(json, build(), "report must be byte-identical");
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["tick"], 60u64);
        assert_eq!(parsed["slos"].as_array().unwrap().len(), 2);
        assert!(!parsed["alerts"].as_array().unwrap().is_empty());
        assert!(!parsed["incidents"].as_array().unwrap().is_empty());
        let acc = &parsed["accuracy"].as_array().unwrap()[0];
        assert_eq!(acc["region"], "west");
        assert_eq!(acc["regressed"], true);
    }
}
