//! SLO-percentile gating: pass/fail verdicts for benches and CI.
//!
//! A latency gate like "p99 ≤ 100µs" is exactly an [`SloSpec`] latency
//! objective: *at least 99% of observations must be under 100µs*. This
//! module makes that identity executable — a [`PercentileGate`] set is
//! compiled into `SloSpec::latency_under` objectives, observations stream
//! through a [`WatchEngine`], and the verdict is the engine's attainment
//! over the recorded window compared against each objective. Benches
//! (`serving`, `loadtest`) gate their CI jobs on the resulting
//! [`GateReport`] instead of re-implementing quantile math, and the same
//! thresholds can be monitored in production by handing the identical
//! specs to a long-running engine.
//!
//! Determinism: verdicts are a pure function of the observed values (via
//! the engine's virtual-tick rings), never of wall time — though the
//! *values* a bench feeds in are usually wall-clock latencies, so gate
//! outcomes on real runs are as honest as the measurements.

use crate::engine::WatchEngine;
use crate::slo::SloSpec;
use seagull_core::IncidentManager;
use seagull_obs::Obs;

/// One latency-percentile bound, e.g. `p99 ≤ 100µs` as
/// `PercentileGate { name: "p99_latency_us", percentile: 0.99, threshold: 100.0 }`.
/// Units are whatever the caller observes in (the benches use
/// microseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileGate {
    /// Gate (and SLO) name — lands in metric labels and bench JSON.
    pub name: String,
    /// The quantile the bound constrains, as a fraction (`0.99` = p99).
    pub percentile: f64,
    /// Upper bound for that quantile, in the caller's latency unit.
    pub threshold: f64,
}

impl PercentileGate {
    /// A named percentile bound.
    ///
    /// ```
    /// use seagull_watch::PercentileGate;
    ///
    /// let gate = PercentileGate::new("p99_latency_us", 0.99, 100.0);
    /// assert_eq!(gate.name, "p99_latency_us");
    /// ```
    pub fn new(name: &str, percentile: f64, threshold: f64) -> PercentileGate {
        assert!(
            (0.0..1.0).contains(&percentile),
            "percentile must be in [0, 1)"
        );
        PercentileGate {
            name: name.to_string(),
            percentile,
            threshold,
        }
    }

    /// The equivalent declarative SLO: `percentile` of observations must
    /// be `<= threshold`.
    pub fn to_slo(&self) -> SloSpec {
        SloSpec::latency_under(&self.name, self.threshold, self.percentile)
    }
}

/// One gate's verdict after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct GateVerdict {
    /// Gate name.
    pub name: String,
    /// The bound's threshold.
    pub threshold: f64,
    /// Required good fraction, percent (the percentile × 100).
    pub required_pct: f64,
    /// Observed good fraction, percent.
    pub attained_pct: f64,
    /// Whether the objective was met.
    pub pass: bool,
}

/// Verdicts for a whole gate set; `pass` is the conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-gate verdicts, in gate declaration order.
    pub verdicts: Vec<GateVerdict>,
    /// `true` iff every gate passed.
    pub pass: bool,
}

impl GateReport {
    /// The verdict for one gate by name.
    pub fn verdict(&self, name: &str) -> Option<&GateVerdict> {
        self.verdicts.iter().find(|v| v.name == name)
    }
}

/// A set of percentile bounds compiled into a [`WatchEngine`] — feed it
/// latencies, ask for a [`GateReport`].
///
/// ```
/// use seagull_watch::SloGate;
///
/// let gate = SloGate::latency_us("bench", &[(0.50, 5.0), (0.99, 50.0)]);
/// for latency in [1.0, 2.0, 3.0, 40.0] {
///     gate.observe(latency);
/// }
/// let report = gate.report();
/// assert!(report.pass);
/// assert_eq!(report.verdicts.len(), 2);
/// ```
pub struct SloGate {
    engine: WatchEngine,
    gates: Vec<PercentileGate>,
    region: String,
    tick: u64,
}

impl SloGate {
    /// Builds a gate set from explicit [`PercentileGate`]s. `region`
    /// labels the recorded series (benches use their own name).
    pub fn new(region: &str, gates: Vec<PercentileGate>) -> SloGate {
        let mut engine = WatchEngine::new(Obs::new(), IncidentManager::new());
        for gate in &gates {
            engine.add_slo(gate.to_slo());
        }
        SloGate {
            engine,
            gates,
            region: region.to_string(),
            tick: 1,
        }
    }

    /// Convenience constructor for microsecond latency bounds:
    /// `(percentile, threshold_us)` pairs named `p{pct}_latency_us`.
    pub fn latency_us(region: &str, bounds: &[(f64, f64)]) -> SloGate {
        SloGate::new(
            region,
            bounds
                .iter()
                .map(|&(pct, threshold)| {
                    let name = format!("p{:02.0}_latency_us", pct * 100.0);
                    PercentileGate::new(&name, pct, threshold)
                })
                .collect(),
        )
    }

    /// The compiled SLO specs, for callers that want to register the same
    /// objectives with a production engine.
    pub fn slos(&self) -> Vec<SloSpec> {
        self.gates.iter().map(PercentileGate::to_slo).collect()
    }

    /// Records one latency observation against every gate.
    pub fn observe(&self, value: f64) {
        for gate in &self.gates {
            self.engine
                .observe_latency(&gate.name, &self.region, self.tick, value);
        }
    }

    /// Records a batch of observations.
    pub fn observe_all(&self, values: &[f64]) {
        for &value in values {
            self.observe(value);
        }
    }

    /// Evaluates every gate over what has been observed so far.
    pub fn report(&self) -> GateReport {
        let verdicts: Vec<GateVerdict> = self
            .gates
            .iter()
            .map(|gate| {
                let attained_pct = self
                    .engine
                    .attainment_pct(&gate.name, &self.region, self.tick);
                let required_pct = gate.percentile * 100.0;
                GateVerdict {
                    name: gate.name.clone(),
                    threshold: gate.threshold,
                    required_pct,
                    attained_pct,
                    // Tiny epsilon: attainment is a ratio of counts and the
                    // objective a decimal fraction; 990/1000 must pass 0.99.
                    pass: attained_pct + 1e-9 >= required_pct,
                }
            })
            .collect();
        GateReport {
            pass: verdicts.iter().all(|v| v.pass),
            verdicts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_under_threshold_passes() {
        let gate = SloGate::latency_us("t", &[(0.50, 10.0), (0.99, 100.0)]);
        gate.observe_all(&[1.0, 2.0, 3.0, 4.0]);
        let report = gate.report();
        assert!(report.pass);
        assert_eq!(report.verdicts[0].attained_pct, 100.0);
    }

    #[test]
    fn exact_objective_boundary_passes() {
        // 99 of 100 under threshold attains exactly 99% — must pass p99.
        let gate = SloGate::latency_us("t", &[(0.99, 100.0)]);
        for _ in 0..99 {
            gate.observe(1.0);
        }
        gate.observe(500.0);
        assert!(gate.report().pass);
    }

    #[test]
    fn tail_breach_fails_only_the_tail_gate() {
        // 10% of observations breach 10µs: p50 tolerates that, p99 not.
        let gate = SloGate::latency_us("t", &[(0.50, 10.0), (0.99, 10.0)]);
        for i in 0..100 {
            gate.observe(if i % 10 == 0 { 50.0 } else { 1.0 });
        }
        let report = gate.report();
        assert!(!report.pass);
        assert!(report.verdict("p50_latency_us").unwrap().pass);
        let p99 = report.verdict("p99_latency_us").unwrap();
        assert!(!p99.pass);
        assert!((p99.attained_pct - 90.0).abs() < 1e-9);
    }

    #[test]
    fn no_observations_passes_vacuously() {
        let gate = SloGate::latency_us("t", &[(0.99, 1.0)]);
        assert!(gate.report().pass);
    }

    #[test]
    fn slos_compile_to_latency_objectives() {
        let gate = SloGate::latency_us("t", &[(0.95, 25.0)]);
        let slos = gate.slos();
        assert_eq!(slos.len(), 1);
        assert_eq!(slos[0].name, "p95_latency_us");
        assert!((slos[0].objective - 0.95).abs() < 1e-12);
    }
}
