//! Online deployment-accuracy monitoring (paper §5.4).
//!
//! Seagull serves one-week-ahead predictions; their quality is only
//! knowable a week later, when the telemetry for the predicted week
//! arrives. The [`AccuracyMonitor`] implements
//! [`seagull_core::pipeline::AccuracySink`], so the pipeline hands it
//! served-vs-actual scores the moment the accuracy-evaluation stage
//! computes them. The monitor keeps a rolling per-region (and per model
//! class) accuracy series, and a serial [`AccuracyMonitor::sweep`] turns
//! that series into gauges, `model-regression` incidents when accuracy
//! crosses the paper's bound, drift flags on the warm-model cache (so
//! regressed servers are refit rather than reused next week), and a
//! capacity-headroom hint for the autoscaler.
//!
//! ## Determinism
//!
//! [`AccuracyMonitor::on_scores`] is called from inside parallel region
//! runs, but every batch is keyed by `(region, week)` into a `BTreeMap`,
//! so the accumulated state is independent of region completion order.
//! Incident raising, gauge writes, and cache flagging happen only in
//! [`AccuracyMonitor::sweep`], which must run from a serial step at an
//! orchestrator barrier.

use seagull_core::pipeline::{AccuracySink, ScoredPrediction};
use seagull_core::{IncidentManager, Severity};
use seagull_forecast::ModelCache;
use seagull_obs::Obs;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Incident source used for deployment-accuracy regressions.
pub const REGRESSION_SOURCE: &str = "model-regression";

/// Configuration for the [`AccuracyMonitor`].
#[derive(Clone, Debug, PartialEq)]
pub struct AccuracyMonitorConfig {
    /// Minimum deployment accuracy (percent of served predictions whose
    /// low-load window was correct) before a region counts as regressed.
    /// Defaults to the paper's 90% bucket-ratio bound.
    pub bound_pct: f64,
    /// Weeks of history retained per region for trend/drift series.
    pub window_weeks: usize,
    /// Capacity-headroom multiplier recommended to the autoscaler for
    /// regions whose models are regressed (predictions can't be trusted,
    /// so size less aggressively).
    pub regressed_headroom: f64,
}

impl Default for AccuracyMonitorConfig {
    fn default() -> AccuracyMonitorConfig {
        AccuracyMonitorConfig {
            bound_pct: 90.0,
            window_weeks: 4,
            regressed_headroom: 1.25,
        }
    }
}

/// Accuracy tallies for one region-week.
#[derive(Clone, Debug, Default)]
struct WeekScore {
    week_start_day: i64,
    total: u64,
    window_correct: u64,
    load_accurate: u64,
    /// Sum of per-prediction bucket-ratio scores, for the mean.
    ratio_sum: f64,
    /// Per model class: `(total, window_correct)`.
    by_class: BTreeMap<&'static str, (u64, u64)>,
    /// Servers whose served window was wrong this week, in server order.
    inaccurate_servers: Vec<u64>,
}

impl WeekScore {
    fn accuracy_pct(&self) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        100.0 * self.window_correct as f64 / self.total as f64
    }
}

#[derive(Default)]
struct RegionAccuracy {
    weeks: VecDeque<WeekScore>,
    regressed: bool,
}

/// Scores previously-served predictions as actuals arrive and raises
/// `model-regression` incidents when a region's deployment accuracy
/// crosses the configured bound.
pub struct AccuracyMonitor {
    config: AccuracyMonitorConfig,
    state: Mutex<BTreeMap<String, RegionAccuracy>>,
}

impl Default for AccuracyMonitor {
    fn default() -> AccuracyMonitor {
        AccuracyMonitor::new(AccuracyMonitorConfig::default())
    }
}

impl AccuracyMonitor {
    /// Creates a monitor with the given bounds.
    pub fn new(config: AccuracyMonitorConfig) -> AccuracyMonitor {
        AccuracyMonitor {
            config,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> &AccuracyMonitorConfig {
        &self.config
    }

    /// Latest scored week's deployment accuracy for `region`, percent.
    pub fn latest_accuracy_pct(&self, region: &str) -> Option<f64> {
        let state = self.state.lock().unwrap();
        state
            .get(region)
            .and_then(|r| r.weeks.back())
            .map(WeekScore::accuracy_pct)
    }

    /// Rolling accuracy trend for `region`: `(week_start_day, pct)` rows,
    /// oldest first, at most `window_weeks` long.
    pub fn trend(&self, region: &str) -> Vec<(i64, f64)> {
        let state = self.state.lock().unwrap();
        state
            .get(region)
            .map(|r| {
                r.weeks
                    .iter()
                    .map(|w| (w.week_start_day, w.accuracy_pct()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Accuracy drift for `region`: latest week minus the mean of the
    /// preceding weeks in the window (0.0 with fewer than two weeks).
    /// Negative values mean accuracy is degrading.
    pub fn drift_pct(&self, region: &str) -> f64 {
        let trend = self.trend(region);
        if trend.len() < 2 {
            return 0.0;
        }
        let latest = trend[trend.len() - 1].1;
        let prior: f64 =
            trend[..trend.len() - 1].iter().map(|(_, p)| p).sum::<f64>() / (trend.len() - 1) as f64;
        latest - prior
    }

    /// Regions whose latest sweep found them below the accuracy bound,
    /// sorted.
    pub fn regressed_regions(&self) -> Vec<String> {
        let state = self.state.lock().unwrap();
        state
            .iter()
            .filter(|(_, r)| r.regressed)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Capacity-headroom multiplier the autoscaler should apply for
    /// `region`: `regressed_headroom` while the region's models are
    /// regressed, 1.0 otherwise.
    pub fn headroom_multiplier(&self, region: &str) -> f64 {
        let state = self.state.lock().unwrap();
        if state.get(region).is_some_and(|r| r.regressed) {
            self.config.regressed_headroom
        } else {
            1.0
        }
    }

    /// All regions with scored weeks, sorted.
    pub fn regions(&self) -> Vec<String> {
        self.state.lock().unwrap().keys().cloned().collect()
    }

    /// Serial evaluation step: publishes accuracy gauges, raises/resolves
    /// `model-regression` incidents against the bound, and — when the
    /// warm-model cache is supplied — flags every window-inaccurate server
    /// of a regressed region for drift refit. Returns the regions found
    /// regressed this sweep, sorted.
    ///
    /// Must be called from a serial step (an orchestrator barrier, a bench
    /// loop) — never from inside a parallel region.
    pub fn sweep(
        &self,
        obs: &Obs,
        incidents: &IncidentManager,
        cache: Option<&ModelCache>,
    ) -> Vec<String> {
        let registry = obs.registry();
        let mut regressed_now = Vec::new();
        let mut state = self.state.lock().unwrap();
        for (region, acc) in state.iter_mut() {
            let Some(latest) = acc.weeks.back() else {
                continue;
            };
            let labels = [("region", region.as_str())];
            registry
                .gauge("seagull_watch_accuracy_pct", &labels)
                .set(latest.accuracy_pct());
            if latest.total > 0 {
                registry
                    .gauge("seagull_watch_load_accuracy_pct", &labels)
                    .set(100.0 * latest.load_accurate as f64 / latest.total as f64);
                registry
                    .gauge("seagull_watch_mean_bucket_ratio_pct", &labels)
                    .set(latest.ratio_sum / latest.total as f64);
            }
            for (class, (total, correct)) in &latest.by_class {
                if *total > 0 {
                    registry
                        .gauge(
                            "seagull_watch_class_accuracy_pct",
                            &[("class", class), ("region", region.as_str())],
                        )
                        .set(100.0 * *correct as f64 / *total as f64);
                }
            }
            // Drift relative to the preceding weeks in the window.
            let drift = {
                let n = acc.weeks.len();
                if n < 2 {
                    0.0
                } else {
                    let prior: f64 = acc
                        .weeks
                        .iter()
                        .take(n - 1)
                        .map(WeekScore::accuracy_pct)
                        .sum::<f64>()
                        / (n - 1) as f64;
                    latest.accuracy_pct() - prior
                }
            };
            registry
                .gauge("seagull_watch_accuracy_drift_pct", &labels)
                .set(drift);

            let below_bound = latest.total > 0 && latest.accuracy_pct() < self.config.bound_pct;
            if below_bound {
                regressed_now.push(region.clone());
                if !acc.regressed {
                    acc.regressed = true;
                    incidents.raise_keyed(
                        Severity::Critical,
                        REGRESSION_SOURCE,
                        region,
                        "deployment-accuracy",
                        format!(
                            "deployment accuracy {:.1}% below {:.0}% bound for week {} \
                             ({} of {} windows wrong)",
                            latest.accuracy_pct(),
                            self.config.bound_pct,
                            latest.week_start_day,
                            latest.total - latest.window_correct,
                            latest.total
                        ),
                    );
                    registry
                        .counter("seagull_watch_regressions_total", &labels)
                        .inc();
                }
                if let Some(cache) = cache {
                    for server_id in &latest.inaccurate_servers {
                        cache.flag_drift(&format!("{region}/{server_id}"));
                    }
                }
            } else if acc.regressed {
                acc.regressed = false;
                incidents.resolve_matching(REGRESSION_SOURCE, region);
                registry
                    .counter("seagull_watch_regressions_cleared_total", &labels)
                    .inc();
            }
            registry
                .gauge("seagull_watch_model_regressed", &labels)
                .set(below_bound as u64 as f64);
        }
        regressed_now
    }
}

impl AccuracySink for AccuracyMonitor {
    fn on_scores(&self, region: &str, week_start_day: i64, scores: &[ScoredPrediction]) {
        if scores.is_empty() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        let acc = state.entry(region.to_string()).or_default();
        let merge_into_back = acc
            .weeks
            .back()
            .is_some_and(|w| w.week_start_day == week_start_day);
        if !merge_into_back {
            acc.weeks.push_back(WeekScore {
                week_start_day,
                ..WeekScore::default()
            });
            while acc.weeks.len() > self.config.window_weeks.max(1) {
                acc.weeks.pop_front();
            }
        }
        let week = acc.weeks.back_mut().expect("week slot just ensured");
        for s in scores {
            week.total += 1;
            week.window_correct += s.window_correct as u64;
            week.load_accurate += s.load_accurate as u64;
            week.ratio_sum += s.window_bucket_ratio;
            let class = week.by_class.entry(s.class).or_insert((0, 0));
            class.0 += 1;
            class.1 += s.window_correct as u64;
            if !s.window_correct {
                week.inaccurate_servers.push(s.server_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(server_id: u64, correct: bool) -> ScoredPrediction {
        ScoredPrediction {
            server_id,
            day: 7,
            class: if server_id.is_multiple_of(2) {
                "stable"
            } else {
                "unstable"
            },
            window_correct: correct,
            load_accurate: correct,
            window_bucket_ratio: if correct { 95.0 } else { 40.0 },
        }
    }

    #[test]
    fn healthy_region_raises_nothing() {
        let m = AccuracyMonitor::default();
        let scores: Vec<_> = (0..10).map(|i| score(i, true)).collect();
        m.on_scores("west", 7, &scores);
        let (obs, incidents) = (Obs::new(), IncidentManager::new());
        assert!(m.sweep(&obs, &incidents, None).is_empty());
        assert_eq!(incidents.open_total(), 0);
        assert_eq!(m.latest_accuracy_pct("west"), Some(100.0));
        assert_eq!(m.headroom_multiplier("west"), 1.0);
    }

    #[test]
    fn regression_raises_once_then_clears_on_recovery() {
        let m = AccuracyMonitor::default();
        let (obs, incidents) = (Obs::new(), IncidentManager::new());
        // Week 1: 40% accuracy — regressed.
        let scores: Vec<_> = (0..10).map(|i| score(i, i < 4)).collect();
        m.on_scores("west", 7, &scores);
        assert_eq!(m.sweep(&obs, &incidents, None), vec!["west".to_string()]);
        assert_eq!(incidents.open_total(), 1);
        assert_eq!(incidents.open()[0].source, REGRESSION_SOURCE);
        assert_eq!(m.headroom_multiplier("west"), 1.25);
        // Sweeping again while still regressed must not duplicate.
        m.sweep(&obs, &incidents, None);
        assert_eq!(incidents.all().len(), 1);
        // Week 2: recovered.
        let scores: Vec<_> = (0..10).map(|i| score(i, true)).collect();
        m.on_scores("west", 14, &scores);
        assert!(m.sweep(&obs, &incidents, None).is_empty());
        assert_eq!(incidents.open_total(), 0);
        assert_eq!(m.regressed_regions(), Vec::<String>::new());
    }

    #[test]
    fn regressed_sweep_flags_inaccurate_servers_for_drift_refit() {
        let m = AccuracyMonitor::default();
        let (obs, incidents) = (Obs::new(), IncidentManager::new());
        let cache = ModelCache::with_capacity(16);
        // Server 3 wrong, server 4 right; region accuracy 50% < bound, so
        // exactly the window-inaccurate server is flagged for refit (the
        // flag-forces-Drift-miss path is covered by the cache's own tests).
        m.on_scores("west", 7, &[score(3, false), score(4, true)]);
        m.sweep(&obs, &incidents, Some(&cache));
        assert!(cache.drift_flagged("west/3"));
        assert!(!cache.drift_flagged("west/4"));
    }

    #[test]
    fn trend_and_drift_track_rolling_weeks() {
        let m = AccuracyMonitor::default();
        for (week, correct) in [(7, 10), (14, 10), (21, 5)] {
            let scores: Vec<_> = (0..10).map(|i| score(i, i < correct)).collect();
            m.on_scores("west", week, &scores);
        }
        assert_eq!(m.trend("west"), vec![(7, 100.0), (14, 100.0), (21, 50.0)]);
        assert!((m.drift_pct("west") + 50.0).abs() < 1e-9);
    }

    #[test]
    fn state_is_independent_of_region_arrival_order() {
        let run = |order: &[&str]| {
            let m = AccuracyMonitor::default();
            for region in order {
                let ok = region != &"east";
                let scores: Vec<_> = (0..10).map(|i| score(i, ok || i < 3)).collect();
                m.on_scores(region, 7, &scores);
            }
            let (obs, incidents) = (Obs::new(), IncidentManager::new());
            let regressed = m.sweep(&obs, &incidents, None);
            (regressed, obs.stable_export())
        };
        assert_eq!(run(&["west", "east"]), run(&["east", "west"]));
    }
}
