//! # seagull-watch: the watchtower
//!
//! Deterministic evaluation layer on top of `seagull-obs`: the pieces that
//! *watch* a Seagull fleet rather than run it. §5 of the paper describes
//! the production posture this reproduces — Microsoft monitors deployment
//! accuracy, staleness, and pipeline health for ~100k servers and alerts
//! on regressions.
//!
//! * [`slo`] — declarative [`slo::SloSpec`]s (latency, error-rate,
//!   staleness, availability) with Google-SRE multi-window burn-rate pairs.
//! * [`engine`] — the [`engine::WatchEngine`]: sliding-window SLI series on
//!   the virtual clock, burn-rate alert lifecycle through the existing
//!   [`seagull_core::IncidentManager`], per-region health gauges.
//! * [`accuracy`] — the [`accuracy::AccuracyMonitor`]: scores
//!   previously-served predictions as actuals arrive (§5.4 deployment
//!   accuracy), keeps rolling error/drift series per region and model
//!   class, raises `ModelRegression` incidents, and pulls the warm-cache
//!   drift gate so regressed servers are refit.
//! * [`gate`] — the [`gate::SloGate`]: latency-percentile bounds compiled
//!   into `SloSpec` objectives, giving benches and CI one pass/fail
//!   verdict per threshold (`p99 ≤ X` ⇔ a 0.99 latency objective).
//! * [`report`] — the [`report::WatchReport`]: one JSON artifact
//!   summarizing SLO attainment, open alerts, and accuracy trends.
//!
//! ## Determinism contract
//!
//! Everything the watchtower computes is a pure function of the events
//! recorded into it — virtual ticks, good/bad counts, accuracy scores —
//! never of wall time. Metrics it exports are registered
//! [`seagull_obs::Stability::Stable`], so `Obs::stable_export()` including
//! watch series stays byte-identical across same-seed runs and thread
//! counts, provided the caller follows the same rule the fleet
//! orchestrator does: record from parallel regions only with region-keyed
//! (disjoint) state, and evaluate/sweep only from serial steps at
//! orchestrator barriers.

#![warn(missing_docs)]

pub mod accuracy;
pub mod engine;
pub mod gate;
pub mod report;
pub mod slo;

pub use accuracy::{AccuracyMonitor, AccuracyMonitorConfig};
pub use engine::{AlertTransition, WatchEngine};
pub use gate::{GateReport, GateVerdict, PercentileGate, SloGate};
pub use report::WatchReport;
pub use slo::{default_pairs, BurnRatePair, SloKind, SloSpec};
