//! Criterion micro-benchmarks for the Seagull hot paths: the metric kernels
//! (bucket ratio, LL-window search), model fitting, classification, the
//! document store, and the parallel executor.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use seagull_core::classify::{classify_series, ClassifyConfig};
use seagull_core::docstore::DocStore;
use seagull_core::metrics::{bucket_ratio, evaluate_low_load, AccuracyConfig, ErrorBound};
use seagull_core::par::parallel_map;
use seagull_forecast::additive::FitMethod;
use seagull_forecast::{
    AdditiveConfig, AdditiveForecaster, FeedForwardConfig, FeedForwardForecaster, Forecaster,
    PersistentForecast, SsaForecaster,
};
use seagull_telemetry::record::RecordBatch;
use seagull_timeseries::{decompose, min_mean_window, TimeSeries, Timestamp};
use std::hint::black_box;

fn day_series(seed: u64) -> TimeSeries {
    TimeSeries::from_fn(Timestamp::from_days(100), 5, 288, |t| {
        let m = t.minute_of_day() as f64;
        30.0 + 20.0 * (2.0 * std::f64::consts::PI * (m + seed as f64) / 1440.0).sin()
    })
    .unwrap()
}

fn week_series(seed: u64) -> TimeSeries {
    TimeSeries::from_fn(Timestamp::from_days(100), 5, 7 * 288, |t| {
        let m = t.minute_of_day() as f64;
        30.0 + 20.0 * (2.0 * std::f64::consts::PI * (m + seed as f64) / 1440.0).sin()
    })
    .unwrap()
}

fn bench_metrics(c: &mut Criterion) {
    let truth = day_series(0);
    let pred = day_series(30);
    let bound = ErrorBound::default();
    c.bench_function("bucket_ratio/288pts", |b| {
        b.iter(|| bucket_ratio(black_box(pred.values()), black_box(truth.values()), &bound))
    });
    c.bench_function("min_mean_window/288pts", |b| {
        b.iter(|| min_mean_window(black_box(truth.values()), 24))
    });
    let cfg = AccuracyConfig::default();
    c.bench_function("evaluate_low_load/288pts", |b| {
        b.iter(|| evaluate_low_load(black_box(&truth), black_box(&pred), 120, &cfg))
    });
}

fn bench_models(c: &mut Criterion) {
    let week = week_series(0);
    c.bench_function("persistent_prev_day/fit_predict_week", |b| {
        let model = PersistentForecast::previous_day();
        b.iter(|| model.fit_predict(black_box(&week), 288).unwrap())
    });
    c.bench_function("ssa/fit_week", |b| {
        let model = SsaForecaster::default();
        b.iter(|| model.fit(black_box(&week)).unwrap())
    });
    c.bench_function("additive_exact/fit_week", |b| {
        let model = AdditiveForecaster::new(AdditiveConfig {
            fit: FitMethod::Exact,
            ..AdditiveConfig::default()
        });
        b.iter(|| model.fit(black_box(&week)).unwrap())
    });
    c.bench_function("feedforward_small/fit_week", |b| {
        let model = FeedForwardForecaster::new(FeedForwardConfig {
            hidden: vec![8],
            epochs: 2,
            stride: 8,
            ..FeedForwardConfig::default()
        });
        b.iter(|| model.fit(black_box(&week)).unwrap())
    });
}

fn bench_codec(c: &mut Criterion) {
    use seagull_telemetry::record::LoadRecord;
    use seagull_telemetry::server::ServerId;
    let batch = RecordBatch::new(
        (0..2000)
            .map(|i| LoadRecord {
                server_id: ServerId(i % 20),
                timestamp_min: (i as i64) * 5,
                avg_cpu: (i % 100) as f64,
                default_backup_start: 0,
                default_backup_end: 60,
            })
            .collect(),
    );
    let blob = batch.to_csv();
    c.bench_function("csv/encode_2k_rows", |b| {
        b.iter(|| black_box(&batch).to_csv())
    });
    c.bench_function("csv/decode_2k_rows", |b| {
        b.iter(|| RecordBatch::from_csv(black_box(&blob)).unwrap())
    });
}

fn bench_decompose(c: &mut Criterion) {
    let week = week_series(0);
    c.bench_function("decompose/week_daily_period", |b| {
        b.iter(|| decompose(black_box(&week), 288).unwrap())
    });
}

fn bench_classification(c: &mut Criterion) {
    let week = week_series(0);
    let cfg = ClassifyConfig::default();
    c.bench_function("classify_series/week", |b| {
        b.iter(|| classify_series(black_box(&week), &cfg))
    });
}

fn bench_docstore(c: &mut Criterion) {
    c.bench_function("docstore/upsert_get", |b| {
        let store = DocStore::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = format!("doc-{}", i % 1000);
            store.upsert("bench", &id, &(i as f64)).unwrap();
            let _: f64 = store.get("bench", &id).unwrap();
        })
    });
}

fn bench_executor(c: &mut Criterion) {
    let items: Vec<u64> = (0..256).collect();
    let work = |x: &u64| -> u64 {
        // A few microseconds of arithmetic per item.
        let mut acc = *x;
        for _ in 0..2000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        acc
    };
    let mut group = c.benchmark_group("parallel_map/256items");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || items.clone(),
                    |items| parallel_map(&items, threads, work),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_metrics,
    bench_models,
    bench_classification,
    bench_codec,
    bench_decompose,
    bench_docstore,
    bench_executor
);
criterion_main!(benches);
