//! Standard experiment fleets and the scale knob.

use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};

/// Experiment scale, from the `SEAGULL_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per experiment (default).
    Small,
    /// Population sizes closer to the paper's (minutes per experiment).
    Paper,
}

/// Reads the scale knob (`small` unless `SEAGULL_SCALE=paper`).
pub fn scale() -> Scale {
    match std::env::var("SEAGULL_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        _ => Scale::Small,
    }
}

impl Scale {
    /// Multiplier applied to base population sizes.
    pub fn factor(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Paper => 10,
        }
    }
}

/// The classification-experiment fleet: one month (4+ weeks) of four regions
/// mixing the Figure 3 population (the paper samples "several tens of
/// thousands of servers from four regions during one month in 2019").
pub fn classification_fleet(seed: u64) -> (Vec<ServerTelemetry>, FleetSpec) {
    let spec = FleetSpec::four_regions(seed, 40 * scale().factor());
    let fleet = FleetGenerator::new(spec.clone()).generate_weeks(4);
    (fleet, spec)
}

/// A single-region fleet of `servers` servers over `weeks` weeks.
pub fn region_fleet(seed: u64, servers: usize, weeks: usize) -> (Vec<ServerTelemetry>, FleetSpec) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = servers;
    let fleet = FleetGenerator::new(spec.clone()).generate_weeks(weeks);
    (fleet, spec)
}

/// Only the long-lived *unstable* servers of a fleet — the population the
/// Figure 11 model comparison targets ("we apply ML models to such servers").
pub fn unstable_pool(seed: u64, count: usize, weeks: usize) -> (Vec<ServerTelemetry>, i64) {
    use seagull_telemetry::fleet::{ClassMix, RegionSpec};
    let spec = FleetSpec {
        seed,
        regions: vec![RegionSpec {
            name: "unstable-pool".into(),
            servers: count,
        }],
        start_day: 17_997,
        grid_min: 5,
        mix: ClassMix {
            short_lived: 0.0,
            stable: 0.0,
            daily: 0.0,
            weekly: 0.0,
            unstable: 1.0,
        },
        capacity_reaching: 0.037,
    };
    let start = spec.start_day;
    (FleetGenerator::new(spec).generate_weeks(weeks), start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_telemetry::server::GeneratedClass;

    #[test]
    fn unstable_pool_is_all_unstable() {
        let (fleet, _) = unstable_pool(3, 25, 2);
        assert_eq!(fleet.len(), 25);
        assert!(fleet
            .iter()
            .all(|s| s.meta.class == GeneratedClass::Unstable));
        assert!(fleet.iter().all(|s| s.meta.deleted_day.is_none()));
    }

    #[test]
    fn region_fleet_sizes() {
        let (fleet, spec) = region_fleet(1, 12, 1);
        assert_eq!(fleet.len(), 12);
        assert_eq!(spec.regions[0].servers, 12);
    }

    #[test]
    fn default_scale_is_small() {
        // The test environment does not set SEAGULL_SCALE.
        if std::env::var("SEAGULL_SCALE").is_err() {
            assert_eq!(scale(), Scale::Small);
            assert_eq!(scale().factor(), 1);
        }
    }
}
