//! # seagull-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §4 for the full index) plus Criterion micro-benchmarks.
//!
//! Every binary prints the same rows/series the paper reports and also
//! writes a JSON record under `experiments/` at the workspace root so
//! `EXPERIMENTS.md` can be cross-checked against fresh runs.
//!
//! Scale is controlled by the `SEAGULL_SCALE` environment variable:
//! `small` (default; seconds per experiment) or `paper` (population sizes
//! closer to the paper's; minutes). All experiments are seeded and
//! deterministic at either scale.

pub mod fleets;
pub mod loadtest;
pub mod output;

pub use fleets::{scale, Scale};
pub use loadtest::{ClosedLoop, LoadRun, OpenLoop, OverloadStats, SweepPoint};
pub use output::{emit_json, emit_text, Table};
