//! Load-testing harness: seeded open/closed-loop generators, arrival-rate
//! sweeps, knee finding, and overload classification.
//!
//! Methodology follows Meta's "Load Testing for ML Model Serving Systems
//! at Scale" (see `PAPERS.md`):
//!
//! * **Open loop** ([`OpenLoop`]): requests arrive on a schedule drawn
//!   from a seeded exponential (Poisson) process at a target rate,
//!   *regardless* of whether earlier requests finished. Latency is
//!   **sojourn time** — completion minus *scheduled* arrival — so queueing
//!   delay under saturation is measured instead of hidden (the
//!   coordinated-omission trap closed-loop measurements fall into).
//! * **Closed loop** ([`ClosedLoop`]): a fixed worker pool where each
//!   worker fires its next request the moment the previous one completes.
//!   Measures service time and peak sustainable throughput at a given
//!   concurrency, but self-throttles under overload.
//! * **Rate sweep → knee** ([`find_knee`]): run the open loop at
//!   increasing offered rates; the *knee* is the highest rate the system
//!   still absorbs — achieved throughput tracks offered (within
//!   [`KNEE_ABSORB_FRACTION`]) and tail latency stays under its bound.
//!   Past the knee the queue grows without bound and sojourn p99 explodes.
//! * **Overload: shed vs degrade** ([`OverloadStats`]): a healthy
//!   overloaded server *sheds* (fast, cheap rejections via the circuit
//!   breaker) rather than *degrades* (serving everyone slower and slower).
//!
//! Every generator is seeded and its request schedule deterministic;
//! response digests use FNV-1a folded in request order, so a digest is
//! comparable across thread counts and machines.

use seagull_telemetry::chaos::DetRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A sweep point "absorbs" its offered rate when achieved QPS is at least
/// this fraction of offered.
pub const KNEE_ABSORB_FRACTION: f64 = 0.95;

// ---------------------------------------------------------------------------
// FNV digests
// ---------------------------------------------------------------------------

/// FNV-1a offset basis — the seed for [`fnv1a_fold`] chains.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a running hash. Chain calls to digest a
/// response; fold per-request digests in request order for a run digest.
pub fn fnv1a_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Folds an `f64` slice into the hash via exact bit patterns (no
/// formatting, no rounding — byte-identical or not at all).
pub fn fnv1a_fold_f64s(mut hash: u64, values: &[f64]) -> u64 {
    for v in values {
        hash = fnv1a_fold(hash, &v.to_bits().to_le_bytes());
    }
    hash
}

/// Folds a `u64` into the hash.
pub fn fnv1a_fold_u64(hash: u64, value: u64) -> u64 {
    fnv1a_fold(hash, &value.to_le_bytes())
}

// ---------------------------------------------------------------------------
// Run results
// ---------------------------------------------------------------------------

/// The outcome of one generator run.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Per-request latency, microseconds, sorted ascending. Open-loop runs
    /// record sojourn time (completion − scheduled arrival); closed-loop
    /// runs record service time.
    pub latencies_us: Vec<f64>,
    /// Wall-clock duration of the whole run, seconds.
    pub wall_s: f64,
    /// Offered arrival rate (open loop only).
    pub offered_qps: Option<f64>,
    /// Requests completed per wall-clock second.
    pub achieved_qps: f64,
    /// FNV-1a digest of every response, folded in request order —
    /// identical across thread counts for a deterministic target.
    pub digest: u64,
}

impl LoadRun {
    /// The `q`-quantile latency in microseconds (nearest-rank).
    pub fn quantile_us(&self, q: f64) -> f64 {
        quantile(&self.latencies_us, q)
    }
}

/// Nearest-rank quantile of an ascending-sorted slice (0.0 if empty).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn finish_run(
    mut per_request: Vec<(usize, u64, f64)>,
    wall_s: f64,
    offered_qps: Option<f64>,
) -> LoadRun {
    // Reassemble request order regardless of which thread ran what, so
    // the digest is thread-count independent.
    per_request.sort_unstable_by_key(|(i, _, _)| *i);
    let digest = per_request
        .iter()
        .fold(FNV_OFFSET, |h, (_, d, _)| fnv1a_fold_u64(h, *d));
    let mut latencies_us: Vec<f64> = per_request.iter().map(|(_, _, l)| *l).collect();
    latencies_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LoadRun {
        achieved_qps: per_request.len() as f64 / wall_s.max(1e-12),
        latencies_us,
        wall_s,
        offered_qps,
        digest,
    }
}

// ---------------------------------------------------------------------------
// Open loop
// ---------------------------------------------------------------------------

/// Seeded open-loop (Poisson-arrival) load generator.
///
/// ```
/// use seagull_bench::loadtest::OpenLoop;
///
/// let gen = OpenLoop::new(7).rate_qps(10_000.0).requests(1_000);
/// let arrivals = gen.arrivals();
/// assert_eq!(arrivals.len(), 1_000);
/// // The schedule is monotone, seeded, and deterministic.
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// assert_eq!(arrivals, OpenLoop::new(7).rate_qps(10_000.0).requests(1_000).arrivals());
/// // Mean inter-arrival ≈ 1/rate.
/// let mean = arrivals.last().unwrap() / 999.0;
/// assert!((mean - 1e-4).abs() < 2e-5, "mean inter-arrival {mean}");
/// ```
#[derive(Debug, Clone)]
pub struct OpenLoop {
    seed: u64,
    rate_qps: f64,
    requests: usize,
}

impl OpenLoop {
    /// A generator with the given schedule seed (1k QPS, 1k requests until
    /// overridden).
    pub fn new(seed: u64) -> OpenLoop {
        OpenLoop {
            seed,
            rate_qps: 1_000.0,
            requests: 1_000,
        }
    }

    /// Sets the offered arrival rate, queries per second.
    pub fn rate_qps(mut self, rate_qps: f64) -> OpenLoop {
        assert!(rate_qps > 0.0, "rate must be positive");
        self.rate_qps = rate_qps;
        self
    }

    /// Sets the number of requests in the schedule.
    pub fn requests(mut self, requests: usize) -> OpenLoop {
        self.requests = requests;
        self
    }

    /// Number of requests this generator will issue.
    pub fn len(&self) -> usize {
        self.requests
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.requests == 0
    }

    /// The offered rate, queries per second.
    pub fn offered_qps(&self) -> f64 {
        self.rate_qps
    }

    /// The scheduled arrival times (seconds from run start): a seeded
    /// Poisson process with exponential inter-arrivals at the target rate.
    pub fn arrivals(&self) -> Vec<f64> {
        let mut rng = DetRng::new(self.seed);
        let mut t = 0.0f64;
        (0..self.requests)
            .map(|_| {
                // Inverse-CDF exponential; clamp u away from 0 so ln stays
                // finite.
                let u = rng.next_f64().max(1e-12);
                t += -u.ln() / self.rate_qps;
                t
            })
            .collect()
    }

    /// Fires the schedule at `query` from `threads` workers (requests are
    /// round-robined). `query` receives the request index and returns a
    /// digest of its response; latency is sojourn time against the
    /// *scheduled* arrival, so queueing under overload is visible.
    pub fn run<F>(&self, threads: usize, query: F) -> LoadRun
    where
        F: Fn(usize) -> u64 + Sync,
    {
        assert!(threads > 0, "at least one worker thread");
        let arrivals = self.arrivals();
        let query = &query;
        let started = Instant::now();
        let mut per_request: Vec<(usize, u64, f64)> = Vec::with_capacity(self.requests);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let arrivals = &arrivals;
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(arrivals.len() / threads + 1);
                        for (i, &scheduled) in arrivals.iter().enumerate() {
                            if i % threads != t {
                                continue;
                            }
                            // Hold the open-loop schedule: sleep off large
                            // gaps, spin the tail for sub-scheduler-quantum
                            // precision.
                            loop {
                                let now = started.elapsed().as_secs_f64();
                                let wait = scheduled - now;
                                if wait <= 0.0 {
                                    break;
                                }
                                if wait > 500e-6 {
                                    std::thread::sleep(std::time::Duration::from_secs_f64(
                                        wait - 250e-6,
                                    ));
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                            let digest = query(i);
                            let done = started.elapsed().as_secs_f64();
                            out.push((i, digest, (done - scheduled).max(0.0) * 1e6));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                per_request.extend(handle.join().expect("load worker panicked"));
            }
        });
        finish_run(
            per_request,
            started.elapsed().as_secs_f64(),
            Some(self.rate_qps),
        )
    }
}

// ---------------------------------------------------------------------------
// Closed loop
// ---------------------------------------------------------------------------

/// Closed-loop load generator: a fixed pool of workers, each firing its
/// next request as soon as the previous completes.
///
/// ```
/// use seagull_bench::loadtest::ClosedLoop;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let calls = AtomicUsize::new(0);
/// let run = ClosedLoop::new(4).requests(100).run(|i| {
///     calls.fetch_add(1, Ordering::Relaxed);
///     i as u64 // a deterministic per-request digest
/// });
/// assert_eq!(calls.load(Ordering::Relaxed), 100);
/// assert_eq!(run.latencies_us.len(), 100);
/// // Same digests in request order → same run digest, any worker count.
/// assert_eq!(run.digest, ClosedLoop::new(1).requests(100).run(|i| i as u64).digest);
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    workers: usize,
    requests: usize,
}

impl ClosedLoop {
    /// A generator with `workers` concurrent callers (1k requests until
    /// overridden).
    pub fn new(workers: usize) -> ClosedLoop {
        assert!(workers > 0, "at least one worker");
        ClosedLoop {
            workers,
            requests: 1_000,
        }
    }

    /// Sets the total number of requests across all workers.
    pub fn requests(mut self, requests: usize) -> ClosedLoop {
        self.requests = requests;
        self
    }

    /// Number of requests this generator will issue.
    pub fn len(&self) -> usize {
        self.requests
    }

    /// Whether the run would issue no requests.
    pub fn is_empty(&self) -> bool {
        self.requests == 0
    }

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drives `query` from the worker pool; workers pull the next request
    /// index from a shared counter, so the pool stays busy end to end.
    /// Latency is pure service time.
    pub fn run<F>(&self, query: F) -> LoadRun
    where
        F: Fn(usize) -> u64 + Sync,
    {
        let next = AtomicUsize::new(0);
        let query = &query;
        let next = &next;
        let total = self.requests;
        let started = Instant::now();
        let mut per_request: Vec<(usize, u64, f64)> = Vec::with_capacity(total);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            let q0 = Instant::now();
                            let digest = query(i);
                            out.push((i, digest, q0.elapsed().as_secs_f64() * 1e6));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                per_request.extend(handle.join().expect("load worker panicked"));
            }
        });
        finish_run(per_request, started.elapsed().as_secs_f64(), None)
    }
}

// ---------------------------------------------------------------------------
// Sweeps and the knee
// ---------------------------------------------------------------------------

/// One point of an arrival-rate sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Arrival rate the generator offered.
    pub offered_qps: f64,
    /// Throughput the system actually delivered.
    pub achieved_qps: f64,
    /// Median sojourn latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile sojourn latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile sojourn latency, microseconds.
    pub p99_us: f64,
}

impl SweepPoint {
    /// Builds a point from an open-loop [`LoadRun`].
    pub fn from_run(run: &LoadRun) -> SweepPoint {
        SweepPoint {
            offered_qps: run.offered_qps.unwrap_or(run.achieved_qps),
            achieved_qps: run.achieved_qps,
            p50_us: run.quantile_us(0.50),
            p95_us: run.quantile_us(0.95),
            p99_us: run.quantile_us(0.99),
        }
    }

    /// Whether the system absorbed this offered rate: achieved throughput
    /// within [`KNEE_ABSORB_FRACTION`] of offered and p99 under the bound.
    pub fn absorbed(&self, p99_bound_us: f64) -> bool {
        self.achieved_qps >= KNEE_ABSORB_FRACTION * self.offered_qps && self.p99_us <= p99_bound_us
    }
}

/// Index of the knee in an ascending-rate sweep: the **last** point that
/// absorbed its offered rate *before* the first point that did not.
/// `None` when even the first point is past saturation.
///
/// Points after the first non-absorbed one are ignored even if they
/// nominally absorb again — a saturated system's achieved-vs-offered
/// ratio is noisy, and a knee is by definition the *first* break.
pub fn find_knee(points: &[SweepPoint], p99_bound_us: f64) -> Option<usize> {
    let mut knee = None;
    for (i, point) in points.iter().enumerate() {
        if point.absorbed(p99_bound_us) {
            knee = Some(i);
        } else {
            break;
        }
    }
    knee
}

// ---------------------------------------------------------------------------
// Overload classification
// ---------------------------------------------------------------------------

/// How a system behaved under deliberate overload: shedding (fast
/// rejections) versus degrading (everyone waits).
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadStats {
    /// Requests answered normally.
    pub served: usize,
    /// Requests rejected fast (breaker open — the *shed* path).
    pub shed: usize,
    /// Median latency of shed responses, microseconds.
    pub shed_p50_us: f64,
    /// Median latency of served responses, microseconds.
    pub served_p50_us: f64,
}

impl OverloadStats {
    /// Classifies per-request `(latency_us, was_shed)` outcomes.
    pub fn classify(outcomes: &[(f64, bool)]) -> OverloadStats {
        let mut shed: Vec<f64> = outcomes
            .iter()
            .filter(|(_, s)| *s)
            .map(|(l, _)| *l)
            .collect();
        let mut served: Vec<f64> = outcomes
            .iter()
            .filter(|(_, s)| !*s)
            .map(|(l, _)| *l)
            .collect();
        shed.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        served.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        OverloadStats {
            served: served.len(),
            shed: shed.len(),
            shed_p50_us: quantile(&shed, 0.50),
            served_p50_us: quantile(&served, 0.50),
        }
    }

    /// Fraction of requests shed.
    pub fn shed_fraction(&self) -> f64 {
        let total = self.served + self.shed;
        if total == 0 {
            return 0.0;
        }
        self.shed as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_schedule_is_seeded_and_monotone() {
        let a = OpenLoop::new(42).rate_qps(5_000.0).requests(500).arrivals();
        let b = OpenLoop::new(42).rate_qps(5_000.0).requests(500).arrivals();
        let c = OpenLoop::new(43).rate_qps(5_000.0).requests(500).arrivals();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival tracks 1/rate within sampling noise.
        let mean = a.last().unwrap() / (a.len() - 1) as f64;
        assert!((mean - 1.0 / 5_000.0).abs() < 0.3 / 5_000.0);
    }

    #[test]
    fn open_loop_digest_is_thread_count_independent() {
        let gen = OpenLoop::new(9).rate_qps(200_000.0).requests(2_000);
        let one = gen.run(1, |i| (i as u64).wrapping_mul(0x9e37_79b9));
        let four = gen.run(4, |i| (i as u64).wrapping_mul(0x9e37_79b9));
        assert_eq!(one.digest, four.digest);
        assert_eq!(one.latencies_us.len(), 2_000);
        assert_eq!(four.latencies_us.len(), 2_000);
    }

    #[test]
    fn closed_loop_bounds_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let inflight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let run = ClosedLoop::new(3).requests(300).run(|i| {
            let now = inflight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            inflight.fetch_sub(1, Ordering::SeqCst);
            i as u64
        });
        assert_eq!(run.latencies_us.len(), 300);
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 3, "closed loop must bound concurrency, saw {peak}");
    }

    #[test]
    fn knee_finder_locates_the_break_on_a_synthetic_curve() {
        // Classic saturation curve: absorbs 10k/20k/40k, breaks at 80k.
        let points = vec![
            SweepPoint {
                offered_qps: 10_000.0,
                achieved_qps: 10_000.0,
                p50_us: 5.0,
                p95_us: 9.0,
                p99_us: 15.0,
            },
            SweepPoint {
                offered_qps: 20_000.0,
                achieved_qps: 19_800.0,
                p50_us: 5.0,
                p95_us: 10.0,
                p99_us: 18.0,
            },
            SweepPoint {
                offered_qps: 40_000.0,
                achieved_qps: 39_200.0,
                p50_us: 6.0,
                p95_us: 12.0,
                p99_us: 30.0,
            },
            SweepPoint {
                offered_qps: 80_000.0,
                achieved_qps: 52_000.0,
                p50_us: 900.0,
                p95_us: 4_000.0,
                p99_us: 9_000.0,
            },
            SweepPoint {
                offered_qps: 160_000.0,
                achieved_qps: 51_000.0,
                p50_us: 5_000.0,
                p95_us: 20_000.0,
                p99_us: 50_000.0,
            },
        ];
        assert_eq!(find_knee(&points, 1_000.0), Some(2));
        // A tight p99 bound moves the knee earlier.
        assert_eq!(find_knee(&points, 16.0), Some(0));
        // A hopeless bound: no point qualifies.
        assert_eq!(find_knee(&points, 1.0), None);
    }

    #[test]
    fn knee_ignores_recovery_after_the_first_break() {
        let absorbed = SweepPoint {
            offered_qps: 10_000.0,
            achieved_qps: 10_000.0,
            p50_us: 5.0,
            p95_us: 9.0,
            p99_us: 15.0,
        };
        let broken = SweepPoint {
            offered_qps: 20_000.0,
            achieved_qps: 9_000.0,
            p50_us: 500.0,
            p95_us: 2_000.0,
            p99_us: 8_000.0,
        };
        let phantom = SweepPoint {
            offered_qps: 40_000.0,
            achieved_qps: 39_000.0,
            p50_us: 5.0,
            p95_us: 9.0,
            p99_us: 15.0,
        };
        assert_eq!(
            find_knee(&[absorbed, broken, phantom], 1_000.0),
            Some(0),
            "post-break recovery is noise, not a knee"
        );
    }

    #[test]
    fn overload_stats_classify_shed_vs_served() {
        let outcomes: Vec<(f64, bool)> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    (1.0, true) // shed fast
                } else {
                    (50.0, false) // served slower
                }
            })
            .collect();
        let stats = OverloadStats::classify(&outcomes);
        assert_eq!(stats.shed, 50);
        assert_eq!(stats.served, 50);
        assert!((stats.shed_fraction() - 0.5).abs() < 1e-12);
        assert!(stats.shed_p50_us < stats.served_p50_us);
    }

    #[test]
    fn fnv_digest_is_stable() {
        let h = fnv1a_fold_f64s(FNV_OFFSET, &[1.0, 2.5, -3.75]);
        assert_eq!(h, fnv1a_fold_f64s(FNV_OFFSET, &[1.0, 2.5, -3.75]));
        assert_ne!(h, fnv1a_fold_f64s(FNV_OFFSET, &[1.0, 2.5, -3.74]));
        // NaN payloads digest by bit pattern, not comparison.
        let n = fnv1a_fold_f64s(FNV_OFFSET, &[f64::NAN]);
        assert_eq!(n, fnv1a_fold_f64s(FNV_OFFSET, &[f64::NAN]));
    }
}
