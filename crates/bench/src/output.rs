//! Experiment output: aligned tables on stdout, JSON records on disk.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple fixed-width table printer for experiment rows.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells beyond the header count are dropped; missing
    /// cells render empty).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes an experiment's JSON record to `experiments/<name>.json` under the
/// workspace root, returning the path written. A failed write is an error —
/// a bench run whose results never hit disk should fail loudly, not scroll a
/// warning past the operator.
pub fn emit_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = workspace_dir().join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::other(format!("cannot serialize {name}: {e}")))?;
    std::fs::write(&path, json)?;
    eprintln!("[results written to {}]", path.display());
    Ok(path)
}

/// Writes a small text artifact to `experiments/<name>` under the workspace
/// root, returning the path written. CI jobs diff these across runs (e.g.
/// the load-test digest across thread counts), so the content must be
/// byte-deterministic.
pub fn emit_text(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = workspace_dir().join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    eprintln!("[artifact written to {}]", path.display());
    Ok(path)
}

fn workspace_dir() -> PathBuf {
    // crates/bench -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["model", "accuracy"]);
        t.row(["persistent", "99.0"]);
        t.row(["gluon", "98.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].starts_with("-----"));
        assert!(lines[2].contains("persistent"));
        // Columns align: "accuracy" begins at the same offset everywhere.
        let col = lines[0].find("accuracy").unwrap();
        assert_eq!(&lines[2][col..col + 4], "99.0");
    }

    #[test]
    fn ragged_rows_tolerated() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3", "4"]);
        let s = t.render();
        assert!(s.contains('1'));
        assert!(!s.contains('4'), "extra cells dropped");
    }
}
