//! Figure 2 — The acceptable error bound and the strictness of Definition 2.
//!
//! Paper: a prediction that "looks close enough" to the human eye can still
//! be inaccurate — the example's bucket ratio is 75 %, below the 90 %
//! threshold. This harness reconstructs that situation: a forecast tracking
//! a daily load curve with a sustained over-shoot for a quarter of the day.

use seagull_bench::{emit_json, Table};
use seagull_core::metrics::{bucket_ratio, is_accurate, AccuracyConfig, ErrorBound};
use serde_json::json;

fn main() -> std::io::Result<()> {
    // A smooth daily load curve (the black line of Figure 2).
    let truth: Vec<f64> = (0..288)
        .map(|i| {
            let m = i as f64 * 5.0;
            25.0 + 20.0 * (2.0 * std::f64::consts::PI * (m - 300.0) / 1440.0).sin()
        })
        .collect();
    // A forecast that mostly hugs the curve but over-predicts by ~14 points
    // for a quarter of the day (the blue line leaving the shaded band).
    let predicted: Vec<f64> = truth
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            if (72..144).contains(&i) {
                t + 14.0
            } else {
                t + 3.0
            }
        })
        .collect();

    let cfg = AccuracyConfig::default();
    let ratio = bucket_ratio(&predicted, &truth, &cfg.bound).unwrap();
    let accurate = is_accurate(&predicted, &truth, &cfg);

    println!("Figure 2: acceptable error bound (+10/-5), accuracy threshold 90%\n");
    let mut t = Table::new(["quantity", "value", "paper"]);
    t.row(["bucket ratio", &format!("{ratio:.1}%"), "75%"]);
    t.row([
        "accurate (Definition 2)",
        if accurate { "yes" } else { "no" },
        "no",
    ]);
    t.print();

    // Show the asymmetry explicitly.
    let b = ErrorBound::default();
    println!("\nAsymmetry of the bound around a true load of 20%:");
    let mut t2 = Table::new(["predicted", "within bound"]);
    for p in [10.0, 14.9, 15.0, 20.0, 30.0, 30.1, 35.0] {
        t2.row([format!("{p:.1}"), format!("{}", b.contains(p, 20.0))]);
    }
    t2.print();

    emit_json(
        "fig02_error_bound",
        &json!({
            "bucket_ratio": ratio,
            "accurate": accurate,
            "paper": { "bucket_ratio": 75.0, "accurate": false },
        }),
    )?;

    assert!(
        (60.0..90.0).contains(&ratio),
        "the example must land between visually-plausible and accurate"
    );

    Ok(())
}
