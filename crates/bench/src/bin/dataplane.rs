//! Data-plane benchmark: CSV vs columnar region-week codec throughput, plus
//! an end-to-end check that both blob formats drive the pipeline to
//! semantically identical results.
//!
//! Emits `BENCH_dataplane.json` with encode/decode MB/s for both formats and
//! the fig12a-style region-week pipeline runtime on a 1k-server fleet
//! (200 servers at small scale). Exits non-zero if the two formats produce
//! different pipeline reports, prediction documents, accuracy documents, or
//! incident sets — the `dataplane-smoke` CI job relies on that.

use seagull_bench::{emit_json, fleets, scale, Scale, Table};
use seagull_core::incident::Incident;
use seagull_core::pipeline::{collections, AmlPipeline, PipelineConfig, PipelineRunReport};
use seagull_telemetry::blobstore::MemoryBlobStore;
use seagull_telemetry::columnar::ColumnarBatch;
use seagull_telemetry::extract::{parse_region_week, LoadExtraction};
use seagull_telemetry::record::RecordBatch;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Best-of-N wall time for a closure, in seconds.
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("n >= 1"))
}

fn mbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs.max(1e-12)
}

/// The semantically comparable part of a run report: everything except input
/// size and wall-clock stage durations, which legitimately differ by format.
fn semantic_report(report: &PipelineRunReport) -> Value {
    json!({
        "region": report.region,
        "week_start_day": report.week_start_day,
        "stages": report.stages.iter().map(|s| s.stage.clone()).collect::<Vec<_>>(),
        "servers": report.servers,
        "anomalies": report.anomalies,
        "blocked": report.blocked,
        "predictions_written": report.predictions_written,
        "evaluations": report.evaluations,
        "accuracy": report.accuracy,
        "deployed_version": report.deployed_version,
        "degraded": report.degraded,
    })
}

/// Runs the two-week pipeline over blobs written in `format`, returning the
/// production-week report plus every stored document and incident.
fn run_pipeline(
    extraction: LoadExtraction,
    fleet: &[seagull_telemetry::fleet::ServerTelemetry],
    region: &str,
    start: i64,
) -> (PipelineRunReport, Vec<(String, Value)>, Vec<Incident>) {
    let store = Arc::new(MemoryBlobStore::new());
    extraction
        .run(
            fleet,
            &[region.to_string()],
            &[start, start + 7],
            store.as_ref(),
        )
        .expect("extraction succeeds");
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    pipeline.run_region_week(region, start);
    let report = pipeline.run_region_week(region, start + 7);

    let mut docs = Vec::new();
    for collection in [
        collections::PREDICTIONS,
        collections::ACCURACY,
        collections::FEATURES,
        collections::DEAD_LETTER,
    ] {
        let mut ids = pipeline.docs.ids(collection);
        ids.sort();
        for id in ids {
            let value: Value = pipeline
                .docs
                .get(collection, &id)
                .expect("listed doc exists");
            docs.push((format!("{collection}/{id}"), value));
        }
    }
    (report, docs, pipeline.incidents.all())
}

fn main() -> std::io::Result<()> {
    let servers = match scale() {
        Scale::Small => 200,
        Scale::Paper => 1000,
    };
    let (fleet, spec) = fleets::region_fleet(1200, servers, 2);
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;

    // ---- Codec throughput ------------------------------------------------
    let batch = LoadExtraction::csv(5).extract_week(&fleet, &region, start);
    let rows = batch.len();
    let iters = match scale() {
        Scale::Small => 5,
        Scale::Paper => 3,
    };

    let (csv_encode_s, csv_blob) = best_of(iters, || batch.to_csv());
    let (col_encode_s, col_blob) =
        best_of(iters, || ColumnarBatch::from_records(&batch, 5).encode());

    // Decode through the same format-sniffing entry point the pipeline uses,
    // all the way to per-server series.
    let (csv_decode_s, from_csv) = best_of(iters, || parse_region_week(&csv_blob, 5).unwrap());
    let (col_decode_s, from_col) = best_of(iters, || parse_region_week(&col_blob, 5).unwrap());
    assert_eq!(
        from_csv, from_col,
        "CSV and columnar blobs must decode to identical servers"
    );
    // Raw row decode (no series reassembly), for the codec-only comparison.
    let (csv_rows_s, _) = best_of(iters, || RecordBatch::from_csv(&csv_blob).unwrap());
    let (col_raw_s, _) = best_of(iters, || ColumnarBatch::decode(&col_blob).unwrap());

    let decode_speedup = csv_decode_s / col_decode_s.max(1e-12);

    println!(
        "Data plane: {servers}-server region-week, {rows} rows, \
         csv {:.2} MB vs columnar {:.2} MB\n",
        csv_blob.len() as f64 / 1e6,
        col_blob.len() as f64 / 1e6
    );
    let mut table = Table::new(["operation", "csv MB/s", "columnar MB/s", "speedup"]);
    let speed = |csv_s: f64, col_s: f64| format!("{:.1}x", csv_s / col_s.max(1e-12));
    table.row([
        "encode".into(),
        format!("{:.1}", mbps(csv_blob.len(), csv_encode_s)),
        format!("{:.1}", mbps(col_blob.len(), col_encode_s)),
        speed(csv_encode_s, col_encode_s),
    ]);
    table.row([
        "decode to series".into(),
        format!("{:.1}", mbps(csv_blob.len(), csv_decode_s)),
        format!("{:.1}", mbps(col_blob.len(), col_decode_s)),
        speed(csv_decode_s, col_decode_s),
    ]);
    table.row([
        "decode raw".into(),
        format!("{:.1}", mbps(csv_blob.len(), csv_rows_s)),
        format!("{:.1}", mbps(col_blob.len(), col_raw_s)),
        speed(csv_rows_s, col_raw_s),
    ]);
    table.print();

    // ---- End-to-end pipeline parity -------------------------------------
    let (csv_report, csv_docs, csv_incidents) =
        run_pipeline(LoadExtraction::csv(5), &fleet, &region, start);
    let (col_report, col_docs, col_incidents) =
        run_pipeline(LoadExtraction::columnar(5), &fleet, &region, start);

    assert_eq!(
        semantic_report(&csv_report),
        semantic_report(&col_report),
        "pipeline reports must match across blob formats"
    );
    assert_eq!(
        csv_docs, col_docs,
        "stored documents must match across blob formats"
    );
    let incident_key = |incidents: &[Incident]| -> Vec<(String, String, String, String, u32)> {
        incidents
            .iter()
            .map(|i| {
                (
                    format!("{:?}", i.severity),
                    i.source.clone(),
                    i.region.clone(),
                    i.message_key.clone(),
                    i.count,
                )
            })
            .collect()
    };
    assert_eq!(
        incident_key(&csv_incidents),
        incident_key(&col_incidents),
        "incident sets must match across blob formats"
    );
    println!(
        "\nparity: {} docs, {} incidents, reports identical across formats",
        csv_docs.len(),
        csv_incidents.len()
    );
    println!(
        "columnar decode-to-series speedup: {decode_speedup:.1}x \
         (acceptance floor at paper scale: 5x)"
    );
    if matches!(scale(), Scale::Paper) {
        assert!(
            decode_speedup >= 5.0,
            "columnar decode must be >=5x faster than CSV at paper scale \
             (got {decode_speedup:.1}x)"
        );
    }

    let ms = |report: &PipelineRunReport, stage: &str| {
        report
            .stage_duration(stage)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(f64::NAN)
    };
    emit_json(
        "BENCH_dataplane",
        &json!({
            "servers": servers,
            "rows": rows,
            "csv_bytes": csv_blob.len(),
            "columnar_bytes": col_blob.len(),
            "encode_mbps": {
                "csv": mbps(csv_blob.len(), csv_encode_s),
                "columnar": mbps(col_blob.len(), col_encode_s),
            },
            "decode_to_series_mbps": {
                "csv": mbps(csv_blob.len(), csv_decode_s),
                "columnar": mbps(col_blob.len(), col_decode_s),
            },
            "decode_raw_mbps": {
                "csv": mbps(csv_blob.len(), csv_rows_s),
                "columnar": mbps(col_blob.len(), col_raw_s),
            },
            "decode_speedup": decode_speedup,
            "region_week_runtime_ms": {
                "csv": {
                    "ingestion": ms(&csv_report, "ingestion"),
                    "validation": ms(&csv_report, "validation"),
                    "total": csv_report.stages.iter()
                        .map(|s| s.duration.as_secs_f64() * 1e3).sum::<f64>(),
                },
                "columnar": {
                    "ingestion": ms(&col_report, "ingestion"),
                    "validation": ms(&col_report, "validation"),
                    "total": col_report.stages.iter()
                        .map(|s| s.duration.as_secs_f64() * 1e3).sum::<f64>(),
                },
            },
            "parity": { "docs": csv_docs.len(), "incidents": csv_incidents.len() },
        }),
    )?;

    Ok(())
}
