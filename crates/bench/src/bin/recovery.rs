//! Crash-recovery sweep: seeded kill-points at every stage and deploy
//! boundary, each followed by restart + journal replay, asserting the
//! recovered system serves predictions and backup schedules byte-identical
//! to an uninterrupted run (DESIGN.md §12).
//!
//! Three families of kill-points are swept:
//!
//! - **stage kills** — one per (pipeline stage × region) at the middle
//!   week, via [`StageChaos::kill_at`];
//! - **seeded op kills** — ≥20 seeds, each drawing a blob-store op index
//!   and a torn-write fraction from a [`DetRng`], via
//!   [`CrashPoint::at_op`] (seeds that land past the op stream complete
//!   cleanly and must still match the baseline);
//! - **deploy-boundary kills** — the nth journal / snapshot / checkpoint
//!   write, torn at varying fractions, via [`CrashPoint::on_key`].
//!
//! Besides the equality check the sweep measures the recovery path itself:
//! wall time of journal replay + snapshot republish, and replay throughput
//! from [`RecoveryReport::bytes_replayed`]. Results land in
//! `experiments/BENCH_recovery.json`; any digest mismatch panics, failing
//! the run.

use seagull_backup::{BackupScheduler, FabricPropertyStore, SchedulerConfig};
use seagull_bench::{emit_json, scale, Scale, Table};
use seagull_core::fleet::FleetRunner;
use seagull_core::pipeline::{AmlPipeline, DeploySink, PipelineConfig};
use seagull_core::resilience::{ResiliencePolicy, StageChaos};
use seagull_serve::{DurableServeSink, RecoveryReport, ServeService};
use seagull_telemetry::blobstore::{BlobStore, MemoryBlobStore};
use seagull_telemetry::chaos::{ChaosBlobStore, ChaosConfig, CrashPoint, DetRng, InjectedCrash};
use seagull_telemetry::columnar::checksum64;
use seagull_telemetry::extract::LoadExtraction;
use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use serde_json::json;
use std::fmt::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

const STAGES: [&str; 6] = [
    "ingestion",
    "validation",
    "features",
    "train-infer",
    "deployment",
    "accuracy-eval",
];

struct Env {
    fleet: Vec<ServerTelemetry>,
    regions: Vec<String>,
    weeks: Vec<i64>,
}

fn build_env(unit: usize, weeks_n: usize) -> Env {
    let spec = FleetSpec::four_regions(90, unit);
    let start = spec.start_day;
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let fleet = FleetGenerator::new(spec).generate_weeks(weeks_n);
    let weeks: Vec<i64> = (0..weeks_n as i64).map(|w| start + 7 * w).collect();
    Env {
        fleet,
        regions,
        weeks,
    }
}

/// Byte-identical recovery is defined against a single-threaded, cold-cache
/// run: persisted snapshots do not carry fitted models, so a recovered
/// process serves exactly as a cold-cache one does.
fn config() -> PipelineConfig {
    PipelineConfig {
        threads: 1,
        warm_cache: false,
        ..PipelineConfig::production()
    }
}

enum Crash {
    None,
    Stage(&'static str, String, i64),
    Blob(CrashPoint),
}

/// Digest of the externally observable serving state: per-region served
/// predictions plus one full week of served backup schedules. Epochs and
/// registry versions are excluded — they count deploy attempts, which may
/// legitimately differ after a restart.
fn digest(env: &Env, serve: &ServeService) -> u64 {
    let mut acc = String::new();
    let final_week = *env.weeks.last().unwrap();
    serve.set_clock_day(final_week + 7);
    let scheduler = BackupScheduler::new(SchedulerConfig::default());
    let fabric = FabricPropertyStore::new();
    for region in &env.regions {
        if let Some(snap) = serve.snapshot(region) {
            for id in snap.server_ids() {
                let sv = snap.server(id).unwrap();
                let _ = write!(
                    acc,
                    "{region}/{id}@{}+{}m:{:?};",
                    sv.materialized_day(),
                    sv.duration_min(),
                    sv.prediction().values(),
                );
            }
        } else {
            let _ = write!(acc, "{region}/none;");
        }
        for offset in 0..7 {
            for b in scheduler.schedule_day_served(
                &env.fleet,
                final_week + 7 + offset,
                serve,
                region,
                &fabric,
            ) {
                let _ = write!(
                    acc,
                    "B{region}/{}@{}:{}+{}:{:?};",
                    b.server_id,
                    b.backup_day,
                    b.start.minutes(),
                    b.duration_min,
                    b.decision,
                );
            }
        }
    }
    checksum64(acc.as_bytes())
}

struct RunOutcome {
    digest: u64,
    crashed: bool,
    recovery: Option<RecoveryReport>,
    recover_secs: f64,
}

fn run(env: &Env, crash: Crash) -> RunOutcome {
    let disk = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&env.fleet, &env.regions, &env.weeks, disk.as_ref())
        .unwrap();

    let chaos = Arc::new(ChaosBlobStore::new(
        Arc::clone(&disk) as Arc<dyn BlobStore>,
        ChaosConfig::default(),
    ));
    let policy = match &crash {
        Crash::Stage(stage, region, tick) => {
            let (s, r, t) = (*stage, region.clone(), *tick);
            ResiliencePolicy {
                chaos: StageChaos::kill_at(move |stage, region, tick| {
                    stage == s && region == r && tick == t
                }),
                ..ResiliencePolicy::default()
            }
        }
        _ => ResiliencePolicy::default(),
    };
    if let Crash::Blob(point) = crash {
        chaos.arm_crash(point);
    }

    let serve = ServeService::with_defaults();
    let sink = Arc::new(DurableServeSink::new(
        serve.clone(),
        Arc::clone(&chaos) as Arc<dyn BlobStore>,
    ));
    let pipeline =
        AmlPipeline::with_resilience(config(), Arc::clone(&chaos) as Arc<dyn BlobStore>, policy)
            .with_deploy_sink(Arc::clone(&sink) as Arc<dyn DeploySink>);
    let runner = FleetRunner::new(pipeline, env.regions.clone())
        .with_checkpoints(Arc::clone(&chaos) as Arc<dyn BlobStore>);

    match catch_unwind(AssertUnwindSafe(|| runner.run_schedule(&env.weeks))) {
        Ok(_) => RunOutcome {
            digest: digest(env, &serve),
            crashed: false,
            recovery: None,
            recover_secs: 0.0,
        },
        Err(payload) => {
            if payload.downcast_ref::<InjectedCrash>().is_none() {
                resume_unwind(payload);
            }
            // Restart: fresh process state over the surviving disk.
            let serve2 = ServeService::with_defaults();
            let t0 = Instant::now();
            let (sink2, report) =
                DurableServeSink::recover(serve2.clone(), Arc::clone(&disk) as Arc<dyn BlobStore>)
                    .unwrap();
            let recover_secs = t0.elapsed().as_secs_f64();
            let pipeline2 = AmlPipeline::new(config(), Arc::clone(&disk) as Arc<dyn BlobStore>)
                .with_deploy_sink(Arc::new(sink2) as Arc<dyn DeploySink>);
            let runner2 = FleetRunner::new(pipeline2, env.regions.clone())
                .with_checkpoints(Arc::clone(&disk) as Arc<dyn BlobStore>);
            runner2.run_schedule(&env.weeks);
            RunOutcome {
                digest: digest(env, &serve2),
                crashed: true,
                recovery: Some(report),
                recover_secs,
            }
        }
    }
}

#[derive(Default)]
struct Agg {
    runs: usize,
    crashed: usize,
    clean: usize,
    recover_secs: Vec<f64>,
    replay_mbps: Vec<f64>,
    journal_records: usize,
    torn_tails: usize,
    fallbacks: usize,
}

impl Agg {
    fn absorb(&mut self, out: &RunOutcome, baseline: u64, what: &str) {
        assert_eq!(
            out.digest, baseline,
            "recovered run diverged from the uninterrupted baseline ({what})"
        );
        self.runs += 1;
        if out.crashed {
            self.crashed += 1;
        } else {
            self.clean += 1;
        }
        if let Some(report) = &out.recovery {
            self.recover_secs.push(out.recover_secs);
            if out.recover_secs > 0.0 {
                self.replay_mbps
                    .push(report.bytes_replayed as f64 / 1e6 / out.recover_secs);
            }
            self.journal_records += report.journal_records;
            self.torn_tails += usize::from(report.torn_tail());
            self.fallbacks += report.snapshot_fallbacks;
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

fn main() -> std::io::Result<()> {
    let sc = scale();
    let (unit, weeks_n) = match sc {
        Scale::Small => (2, 3),
        Scale::Paper => (8, 3),
    };
    let env = build_env(unit, weeks_n);
    eprintln!(
        "[recovery sweep: {} servers, {} regions, {} weeks]",
        env.fleet.len(),
        env.regions.len(),
        env.weeks.len()
    );

    let t0 = Instant::now();
    let baseline = run(&env, Crash::None);
    let baseline_secs = t0.elapsed().as_secs_f64();
    assert!(!baseline.crashed);

    // Family 1: a kill at every (stage × region) boundary, middle week.
    let mut stage_kills = Agg::default();
    for stage in STAGES {
        for region in &env.regions {
            let out = run(&env, Crash::Stage(stage, region.clone(), env.weeks[1]));
            assert!(out.crashed, "stage kill {stage}/{region} must fire");
            stage_kills.absorb(&out, baseline.digest, &format!("{stage}/{region}"));
        }
    }

    // Family 2: 20 seeded blob-op kills; op index and torn fraction drawn
    // from the seed. Seeds whose op index lands past the run's op stream
    // finish cleanly and must still match the baseline.
    let mut seeded = Agg::default();
    for seed in 0..20u64 {
        let mut rng = DetRng::new(0xC0FFEE ^ seed);
        let at = rng.next_u64() % 64;
        let torn = rng.next_f64();
        let out = run(&env, Crash::Blob(CrashPoint::at_op(at, torn)));
        seeded.absorb(&out, baseline.digest, &format!("seed {seed} op {at}"));
    }

    // Family 3: deploy-boundary kills — the nth journal / snapshot /
    // checkpoint write, torn at 0, mid-write, and just-after-completion.
    let mut boundary = Agg::default();
    let points = [
        ("journal", 1, 0.0),
        ("journal", 2, 0.5),
        ("journal", 4, 1.0),
        ("snapshot", 1, 0.0),
        ("snapshot", 3, 0.33),
        ("snapshot", 5, 1.0),
        // Checkpoint ops 1-4 are the week's existence probes (gets); the
        // marker writes follow. nth 5 tears the first week-one marker,
        // nth 14 tears a week-two marker mid-write.
        ("checkpoint", 5, 0.5),
        ("checkpoint", 14, 0.9),
    ];
    for (fragment, nth, torn) in points {
        let out = run(&env, Crash::Blob(CrashPoint::on_key(fragment, nth, torn)));
        assert!(out.crashed, "boundary kill {fragment}#{nth} must fire");
        boundary.absorb(&out, baseline.digest, &format!("{fragment}#{nth}"));
    }

    let mut table = Table::new([
        "family",
        "runs",
        "crashed",
        "clean",
        "recover ms (mean/max)",
        "replay MB/s",
    ]);
    for (name, agg) in [
        ("stage-kills", &stage_kills),
        ("seeded-ops", &seeded),
        ("deploy-boundary", &boundary),
    ] {
        table.row([
            name.to_string(),
            agg.runs.to_string(),
            agg.crashed.to_string(),
            agg.clean.to_string(),
            format!(
                "{:.2} / {:.2}",
                mean(&agg.recover_secs) * 1e3,
                max(&agg.recover_secs) * 1e3
            ),
            format!("{:.1}", mean(&agg.replay_mbps)),
        ]);
    }
    table.print();
    let total_runs = 1 + stage_kills.runs + seeded.runs + boundary.runs;
    println!(
        "\n{} runs, {} crashed+recovered, {} clean — all byte-identical to the baseline",
        total_runs,
        stage_kills.crashed + seeded.crashed + boundary.crashed,
        1 + stage_kills.clean + seeded.clean + boundary.clean,
    );

    let family_json = |agg: &Agg| {
        json!({
            "runs": agg.runs,
            "crashed": agg.crashed,
            "clean": agg.clean,
            "recover_ms_mean": mean(&agg.recover_secs) * 1e3,
            "recover_ms_max": max(&agg.recover_secs) * 1e3,
            "replay_mb_per_s_mean": mean(&agg.replay_mbps),
            "journal_records_replayed": agg.journal_records,
            "torn_tails_truncated": agg.torn_tails,
            "snapshot_fallbacks": agg.fallbacks,
        })
    };
    emit_json(
        "BENCH_recovery",
        &json!({
            "scale": format!("{sc:?}"),
            "servers": env.fleet.len(),
            "regions": env.regions.len(),
            "weeks": env.weeks.len(),
            "baseline_secs": baseline_secs,
            "total_runs": total_runs,
            "digest": format!("{:016x}", baseline.digest),
            "byte_identical": true,
            "stage_kills": family_json(&stage_kills),
            "seeded_ops": family_json(&seeded),
            "deploy_boundary": family_json(&boundary),
        }),
    )?;
    Ok(())
}
