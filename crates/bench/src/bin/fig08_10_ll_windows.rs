//! Figures 8–10 — The two low-load metrics are orthogonal.
//!
//! * Fig. 8: non-overlapping true/predicted LL windows can still be a
//!   *correct* choice when the true load in the predicted window is only
//!   slightly above the true minimum.
//! * Fig. 9: accurately predicted in-window load (92 % bucket ratio) with an
//!   *incorrectly* chosen window.
//! * Fig. 10: coinciding windows (correct choice) with *inaccurate* load
//!   (50 % bucket ratio).

use seagull_bench::{emit_json, Table};
use seagull_core::metrics::{evaluate_low_load, AccuracyConfig};
use seagull_timeseries::{TimeSeries, Timestamp};
use serde_json::json;

fn day(values: Vec<f64>) -> TimeSeries {
    assert_eq!(values.len(), 288);
    TimeSeries::new(Timestamp::from_days(18_000), 5, values).unwrap()
}

/// A daily curve with a valley of the given depth at `[lo, hi)` (5-min
/// indices), base level elsewhere.
fn curve(base: f64, valley: (usize, usize), depth: f64) -> Vec<f64> {
    (0..288)
        .map(|i| {
            if i >= valley.0 && i < valley.1 {
                base - depth
            } else {
                base
            }
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    let cfg = AccuracyConfig::default();
    let duration = 120; // 2-hour backup, 24 grid points

    // Figure 8: true valley early morning, predicted valley late evening,
    // but the evening's true load is only 4 points above the true minimum.
    let truth8 = day(curve(30.0, (24, 60), 25.0)
        .iter()
        .enumerate()
        .map(|(i, &v)| if (240..280).contains(&i) { 9.0 } else { v })
        .collect());
    let pred8 = day(curve(30.0, (240, 280), 24.0));
    let e8 = evaluate_low_load(&truth8, &pred8, duration, &cfg).unwrap();

    // Figure 9: prediction matches the true load closely everywhere except
    // it misses a much deeper valley elsewhere.
    let truth9 = day({
        let mut v = curve(40.0, (60, 100), 12.0); // predicted region: load 28
        for x in v.iter_mut().take(40).skip(10) {
            *x = 2.0; // the real valley the model missed
        }
        v
    });
    let pred9 = day(curve(40.0, (60, 100), 14.0)); // predicts 26 in its valley
    let e9 = evaluate_low_load(&truth9, &pred9, duration, &cfg).unwrap();

    // Figure 10: windows coincide but the true load is 20+ points above the
    // prediction inside the window.
    let truth10 = day(curve(60.0, (120, 160), 25.0)); // true valley at 35
    let pred10 = day(curve(60.0, (120, 160), 48.0)); // predicted valley at 12
    let e10 = evaluate_low_load(&truth10, &pred10, duration, &cfg).unwrap();

    println!("Figures 8-10: orthogonality of window choice and load accuracy\n");
    let mut t = Table::new([
        "figure",
        "windows overlap",
        "window correct",
        "in-window bucket ratio",
        "load accurate",
        "paper",
    ]);
    let overlap = |e: &seagull_core::metrics::LowLoadEvaluation| {
        e.predicted_window.start < e.true_window.end()
            && e.true_window.start < e.predicted_window.end()
    };
    t.row([
        "8".to_string(),
        format!("{}", overlap(&e8)),
        format!("{}", e8.window_correct),
        format!("{:.0}%", e8.window_bucket_ratio),
        format!("{}", e8.load_accurate),
        "correct despite no overlap".to_string(),
    ]);
    t.row([
        "9".to_string(),
        format!("{}", overlap(&e9)),
        format!("{}", e9.window_correct),
        format!("{:.0}%", e9.window_bucket_ratio),
        format!("{}", e9.load_accurate),
        "accurate load (92%), wrong window".to_string(),
    ]);
    t.row([
        "10".to_string(),
        format!("{}", overlap(&e10)),
        format!("{}", e10.window_correct),
        format!("{:.0}%", e10.window_bucket_ratio),
        format!("{}", e10.load_accurate),
        "correct window, inaccurate load (50%)".to_string(),
    ]);
    t.print();

    emit_json(
        "fig08_10_ll_windows",
        &json!({
            "fig8": { "window_correct": e8.window_correct, "overlap": overlap(&e8) },
            "fig9": { "window_correct": e9.window_correct, "load_accurate": e9.load_accurate },
            "fig10": { "window_correct": e10.window_correct, "load_accurate": e10.load_accurate },
        }),
    )?;

    assert!(e8.window_correct && !overlap(&e8), "fig 8 shape");
    assert!(!e9.window_correct && e9.load_accurate, "fig 9 shape");
    assert!(e10.window_correct && !e10.load_accurate, "fig 10 shape");

    Ok(())
}
