//! Figures 4–7 — One representative server per class, with the bucket
//! ratios the paper quotes.
//!
//! * Fig. 4: a stable server — weekly average predicts it (paper: 99 %).
//! * Fig. 5: a daily-pattern server — previous day predicts it (paper: 95 %).
//! * Fig. 6: a weekly-pattern server — previous equivalent day > 90 %, but
//!   previous day only 1 %.
//! * Fig. 7: a server with no pattern — previous day 20 %, previous
//!   equivalent day 72 %; neither passes.

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::metrics::{bucket_ratio, ErrorBound};
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_telemetry::server::GeneratedClass;
use serde_json::json;

/// Bucket ratio of predicting `day` by the day `lag_days` earlier.
fn lag_ratio(server: &ServerTelemetry, day: i64, lag_days: i64, bound: &ErrorBound) -> Option<f64> {
    let today = server.series.day_values(day)?;
    let earlier = server.series.day_values(day - lag_days)?;
    bucket_ratio(earlier, today, bound)
}

/// Bucket ratio of predicting a week by its own average (stability check).
fn avg_ratio(server: &ServerTelemetry, bound: &ErrorBound) -> Option<f64> {
    let vals = server.series.values();
    let mean = seagull_timeseries::mean(vals);
    let constant = vec![mean; vals.len()];
    bucket_ratio(&constant, vals, bound)
}

fn main() -> std::io::Result<()> {
    let (fleet, spec) = fleets::classification_fleet(42);
    let bound = ErrorBound::default();
    // Pick the first long-lived exemplar of each class; evaluate on the
    // second Sunday-ish day of the window so a previous equivalent day exists.
    let day = spec.start_day + 10;
    let pick = |class: GeneratedClass| {
        fleet
            .iter()
            .find(|s| s.meta.class == class && s.meta.deleted_day.is_none())
            .unwrap_or_else(|| panic!("no {class:?} exemplar in fleet"))
    };

    let stable = pick(GeneratedClass::Stable);
    let daily = pick(GeneratedClass::DailyPattern);
    let weekly = pick(GeneratedClass::WeeklyPattern);
    let unstable = pick(GeneratedClass::Unstable);

    println!("Figures 4-7: per-class exemplars, bucket ratios under +10/-5\n");
    let mut t = Table::new([
        "figure",
        "server class",
        "predictor",
        "bucket ratio",
        "paper",
    ]);
    let stable_avg = avg_ratio(stable, &bound).unwrap();
    t.row([
        "4".into(),
        "stable".into(),
        "week average".into(),
        format!("{stable_avg:.1}%"),
        "99%".to_string(),
    ]);
    let daily_prev = lag_ratio(daily, day, 1, &bound).unwrap();
    t.row([
        "5".into(),
        "daily pattern".into(),
        "previous day".into(),
        format!("{daily_prev:.1}%"),
        "95%".to_string(),
    ]);
    let weekly_eq = lag_ratio(weekly, day, 7, &bound).unwrap();
    let weekly_prev = lag_ratio(weekly, day, 1, &bound).unwrap();
    t.row([
        "6".into(),
        "weekly pattern".into(),
        "previous equivalent day".into(),
        format!("{weekly_eq:.1}%"),
        ">90%".to_string(),
    ]);
    t.row([
        "6".into(),
        "weekly pattern".into(),
        "previous day (boundary)".into(),
        format!("{weekly_prev:.1}%"),
        "1%".to_string(),
    ]);
    let unstable_prev = lag_ratio(unstable, day, 1, &bound).unwrap();
    let unstable_eq = lag_ratio(unstable, day, 7, &bound).unwrap();
    t.row([
        "7".into(),
        "no pattern".into(),
        "previous day".into(),
        format!("{unstable_prev:.1}%"),
        "20%".to_string(),
    ]);
    t.row([
        "7".into(),
        "no pattern".into(),
        "previous equivalent day".into(),
        format!("{unstable_eq:.1}%"),
        "72%".to_string(),
    ]);
    t.print();

    // For the weekly server, find a day where the weekday/weekend boundary
    // breaks the daily predictor (the paper's Sunday example).
    let mut boundary_prev = weekly_prev;
    let mut boundary_eq = weekly_eq;
    for d in spec.start_day + 7..spec.start_day + 21 {
        if let (Some(p), Some(e)) = (
            lag_ratio(weekly, d, 1, &bound),
            lag_ratio(weekly, d, 7, &bound),
        ) {
            if p < boundary_prev {
                boundary_prev = p;
                boundary_eq = e;
            }
        }
    }
    println!(
        "\nweekly-pattern server, worst weekday-boundary day: prev-day {boundary_prev:.1}% \
         vs prev-equivalent-day {boundary_eq:.1}% (paper: 1% vs >90%)"
    );

    emit_json(
        "fig04_07_patterns",
        &json!({
            "stable_week_avg": stable_avg,
            "daily_prev_day": daily_prev,
            "weekly_prev_eq_day": weekly_eq,
            "weekly_prev_day_boundary": boundary_prev,
            "weekly_prev_eq_day_boundary": boundary_eq,
            "unstable_prev_day": unstable_prev,
            "unstable_prev_eq_day": unstable_eq,
        }),
    )?;

    assert!(stable_avg >= 90.0, "stable exemplar must be stable");
    assert!(daily_prev >= 90.0, "daily exemplar must repeat daily");
    assert!(
        boundary_eq >= 90.0 && boundary_prev < 90.0,
        "weekly exemplar shape"
    );

    Ok(())
}
