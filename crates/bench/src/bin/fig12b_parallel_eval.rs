//! Figure 12(b) — Accuracy Evaluation: single-threaded vs parallel (the
//! Dask substitute).
//!
//! Paper: for backup-day-only evaluation, single-threaded wins on tiny
//! inputs, the parallel version wins past ~400 MB and is 26 % faster at
//! 2.5 GB; for the one-week-ahead evaluation (seven days per server), the
//! parallel version is consistently 3–4.6× faster. The crossover and the
//! speedup band are the reproduction targets.

use seagull_bench::{emit_json, fleets, scale, Scale, Table};
use seagull_core::evaluate::{evaluate_fleet_week, evaluate_fleet_week_all_days, EvaluationConfig};
use seagull_core::par::default_threads;
use seagull_forecast::PersistentForecast;
use serde_json::json;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let sizes: &[usize] = match scale() {
        Scale::Small => &[20, 80, 240, 800],
        Scale::Paper => &[50, 400, 1600, 6400],
    };
    // SEAGULL_THREADS overrides the worker count (the container running the
    // reproduction may expose a single core, where no speedup can manifest;
    // results on such hosts verify parity, not speedup).
    let threads = std::env::var("SEAGULL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| default_threads().max(4));
    let cores = default_threads();
    let cfg = EvaluationConfig::default();
    let model = PersistentForecast::previous_day();

    println!(
        "Figure 12(b): accuracy evaluation, single-threaded vs {threads} workers \
         ({cores} core(s) available)\n"
    );
    if cores == 1 {
        println!(
            "NOTE: single-core host — the parallel path is exercised for \
             correctness parity but cannot run faster than serial here.\n"
        );
    }
    let mut table = Table::new([
        "servers",
        "backup-day serial (ms)",
        "backup-day parallel (ms)",
        "speedup",
        "7-day serial (ms)",
        "7-day parallel (ms)",
        "speedup",
    ]);
    let mut records = Vec::new();
    for (i, &servers) in sizes.iter().enumerate() {
        let (fleet, spec) = fleets::region_fleet(900 + i as u64, servers, 3);
        let week = spec.start_day + 14;

        let time = |f: &dyn Fn() -> usize| {
            let t = Instant::now();
            let n = f();
            (t.elapsed().as_secs_f64() * 1e3, n)
        };
        let (bd_serial, n1) = time(&|| evaluate_fleet_week(&fleet, week, &model, &cfg, 1).len());
        let (bd_par, n2) = time(&|| evaluate_fleet_week(&fleet, week, &model, &cfg, threads).len());
        assert_eq!(n1, n2);
        let (wk_serial, _) =
            time(&|| evaluate_fleet_week_all_days(&fleet, week, &model, &cfg, 1).len());
        let (wk_par, _) =
            time(&|| evaluate_fleet_week_all_days(&fleet, week, &model, &cfg, threads).len());

        table.row([
            servers.to_string(),
            format!("{bd_serial:.1}"),
            format!("{bd_par:.1}"),
            format!("{:.2}x", bd_serial / bd_par),
            format!("{wk_serial:.1}"),
            format!("{wk_par:.1}"),
            format!("{:.2}x", wk_serial / wk_par),
        ]);
        records.push(json!({
            "servers": servers,
            "backup_day": { "serial_ms": bd_serial, "parallel_ms": bd_par },
            "week_ahead": { "serial_ms": wk_serial, "parallel_ms": wk_par },
        }));
        eprintln!("[{servers} servers done]");
    }
    table.print();
    println!(
        "\npaper shape: parallel loses on the smallest input, wins past the \
         crossover; 7-day evaluation sees 3-4.6x"
    );

    emit_json(
        "fig12b_parallel_eval",
        &json!({ "threads": threads, "rows": records }),
    )?;

    Ok(())
}
