//! Figure 11(b)–(d) — Low-load prediction accuracy per model per region,
//! on unstable servers.
//!
//! Paper: NimbusML chooses the most LL windows correctly; persistent
//! forecast, NimbusML, and GluonTS are comparable on in-window accuracy and
//! predictability; Prophet is similar or lower. The surprise the paper
//! deploys on: "the accuracy of ML models is not significantly higher than
//! the accuracy of persistent forecast."

use seagull_bench::{emit_json, fleets, scale, Scale, Table};
use seagull_core::evaluate::{
    evaluate_fleet_week, predictability_fleet, predictable_pct, AccuracySummary, EvaluationConfig,
};
use seagull_core::par::default_threads;
use seagull_forecast::additive::FitMethod;
use seagull_forecast::{
    AdditiveConfig, AdditiveForecaster, FeedForwardForecaster, Forecaster, PersistentForecast,
    SsaForecaster,
};
use serde_json::json;

fn main() -> std::io::Result<()> {
    let per_region = match scale() {
        Scale::Small => 40,
        Scale::Paper => 200,
    };
    let threads = default_threads();
    let cfg = EvaluationConfig::default();

    let persistent = PersistentForecast::previous_day();
    let ssa = SsaForecaster::default();
    let ff = FeedForwardForecaster::default();
    // Exact additive fit: accuracy is the question here, runtime was 11(a).
    let additive = AdditiveForecaster::new(AdditiveConfig {
        fit: FitMethod::Exact,
        ..AdditiveConfig::default()
    });
    let models: Vec<(&str, &dyn Forecaster)> = vec![
        ("PF", &persistent),
        ("N", &ssa),
        ("G", &ff),
        ("P", &additive),
    ];
    let regions = ["region-1", "region-2", "region-3", "region-4"];

    println!(
        "Figure 11(b-d): accuracy per model per region ({per_region} unstable servers/region)\n"
    );
    let mut table = Table::new([
        "region",
        "model",
        "LL windows correct %",
        "in-window load accurate %",
        "predictable servers %",
    ]);
    let mut records = Vec::new();
    for (ri, region) in regions.iter().enumerate() {
        // Four weeks of history so the three-week gate can run.
        let (fleet, start) = fleets::unstable_pool(1000 + ri as u64, per_region, 4);
        for (name, model) in &models {
            let evals = evaluate_fleet_week(&fleet, start + 21, *model, &cfg, threads);
            let summary = AccuracySummary::from_evaluations(&evals);
            let preds = predictability_fleet(&fleet, start + 28, *model, &cfg, threads);
            let ppct = predictable_pct(&preds);
            table.row([
                region.to_string(),
                name.to_string(),
                format!("{:.1}", summary.window_correct_pct),
                format!("{:.1}", summary.load_accurate_pct),
                format!("{ppct:.1}"),
            ]);
            records.push(json!({
                "region": region, "model": name,
                "window_correct_pct": summary.window_correct_pct,
                "load_accurate_pct": summary.load_accurate_pct,
                "predictable_pct": ppct,
                "evaluated": summary.evaluated,
            }));
            eprintln!("[{region}/{name} done]");
        }
    }
    table.print();
    println!(
        "\npaper: PF/N/G comparable, P similar or lower; ML not significantly \
         better than persistent forecast -> persistent forecast deployed"
    );

    emit_json("fig11bcd_model_accuracy", &json!({ "rows": records }))?;

    Ok(())
}
