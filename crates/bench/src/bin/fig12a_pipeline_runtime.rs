//! Figure 12(a) — Runtime of the use-case-agnostic pipeline components per
//! region size.
//!
//! Paper: "Model Deployment takes about one minute independently from
//! deployed model and input data size. In contrast, runtime of other
//! components increases linearly with growing input size. When input size
//! exceeds 1 GB, Accuracy Evaluation becomes a bottleneck." Region input
//! sizes span orders of magnitude; the reproduction keeps the spread, scaled
//! down.

use seagull_bench::{emit_json, fleets, scale, Scale, Table};
use seagull_core::pipeline::{AmlPipeline, PipelineConfig};
use seagull_telemetry::blobstore::MemoryBlobStore;
use seagull_telemetry::extract::LoadExtraction;
use serde_json::json;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // Four regions of very different sizes (the paper's "hundreds of
    // kilobytes to a few gigabytes").
    let sizes: &[usize] = match scale() {
        Scale::Small => &[20, 80, 240, 800],
        Scale::Paper => &[50, 400, 1600, 6400],
    };

    println!("Figure 12(a): per-stage pipeline runtime vs region size\n");
    let mut table = Table::new([
        "region size (servers)",
        "input (MB)",
        "ingestion (ms)",
        "validation (ms)",
        "features (ms)",
        "train-infer (ms)",
        "deployment (ms)",
        "accuracy-eval (ms)",
    ]);
    let mut records = Vec::new();
    for (i, &servers) in sizes.iter().enumerate() {
        let (fleet, spec) = fleets::region_fleet(500 + i as u64, servers, 2);
        let start = spec.start_day;
        let store = Arc::new(MemoryBlobStore::new());
        LoadExtraction::default()
            .run(
                &fleet,
                &[spec.regions[0].name.clone()],
                &[start, start + 7],
                store.as_ref(),
            )
            .expect("extraction succeeds");
        let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
        // Week 1 seeds predictions; week 2 is the measured production run
        // (it includes a real accuracy-evaluation stage).
        pipeline.run_region_week(&spec.regions[0].name, start);
        let report = pipeline.run_region_week(&spec.regions[0].name, start + 7);

        let ms = |stage: &str| {
            report
                .stage_duration(stage)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN)
        };
        table.row([
            servers.to_string(),
            format!("{:.2}", report.input_bytes as f64 / 1e6),
            format!("{:.1}", ms("ingestion")),
            format!("{:.1}", ms("validation")),
            format!("{:.1}", ms("features")),
            format!("{:.1}", ms("train-infer")),
            format!("{:.2}", ms("deployment")),
            format!("{:.1}", ms("accuracy-eval")),
        ]);
        records.push(json!({
            "servers": servers,
            "input_bytes": report.input_bytes,
            "stages": report.stages.iter().map(|s| json!({
                "stage": s.stage, "ms": s.duration.as_secs_f64() * 1e3
            })).collect::<Vec<_>>(),
        }));
        eprintln!("[region of {servers} servers done]");
    }
    table.print();
    println!(
        "\npaper shape: deployment flat; ingestion/validation/features/accuracy \
         grow linearly with input size"
    );

    emit_json("fig12a_pipeline_runtime", &json!({ "rows": records }))?;

    Ok(())
}
