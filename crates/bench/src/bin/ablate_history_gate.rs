//! Ablation — the three-week predictability gate (Definition 9).
//!
//! DESIGN.md §5. The paper: "Three weeks of history is a compromise between
//! prediction confidence and relevance of this rule to the majority of
//! servers (58 % of servers survive beyond three weeks)." This ablation
//! sweeps the gate length and reports (a) how many servers pass and (b) how
//! often servers that pass then get a wrong window — the confidence/coverage
//! trade-off.

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::evaluate::{evaluate_backup_day, predictability_fleet, EvaluationConfig};
use seagull_core::par::default_threads;
use seagull_forecast::PersistentForecast;
use serde_json::json;

fn main() -> std::io::Result<()> {
    let (_, spec) = fleets::classification_fleet(42);
    // Five-week window: gates up to 4 weeks fit before the final week.
    let fleet: Vec<_> = {
        use seagull_telemetry::fleet::FleetGenerator;
        let spec5 = spec.clone();
        FleetGenerator::new(spec5).generate_weeks(5)
    };
    let start = spec.start_day;
    let model = PersistentForecast::previous_day();
    let threads = default_threads();
    let final_week = start + 28;

    println!("Ablation: predictability-gate length (Definition 9)\n");
    let mut t = Table::new([
        "gate weeks",
        "servers passing gate %",
        "wrong window after passing %",
        "inaccurate load after passing %",
    ]);
    let mut records = Vec::new();
    for weeks in 1..=4usize {
        let cfg = EvaluationConfig {
            predictability_weeks: weeks,
            ..EvaluationConfig::default()
        };
        let verdicts = predictability_fleet(&fleet, final_week, &model, &cfg, threads);
        let passing: Vec<u64> = verdicts
            .iter()
            .filter(|v| v.predictable)
            .map(|v| v.server_id)
            .collect();
        let pass_pct = 100.0 * passing.len() as f64 / fleet.len() as f64;

        // Outcome in the held-out final week for servers that passed.
        let mut wrong_window = 0usize;
        let mut inaccurate = 0usize;
        let mut evaluated = 0usize;
        for server in fleet.iter().filter(|s| passing.contains(&s.meta.id.0)) {
            let day = seagull_core::evaluate::backup_day_in_week(server, final_week);
            if let Some(e) = evaluate_backup_day(server, day, &model, &cfg) {
                evaluated += 1;
                if !e.window_correct {
                    wrong_window += 1;
                }
                if !e.load_accurate {
                    inaccurate += 1;
                }
            }
        }
        let pct = |n: usize| {
            if evaluated == 0 {
                0.0
            } else {
                100.0 * n as f64 / evaluated as f64
            }
        };
        t.row([
            weeks.to_string(),
            format!("{pass_pct:.2}"),
            format!("{:.2}", pct(wrong_window)),
            format!("{:.2}", pct(inaccurate)),
        ]);
        records.push(json!({
            "gate_weeks": weeks,
            "pass_pct": pass_pct,
            "wrong_window_pct": pct(wrong_window),
            "inaccurate_pct": pct(inaccurate),
            "evaluated": evaluated,
        }));
        eprintln!("[gate {weeks}w done]");
    }
    t.print();
    println!(
        "\nreading: longer gates admit fewer servers but the admitted ones \
         misfire less — three weeks sits where extra weeks stop buying \
         meaningful error reduction (the paper's compromise)"
    );

    emit_json("ablate_history_gate", &json!({ "rows": records }))?;

    Ok(())
}
