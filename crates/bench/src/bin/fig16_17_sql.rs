//! Figures 16 & 17 — Appendix A: SQL database load prediction.
//!
//! 24-hour-ahead CPU forecasts on 15-minute telemetry, compared across
//! persistent forecast (previous day), a neural network (our GluonTS
//! feed-forward substitute), and auto-ARIMA; accuracy by Mean NRMSE and MASE
//! (Figure 16) and training/inference/accuracy-evaluation runtime
//! (Figure 17). Paper conclusion: "for SQL databases persistent forecast
//! also finds the middle ground between accuracy and computational
//! overhead."

use seagull_autoscale::{evaluate_models, sql_fleet_spec};
use seagull_bench::{emit_json, scale, Scale, Table};
use seagull_core::par::default_threads;
use seagull_forecast::{
    ArimaConfig, ArimaForecaster, FeedForwardConfig, FeedForwardForecaster, Forecaster,
    PersistentForecast,
};
use seagull_telemetry::fleet::FleetGenerator;
use serde_json::json;

fn main() -> std::io::Result<()> {
    let (databases, arima_databases) = match scale() {
        Scale::Small => (60, 8),
        Scale::Paper => (600, 30),
    };
    let spec = sql_fleet_spec(33, databases);
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(2);
    let target_day = start + 8;
    let threads = default_threads();

    let pf = PersistentForecast::previous_day();
    let nn = FeedForwardForecaster::new(FeedForwardConfig {
        context_len: 96, // one day at 15-minute granularity
        prediction_len: 96,
        ..FeedForwardConfig::default()
    });
    // ARIMA with the seasonal grid at the SQL period (96/day). As on the
    // paper's HDI cluster, it runs on a reduced sample because of its cost.
    let arima = ArimaForecaster::new(ArimaConfig {
        period: 96,
        ..ArimaConfig::default()
    });

    let fast_models: Vec<(&str, &dyn Forecaster)> =
        vec![("persistent-prev-day", &pf), ("neural-net (gluon-ff)", &nn)];
    let mut rows = evaluate_models(&fleet, &fast_models, target_day, 7, threads);
    let arima_rows = evaluate_models(
        &fleet[..arima_databases.min(fleet.len())],
        &[("arima (sampled)", &arima)],
        target_day,
        7,
        threads,
    );
    rows.extend(arima_rows);

    println!(
        "Figures 16-17: SQL auto-scale model comparison ({databases} databases, \
         15-min grid, 24h horizon)\n"
    );
    let mut t = Table::new([
        "model",
        "forecasts",
        "Mean NRMSE",
        "MASE",
        "train (s)",
        "infer (s)",
        "eval (s)",
    ]);
    for r in &rows {
        t.row([
            r.model.clone(),
            r.forecasts.to_string(),
            format!("{:.3}", r.mean_nrmse),
            format!("{:.3}", r.mase),
            format!("{:.3}", r.train_time.as_secs_f64()),
            format!("{:.3}", r.infer_time.as_secs_f64()),
            format!("{:.3}", r.eval_time.as_secs_f64()),
        ]);
    }
    t.print();
    println!(
        "\npaper shape: persistent forecast competitive on both error metrics at \
         near-zero training cost; ARIMA training cost not comparable to the others"
    );

    emit_json("fig16_17_sql", &json!({ "rows": rows }))?;

    // Shape assertions (per-database training cost ordering).
    let per_db = |m: &str| {
        rows.iter()
            .find(|r| r.model.starts_with(m))
            .map(|r| r.train_time.as_secs_f64() / r.forecasts.max(1) as f64)
            .unwrap_or(f64::NAN)
    };
    assert!(per_db("persistent-prev-day") < per_db("neural-net"));
    assert!(per_db("neural-net") < per_db("arima"));

    Ok(())
}
