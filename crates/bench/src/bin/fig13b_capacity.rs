//! Figure 13(b) — Percentage of servers per maximal CPU load.
//!
//! Paper: "Only 3.7 % of servers reach their CPU capacity per week, i.e.,
//! for 96.3 % of servers resources could be saved." This motivates the
//! auto-scale follow-up (Appendix A).

use seagull_backup::capacity_histogram;
use seagull_bench::{emit_json, fleets, Table};

fn main() -> std::io::Result<()> {
    let (fleet, _) = fleets::classification_fleet(42);
    let hist = capacity_histogram(&fleet, 10.0, 97.0);

    println!(
        "Figure 13(b): servers per maximal weekly CPU load ({} servers)\n",
        hist.servers
    );
    let mut t = Table::new(["max CPU bucket", "% of servers"]);
    for (i, pct) in hist.buckets.iter().enumerate() {
        let lo = i as f64 * hist.bucket_width;
        let hi = lo + hist.bucket_width;
        t.row([format!("{lo:>3.0}-{hi:<3.0}%"), format!("{pct:.2}")]);
    }
    t.print();
    println!(
        "\nreaching capacity (>= {:.0}%): {:.2}% of servers [paper: 3.7%]",
        hist.capacity_threshold, hist.reaching_capacity_pct
    );
    println!(
        "headroom exists on {:.2}% of servers [paper: 96.3%]",
        100.0 - hist.reaching_capacity_pct
    );

    emit_json("fig13b_capacity", &hist)?;

    assert!(
        hist.reaching_capacity_pct < 15.0,
        "capacity-reaching share should be a small minority"
    );

    Ok(())
}
