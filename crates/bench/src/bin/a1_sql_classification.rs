//! Appendix A.1 — Classification of SQL databases.
//!
//! Paper: "We analyzed a random sample of several thousands of single
//! standard and premium SQL databases during one month in 2019 and concluded
//! that 19.36 % of them are stable" (Definition 10).

use seagull_autoscale::{classify_sql_fleet, sql_fleet_spec, StableDbConfig};
use seagull_bench::{emit_json, scale, Scale, Table};
use seagull_telemetry::fleet::FleetGenerator;
use serde_json::json;

fn main() -> std::io::Result<()> {
    let databases = match scale() {
        Scale::Small => 2000,
        Scale::Paper => 8000,
    };
    let spec = sql_fleet_spec(77, databases);
    let fleet = FleetGenerator::new(spec).generate_weeks(4);
    let report = classify_sql_fleet(&fleet, &StableDbConfig::default());

    println!("Appendix A.1: SQL database classification (Definition 10)\n");
    let mut t = Table::new(["class", "measured %", "paper %"]);
    t.row([
        "stable".to_string(),
        format!("{:.2}", report.stable_pct()),
        "19.36".to_string(),
    ]);
    t.row([
        "unstable".to_string(),
        format!("{:.2}", 100.0 - report.stable_pct()),
        "80.64".to_string(),
    ]);
    t.print();
    println!("\ndatabases analyzed: {}", report.databases);

    emit_json(
        "a1_sql_classification",
        &json!({
            "databases": report.databases,
            "stable_pct": report.stable_pct(),
            "paper": { "stable_pct": 19.36 },
        }),
    )?;

    Ok(())
}
