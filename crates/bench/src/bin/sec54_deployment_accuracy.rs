//! Section 5.4 — The deployed model, fleet-wide.
//!
//! Paper: persistent forecast (previous day) deployed for *all* long-lived
//! servers "correctly selected 99 % of low load windows, accurately predicted
//! the load during 96 % of all windows, and classified 75 % of long-lived
//! servers as predictable."

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::evaluate::{
    evaluate_fleet_week, predictability_fleet, predictable_pct, AccuracySummary, EvaluationConfig,
};
use seagull_forecast::PersistentForecast;
use serde_json::json;

fn main() -> std::io::Result<()> {
    let (fleet, spec) = fleets::classification_fleet(42);
    let start = spec.start_day;
    let cfg = EvaluationConfig::default();
    let model = PersistentForecast::previous_day();

    // The whole long-lived fleet (Definition 3), including unstable servers.
    let long_lived: Vec<_> = fleet
        .iter()
        .filter(|s| s.meta.is_long_lived(start + 28))
        .cloned()
        .collect();

    let evals = evaluate_fleet_week(&long_lived, start + 21, &model, &cfg, 4);
    let summary = AccuracySummary::from_evaluations(&evals);
    let preds = predictability_fleet(&long_lived, start + 28, &model, &cfg, 4);
    let pred_pct = predictable_pct(&preds);

    println!(
        "Section 5.4: deployed persistent forecast on all {} long-lived servers\n",
        long_lived.len()
    );
    let mut t = Table::new(["metric", "measured", "paper"]);
    t.row([
        "LL windows chosen correctly".to_string(),
        format!("{:.2}%", summary.window_correct_pct),
        "99%".to_string(),
    ]);
    t.row([
        "LL-window load predicted accurately".to_string(),
        format!("{:.2}%", summary.load_accurate_pct),
        "96%".to_string(),
    ]);
    t.row([
        "long-lived servers predictable".to_string(),
        format!("{pred_pct:.2}%"),
        "75%".to_string(),
    ]);
    t.print();

    emit_json(
        "sec54_deployment_accuracy",
        &json!({
            "servers": long_lived.len(),
            "window_correct_pct": summary.window_correct_pct,
            "load_accurate_pct": summary.load_accurate_pct,
            "predictable_pct": pred_pct,
            "paper": { "window_correct_pct": 99.0, "load_accurate_pct": 96.0,
                       "predictable_pct": 75.0 },
        }),
    )?;

    Ok(())
}
