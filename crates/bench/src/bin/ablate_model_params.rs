//! Ablation — model hyperparameters (DESIGN.md §5).
//!
//! Sweeps the structural knobs of the three ML substitutes on a fixed pool
//! of unstable servers: SSA window length and rank cap, feed-forward hidden
//! width, and the additive model's changepoint count. Reported per
//! configuration: the two low-load metrics plus total fit time — the
//! accuracy/scalability trade-off Section 2.1 says governs model choice.

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::evaluate::{evaluate_fleet_week, AccuracySummary, EvaluationConfig};
use seagull_forecast::additive::FitMethod;
use seagull_forecast::{
    AdditiveConfig, AdditiveForecaster, FeedForwardConfig, FeedForwardForecaster, Forecaster,
    SsaConfig, SsaForecaster, SsaKernel,
};
use serde_json::json;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let (fleet, start) = fleets::unstable_pool(71, 40, 4);
    let cfg = EvaluationConfig::default();
    let week = start + 21;

    let mut table = Table::new([
        "model",
        "config",
        "LL windows correct %",
        "in-window load accurate %",
        "eval time (s)",
    ]);
    let mut records = Vec::new();
    let mut run = |model: &dyn Forecaster, family: &str, config: String| {
        let t = Instant::now();
        let evals = evaluate_fleet_week(&fleet, week, model, &cfg, 1);
        let secs = t.elapsed().as_secs_f64();
        let s = AccuracySummary::from_evaluations(&evals);
        table.row([
            family.to_string(),
            config.clone(),
            format!("{:.1}", s.window_correct_pct),
            format!("{:.1}", s.load_accurate_pct),
            format!("{secs:.2}"),
        ]);
        records.push(json!({
            "model": family, "config": config,
            "window_correct_pct": s.window_correct_pct,
            "load_accurate_pct": s.load_accurate_pct,
            "seconds": secs,
        }));
        eprintln!("[{family} {config} done]");
    };

    // SSA: window × rank.
    for (window, max_rank) in [(36, 6), (72, 12), (144, 12), (72, 4), (72, 24)] {
        let model = SsaForecaster::new(SsaConfig {
            window,
            energy: 0.92,
            max_rank,
            kernel: SsaKernel::Auto,
        });
        run(&model, "ssa", format!("window={window} rank<={max_rank}"));
    }

    // Feed-forward: hidden width.
    for hidden in [8usize, 32, 96] {
        let model = FeedForwardForecaster::new(FeedForwardConfig {
            hidden: vec![hidden],
            ..FeedForwardConfig::default()
        });
        run(&model, "feedforward", format!("hidden={hidden}"));
    }

    // Additive: changepoints (exact fit isolates the structural knob from
    // the optimizer budget).
    for changepoints in [0usize, 8, 24] {
        let model = AdditiveForecaster::new(AdditiveConfig {
            changepoints,
            fit: FitMethod::Exact,
            ..AdditiveConfig::default()
        });
        run(&model, "additive", format!("changepoints={changepoints}"));
    }

    println!("Ablation: model hyperparameters (40 unstable servers)\n");
    table.print();
    println!(
        "\nreading: accuracy saturates quickly in every family — supporting the \
         paper's choice to stop tuning and deploy the zero-cost heuristic"
    );

    emit_json("ablate_model_params", &json!({ "rows": records }))?;

    Ok(())
}
