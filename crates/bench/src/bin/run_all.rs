//! Runs every experiment binary in sequence (the EXPERIMENTS.md refresh).
//!
//! Usage: `cargo run --release -p seagull-bench --bin run_all`
//! Set `SEAGULL_SCALE=paper` for populations closer to the paper's.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig02_error_bound",
    "fig03_classification",
    "fig04_07_patterns",
    "fig08_10_ll_windows",
    "fig11a_model_runtime",
    "fig11bcd_model_accuracy",
    "sec532_persistent_accuracy",
    "sec54_deployment_accuracy",
    "fig12a_pipeline_runtime",
    "fig12b_parallel_eval",
    "fig13a_impact",
    "fig13b_capacity",
    "fig16_17_sql",
    "a1_sql_classification",
    "ablate_error_bound",
    "ablate_history_gate",
    "ablate_model_params",
    "ablate_pf_variant",
    "obs_dump",
    "dataplane",
    "fleet_scale",
    "serving",
    "recovery",
    "dataflow",
    "fit",
    "watch_dump",
    "loadtest",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================");
        let path = exe_dir.join(name);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fallback: build-and-run through cargo (slower, but works when
            // binaries were not prebuilt).
            Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "seagull-bench",
                    "--bin",
                    name,
                ])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("experiment {name} failed with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("experiment {name} could not start: {e}");
                failures.push(*name);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
