//! Ablation — which persistent-forecast variant?
//!
//! DESIGN.md §5. Section 5.2 argues previous-day covers the largest server
//! subset (53.7 %) vs previous-equivalent-day (53.6 %) vs week-average
//! (53.5 %). This ablation evaluates all three variants per ground-truth
//! class so the coverage argument is visible in the metrics.

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::evaluate::{evaluate_fleet_week, AccuracySummary, EvaluationConfig};
use seagull_core::par::default_threads;
use seagull_forecast::{PersistentForecast, PersistentVariant};
use seagull_telemetry::server::GeneratedClass;
use serde_json::json;

fn main() -> std::io::Result<()> {
    let (fleet, spec) = fleets::classification_fleet(42);
    let start = spec.start_day;
    let cfg = EvaluationConfig {
        // The equivalent-day variant needs a full week of history.
        train_days: 8,
        ..EvaluationConfig::default()
    };
    let threads = default_threads();

    let classes = [
        GeneratedClass::Stable,
        GeneratedClass::DailyPattern,
        GeneratedClass::WeeklyPattern,
        GeneratedClass::Unstable,
    ];

    println!("Ablation: persistent-forecast variant per server class\n");
    let mut t = Table::new([
        "class",
        "variant",
        "LL windows correct %",
        "in-window load accurate %",
        "n",
    ]);
    let mut records = Vec::new();
    for class in classes {
        let pool: Vec<_> = fleet
            .iter()
            .filter(|s| s.meta.class == class && s.meta.deleted_day.is_none())
            .cloned()
            .collect();
        if pool.is_empty() {
            continue;
        }
        for variant in PersistentVariant::ALL {
            let model = PersistentForecast::new(variant);
            let evals = evaluate_fleet_week(&pool, start + 21, &model, &cfg, threads);
            let summary = AccuracySummary::from_evaluations(&evals);
            t.row([
                class.label().to_string(),
                format!("{variant:?}"),
                format!("{:.1}", summary.window_correct_pct),
                format!("{:.1}", summary.load_accurate_pct),
                summary.evaluated.to_string(),
            ]);
            records.push(json!({
                "class": class.label(), "variant": format!("{variant:?}"),
                "window_correct_pct": summary.window_correct_pct,
                "load_accurate_pct": summary.load_accurate_pct,
                "evaluated": summary.evaluated,
            }));
        }
    }
    t.print();
    println!(
        "\nreading: week-average only handles stable load; equivalent-day adds \
         weekly patterns; previous-day adds daily patterns on top — the \
         paper's reason for deploying previous-day"
    );

    emit_json("ablate_pf_variant", &json!({ "rows": records }))?;

    Ok(())
}
