//! Figure 11(a) — Training and inference runtime per model as the number of
//! (unstable) servers grows.
//!
//! Paper: persistent forecast needs no training; NimbusML (SSA) and GluonTS
//! (feed-forward) scale roughly linearly; Prophet (additive) is orders of
//! magnitude slower; ARIMA's six-parameter search is so expensive it is
//! excluded from the comparison beyond a token sample. Absolute times differ
//! from the paper's testbed; the *ordering* and the linear scaling are the
//! reproduction targets.

use seagull_bench::{emit_json, fleets, scale, Scale, Table};
use seagull_forecast::{
    AdditiveForecaster, ArimaConfig, ArimaForecaster, FeedForwardForecaster, Forecaster,
    PersistentForecast, SsaForecaster,
};
use seagull_timeseries::Timestamp;
use serde_json::json;
use std::time::{Duration, Instant};

struct Sweep {
    model: String,
    servers: usize,
    train: Duration,
    infer: Duration,
}

fn main() -> std::io::Result<()> {
    let counts: &[usize] = match scale() {
        Scale::Small => &[10, 50, 100, 200],
        Scale::Paper => &[10, 50, 100, 200, 400, 700],
    };
    let max = *counts.last().unwrap();
    // One week of history + the target day, all unstable servers.
    let (fleet, start) = fleets::unstable_pool(7, max, 2);
    let target_day = start + 8;
    let day_start = Timestamp::from_days(target_day);
    let hist_start = Timestamp::from_days(target_day - 7);

    let persistent = PersistentForecast::previous_day();
    let ssa = SsaForecaster::default();
    let ff = FeedForwardForecaster::default();
    let additive = AdditiveForecaster::default();
    let arima = ArimaForecaster::new(ArimaConfig::default());
    let models: Vec<(&str, &dyn Forecaster)> = vec![
        ("persistent", &persistent),
        ("nimbus-ssa", &ssa),
        ("gluon-ff", &ff),
        ("prophet-additive", &additive),
        ("arima", &arima),
    ];

    let mut rows: Vec<Sweep> = Vec::new();
    for (name, model) in &models {
        for &n in counts {
            // ARIMA's grid search is intractable at scale — as in the paper,
            // sample it once at the smallest count and extrapolate by
            // exclusion.
            if *name == "arima" && n > counts[0] {
                continue;
            }
            let mut train = Duration::ZERO;
            let mut infer = Duration::ZERO;
            for server in &fleet[..n] {
                let Ok(history) = server.series.slice(hist_start, day_start) else {
                    continue;
                };
                let t = Instant::now();
                let Ok(fitted) = model.fit(&history) else {
                    continue;
                };
                train += t.elapsed();
                let t = Instant::now();
                let _ = fitted.predict(history.points_per_day());
                infer += t.elapsed();
            }
            rows.push(Sweep {
                model: name.to_string(),
                servers: n,
                train,
                infer,
            });
            eprintln!(
                "[{name} x{n}: train {:.2}s infer {:.2}s]",
                train.as_secs_f64(),
                infer.as_secs_f64()
            );
        }
    }

    println!("Figure 11(a): training and inference runtime (unstable servers)\n");
    let mut t = Table::new(["model", "servers", "train (s)", "infer (s)", "total (s)"]);
    for r in &rows {
        t.row([
            r.model.clone(),
            r.servers.to_string(),
            format!("{:.3}", r.train.as_secs_f64()),
            format!("{:.3}", r.infer.as_secs_f64()),
            format!("{:.3}", (r.train + r.infer).as_secs_f64()),
        ]);
    }
    t.print();

    // The paper's qualitative findings, checked on the largest common count.
    let total = |m: &str, n: usize| {
        rows.iter()
            .find(|r| r.model == m && r.servers == n)
            .map(|r| (r.train + r.infer).as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let n = *counts.last().unwrap();
    println!("\nordering at {n} servers (paper: persistent < ssa/ff << prophet; arima excluded):");
    println!(
        "  persistent {:.3}s | ssa {:.3}s | ff {:.3}s | additive {:.3}s",
        total("persistent", n),
        total("nimbus-ssa", n),
        total("gluon-ff", n),
        total("prophet-additive", n)
    );
    let arima_small = total("arima", counts[0]);
    println!(
        "  arima at {} servers already costs {arima_small:.3}s (per-server {:.3}s)",
        counts[0],
        arima_small / counts[0] as f64
    );

    emit_json(
        "fig11a_model_runtime",
        &json!({
            "rows": rows.iter().map(|r| json!({
                "model": r.model, "servers": r.servers,
                "train_s": r.train.as_secs_f64(), "infer_s": r.infer.as_secs_f64(),
            })).collect::<Vec<_>>(),
        }),
    )?;

    Ok(())
}
