//! watch_dump — run a seeded two-region fleet schedule with a serving
//! outage through the watchtower and dump the watch artifacts: the stable
//! metrics export (Prometheus + span JSON-lines) and the [`WatchReport`]
//! JSON, both under `experiments/`.
//!
//! The bin doubles as the CI smoke check for the watch layer: the pipeline
//! thread count comes from `SEAGULL_THREADS` (default 4) and the stable
//! artifact must be **byte-identical** regardless of that value — the
//! `watch-smoke` CI job runs it at 1 and 8 threads and diffs the files. A
//! same-seed in-process rerun is also asserted byte-identical before exit.

use seagull_bench::emit_json;
use seagull_core::pipeline::{AmlPipeline, PipelineConfig};
use seagull_core::FleetRunner;
use seagull_obs::Obs;
use seagull_serve::ServeService;
use seagull_telemetry::blobstore::{BlobStore, MemoryBlobStore};
use seagull_telemetry::extract::LoadExtraction;
use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, RegionSpec, ServerTelemetry};
use seagull_watch::{AccuracyMonitor, SloSpec, WatchEngine, WatchReport};
use serde_json::json;
use std::sync::Arc;

const WEEKS: usize = 3;
const TICKS: u64 = 180;
const OUTAGE: std::ops::RangeInclusive<u64> = 61..=120;

/// One deterministic simulation: fleet schedule → serve + accuracy monitor,
/// then 180 virtual minutes of traffic with a region-a outage watched by
/// the SLO engine. Returns the stable artifact (pipeline stable export +
/// watch stable export + report JSON) and the report alone.
fn simulate(seed: u64, threads: usize) -> (String, String) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = 8;
    spec.regions.push(RegionSpec {
        name: "region-b".into(),
        servers: 8,
    });
    let start = spec.start_day;
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(WEEKS);
    let store = Arc::new(MemoryBlobStore::new());
    let week_days: Vec<i64> = (0..WEEKS as i64).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .expect("extraction succeeds");

    let serve = ServeService::with_defaults();
    let monitor = Arc::new(AccuracyMonitor::default());
    let pipeline = AmlPipeline::new(
        PipelineConfig {
            threads,
            warm_cache: true,
            ..PipelineConfig::production()
        },
        Arc::clone(&store) as Arc<dyn BlobStore>,
    )
    .with_deploy_sink(Arc::new(serve.clone()))
    .with_accuracy_sink(Arc::clone(&monitor) as Arc<_>);
    let runner = FleetRunner::new(pipeline, regions.clone());
    runner.run_schedule(&week_days);
    serve.set_clock_day(start + 7 * WEEKS as i64);

    let mut engine = WatchEngine::new(Obs::new(), runner.pipeline().incidents.clone());
    engine.add_slo(SloSpec::error_rate("serve-errors", 0.99).with_window(120));
    let valid: Vec<u64> = regions
        .iter()
        .map(|r| {
            serve
                .snapshot(r)
                .expect("schedule published snapshots")
                .server_ids()
                .next()
                .expect("snapshot non-empty")
        })
        .collect();
    for tick in 1..=TICKS {
        for (r, region) in regions.iter().enumerate() {
            let outage = region == "region-a" && OUTAGE.contains(&tick);
            let server = if outage { u64::MAX } else { valid[r] };
            let (mut good, mut bad) = (0u64, 0u64);
            for q in 0..4 {
                match serve.predict(region, server, 1 + ((tick + q) % 48) as usize) {
                    Ok(_) => good += 1,
                    Err(_) => bad += 1,
                }
            }
            engine.record("serve-errors", region, tick, good, bad);
        }
        engine.evaluate(tick);
    }
    monitor.sweep(
        engine.obs(),
        engine.incidents(),
        Some(&runner.pipeline().cache),
    );
    let report = WatchReport::collect(&engine, Some(&monitor), TICKS).to_json();
    let stable = format!(
        "=== pipeline stable export ===\n{}\n=== watch stable export ===\n{}\n=== watch report ===\n{report}\n",
        runner.obs().stable_export(),
        engine.obs().stable_export(),
    );
    (stable, report)
}

fn main() -> std::io::Result<()> {
    let threads: usize = std::env::var("SEAGULL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let (stable, report) = simulate(42, threads);

    println!("=== Watch report (threads={threads}) ===");
    println!("{report}");

    // Smoke check: a same-seed rerun must reproduce the artifact byte for
    // byte in-process; the CI job additionally diffs across thread counts.
    let (stable2, _) = simulate(42, threads);
    assert_eq!(stable, stable2, "same seed, byte-identical watch dump");
    println!("\n[smoke: watch dump reproducible at threads={threads}]");

    let report_value: serde_json::Value =
        serde_json::from_str(&report).expect("report JSON parses");
    let json_path = emit_json(
        "watch_dump",
        &json!({
            "threads": threads,
            "ticks": TICKS,
            "outage_ticks": [*OUTAGE.start(), *OUTAGE.end()],
            "stable_bytes": stable.len(),
            "report": report_value,
        }),
    )?;
    let stable_path = json_path.with_file_name("watch_dump_stable.txt");
    std::fs::write(&stable_path, stable)?;
    eprintln!("[stable export written to {}]", stable_path.display());

    Ok(())
}
