//! Section 5.3.2 — Persistent forecast on stable servers and servers with a
//! pattern.
//!
//! Paper: "this heuristic correctly selected 99.83 % of LL windows,
//! accurately predicted the load during 99.06 % of all windows, and
//! classified 96.92 % of servers as predictable."

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::classify::{classify_fleet_with, ClassifyConfig, ServerClass};
use seagull_core::evaluate::{
    evaluate_fleet_week, predictability_fleet, predictable_pct, AccuracySummary, EvaluationConfig,
};
use seagull_forecast::PersistentForecast;
use serde_json::json;

fn main() -> std::io::Result<()> {
    let (fleet, spec) = fleets::classification_fleet(42);
    let start = spec.start_day;
    let cfg = EvaluationConfig::default();
    let model = PersistentForecast::previous_day();

    // The Section 5.3.2 population: long-lived servers that are stable or
    // follow a daily/weekly pattern.
    let report = classify_fleet_with(&fleet, start + 28, &ClassifyConfig::default());
    let keep: std::collections::HashSet<u64> = report
        .assignments
        .iter()
        .filter(|(_, c)| {
            matches!(
                c,
                ServerClass::Stable | ServerClass::DailyPattern | ServerClass::WeeklyPattern
            )
        })
        .map(|(id, _)| id.0)
        .collect();
    let predictable_pool: Vec<_> = fleet
        .iter()
        .filter(|s| keep.contains(&s.meta.id.0))
        .cloned()
        .collect();

    // Backup-day evaluation in the last full week of the window.
    let evals = evaluate_fleet_week(&predictable_pool, start + 21, &model, &cfg, 4);
    let summary = AccuracySummary::from_evaluations(&evals);
    let preds = predictability_fleet(&predictable_pool, start + 28, &model, &cfg, 4);
    let pred_pct = predictable_pct(&preds);

    println!(
        "Section 5.3.2: persistent forecast (previous day) on {} stable/patterned servers\n",
        predictable_pool.len()
    );
    let mut t = Table::new(["metric", "measured", "paper"]);
    t.row([
        "LL windows chosen correctly".to_string(),
        format!("{:.2}%", summary.window_correct_pct),
        "99.83%".to_string(),
    ]);
    t.row([
        "LL-window load predicted accurately".to_string(),
        format!("{:.2}%", summary.load_accurate_pct),
        "99.06%".to_string(),
    ]);
    t.row([
        "servers classified predictable".to_string(),
        format!("{pred_pct:.2}%"),
        "96.92%".to_string(),
    ]);
    t.print();

    emit_json(
        "sec532_persistent_accuracy",
        &json!({
            "servers": predictable_pool.len(),
            "window_correct_pct": summary.window_correct_pct,
            "load_accurate_pct": summary.load_accurate_pct,
            "predictable_pct": pred_pct,
            "paper": { "window_correct_pct": 99.83, "load_accurate_pct": 99.06,
                       "predictable_pct": 96.92 },
        }),
    )?;

    Ok(())
}
