//! Serving-layer benchmark: query latency, throughput, and read-path
//! determinism.
//!
//! Runs a multi-region fleet schedule through [`FleetRunner`] with a
//! [`ServeService`] attached as the pipeline's deploy sink, so every
//! deployment publishes an epoch-swapped model snapshot. Then fires a
//! seeded open-loop query mix (single predictions, day predictions,
//! low-load-window lookups, and 8-query batches) at the service across
//! 1/2/4/8 reader threads and emits `BENCH_serving.json` with p50/p95/p99
//! latency and QPS per thread count. Latencies are honest wall-clock
//! measurements on the current machine.
//!
//! Also cross-checks determinism: the digest of every response (predicted
//! values, window starts, error classes — everything except wall time)
//! must be **byte-identical** between the threads=1 and threads=N runs.
//! Exits non-zero on mismatch — the `serve-smoke` CI job relies on that.
//!
//! The run is additionally **SLO-gated**: the worst p50/p95/p99 across all
//! thread steps and the best QPS are checked against the pinned
//! [`SLO_GATES`] thresholds, each gate's pass/fail lands in
//! `BENCH_serving.json`, and any failing gate exits non-zero — the
//! `watch-smoke` CI job relies on that.

use seagull_bench::loadtest::{fnv1a_fold, fnv1a_fold_f64s, fnv1a_fold_u64, FNV_OFFSET};
use seagull_bench::{emit_json, scale, Scale, Table};
use seagull_core::pipeline::{AmlPipeline, PipelineConfig};
use seagull_core::FleetRunner;
use seagull_forecast::PersistentForecast;
use seagull_serve::{ServeError, ServeService};
use seagull_telemetry::blobstore::{BlobStore, MemoryBlobStore};
use seagull_telemetry::chaos::DetRng;
use seagull_telemetry::extract::LoadExtraction;
use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

const THREAD_STEPS: &[usize] = &[1, 2, 4, 8];
const BATCH_SIZE: usize = 8;

/// Serving SLOs the bench must meet on any supported machine. Latency
/// bounds apply to the *worst* quantile across all thread steps, the
/// throughput bound to the *best* step, so the gate catches order-of-
/// magnitude regressions (a lock on the read path, an accidental clone of
/// the snapshot) without flaking on a loaded CI box.
///
/// Thresholds are pinned to the sharded lock-free read path's floor
/// (measured ~390k QPS, p50 0.7µs, p99 3.7µs on a 1-core reference box) —
/// generous headroom for slow CI hardware, but a reintroduced read lock
/// (the old path's ~65k QPS) fails the throughput gate outright.
const SLO_GATES: &[SloGate] = &[
    SloGate {
        name: "p50_latency_us",
        kind: GateKind::AtMost,
        threshold: 1_000.0,
    },
    SloGate {
        name: "p95_latency_us",
        kind: GateKind::AtMost,
        threshold: 5_000.0,
    },
    SloGate {
        name: "p99_latency_us",
        kind: GateKind::AtMost,
        threshold: 25_000.0,
    },
    SloGate {
        name: "qps",
        kind: GateKind::AtLeast,
        threshold: 100_000.0,
    },
];

/// Direction of one serving SLO gate.
enum GateKind {
    /// Observed value must be `<= threshold` (latency bounds).
    AtMost,
    /// Observed value must be `>= threshold` (throughput floor).
    AtLeast,
}

/// One pinned serving SLO: a named threshold the bench asserts against.
struct SloGate {
    name: &'static str,
    kind: GateKind,
    threshold: f64,
}

impl SloGate {
    fn pass(&self, observed: f64) -> bool {
        match self.kind {
            GateKind::AtMost => observed <= self.threshold,
            GateKind::AtLeast => observed >= self.threshold,
        }
    }
}

/// One pre-generated query against the service.
#[derive(Clone)]
enum Request {
    Predict {
        region: usize,
        server: u64,
        horizon: usize,
    },
    PredictDay {
        region: usize,
        server: u64,
        day: i64,
    },
    LlWindow {
        region: usize,
        server: u64,
        day: i64,
    },
    Batch {
        region: usize,
        queries: Vec<(u64, usize)>,
    },
}

/// Deterministic FNV digest of one response — start timestamp and exact
/// value bits on success, the error rendering otherwise; everything except
/// wall time. A `u64` fold instead of a formatted string so computing it
/// (outside the timed section) costs nanoseconds, not an allocation.
fn digest_series(r: &Result<seagull_timeseries::TimeSeries, ServeError>) -> u64 {
    match r {
        Ok(s) => {
            let h = fnv1a_fold_u64(FNV_OFFSET, s.start().minutes() as u64);
            fnv1a_fold_f64s(h, s.values())
        }
        Err(e) => fnv1a_fold(FNV_OFFSET, format!("err:{e}").as_bytes()),
    }
}

fn run_requests(
    serve: &ServeService,
    regions: &[String],
    requests: &[Request],
    threads: usize,
) -> (Vec<u64>, Vec<f64>, f64, usize) {
    let t0 = Instant::now();
    let mut digests: Vec<Vec<(usize, u64)>> = Vec::new();
    let mut latencies: Vec<Vec<f64>> = Vec::new();
    let mut errors = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut lat = Vec::new();
                    let mut errs = 0usize;
                    // Each arm times *only* the serve call; digesting the
                    // response (cheap FNV folds, but still not the read
                    // path) happens outside the measured window.
                    for (i, req) in requests.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        let digest = match req {
                            Request::Predict {
                                region,
                                server,
                                horizon,
                            } => {
                                let q0 = Instant::now();
                                let r = serve.predict(&regions[*region], *server, *horizon);
                                lat.push(q0.elapsed().as_secs_f64());
                                errs += usize::from(r.is_err());
                                digest_series(&r)
                            }
                            Request::PredictDay {
                                region,
                                server,
                                day,
                            } => {
                                let q0 = Instant::now();
                                let r = serve.predict_day(&regions[*region], *server, *day);
                                lat.push(q0.elapsed().as_secs_f64());
                                errs += usize::from(r.is_err());
                                digest_series(&r)
                            }
                            Request::LlWindow {
                                region,
                                server,
                                day,
                            } => {
                                let q0 = Instant::now();
                                let r = serve.ll_window(&regions[*region], *server, *day);
                                lat.push(q0.elapsed().as_secs_f64());
                                errs += usize::from(r.is_err());
                                match r {
                                    Ok(w) => {
                                        let h =
                                            fnv1a_fold_u64(FNV_OFFSET, w.start.minutes() as u64);
                                        let h = fnv1a_fold_u64(h, u64::from(w.duration_min));
                                        fnv1a_fold_f64s(h, &[w.mean_load])
                                    }
                                    Err(e) => fnv1a_fold(FNV_OFFSET, format!("err:{e}").as_bytes()),
                                }
                            }
                            Request::Batch { region, queries } => {
                                let q0 = Instant::now();
                                let r = serve.predict_batch(&regions[*region], queries);
                                lat.push(q0.elapsed().as_secs_f64());
                                errs += usize::from(r.is_err());
                                match r {
                                    Ok(rs) => rs.iter().fold(FNV_OFFSET, |h, one| {
                                        fnv1a_fold_u64(h, digest_series(one))
                                    }),
                                    Err(e) => fnv1a_fold(FNV_OFFSET, format!("err:{e}").as_bytes()),
                                }
                            }
                        };
                        out.push((i, digest));
                    }
                    (out, lat, errs)
                })
            })
            .collect();
        for h in handles {
            let (out, lat, errs) = h.join().expect("reader thread panicked");
            digests.push(out);
            latencies.push(lat);
            errors += errs;
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    // Reassemble responses in request order regardless of thread count.
    let mut ordered: Vec<(usize, u64)> = digests.into_iter().flatten().collect();
    ordered.sort_by_key(|(i, _)| *i);
    (
        ordered.into_iter().map(|(_, d)| d).collect(),
        latencies.into_iter().flatten().collect(),
        wall,
        errors,
    )
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> std::io::Result<()> {
    let (per_region_unit, weeks, n_requests) = match scale() {
        Scale::Small => (2, 3, 20_000usize),
        Scale::Paper => (12, 4, 200_000usize),
    };
    let spec = FleetSpec::four_regions(90, per_region_unit);
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let servers: usize = spec.regions.iter().map(|r| r.servers).sum();
    let start = spec.start_day;
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(weeks);

    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .expect("extraction succeeds");

    // ---- Pipeline → serve: deployments publish snapshots -----------------
    let serve = ServeService::with_defaults();
    let config = PipelineConfig {
        threads: 4,
        warm_cache: true,
        forecaster: Arc::new(PersistentForecast::previous_day()),
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, Arc::clone(&store) as Arc<dyn BlobStore>)
        .with_deploy_sink(Arc::new(serve.clone()));
    let runner = FleetRunner::new(pipeline, regions.clone());
    runner.run_schedule(&week_days);
    serve.set_clock_day(start + 7 * weeks as i64);

    let catalog: Vec<(usize, Vec<u64>)> = regions
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            serve
                .snapshot(r)
                .map(|s| (i, s.server_ids().collect::<Vec<u64>>()))
        })
        .filter(|(_, ids)| !ids.is_empty())
        .collect();
    assert!(
        !catalog.is_empty(),
        "the schedule must publish at least one non-empty snapshot"
    );
    let served_servers: usize = catalog.iter().map(|(_, ids)| ids.len()).sum();
    println!(
        "Serving: {} regions with snapshots, {served_servers} served servers \
         (fleet: {servers}), {n_requests} requests, threads {THREAD_STEPS:?}\n",
        catalog.len()
    );
    for (i, _) in &catalog {
        println!(
            "  {}: epoch {}, {} servers, staleness {}d",
            regions[*i],
            serve.epoch(&regions[*i]),
            serve.snapshot(&regions[*i]).unwrap().len(),
            serve.staleness_days(&regions[*i]).unwrap()
        );
    }

    // ---- Seeded open-loop request mix ------------------------------------
    let mut rng = DetRng::new(0x5ea9_0115);
    let day_of = |region: usize, server: u64| {
        serve
            .snapshot(&regions[region])
            .and_then(|s| s.server(server).map(|v| v.materialized_day()))
            .expect("catalog servers are in the snapshot")
    };
    let requests: Vec<Request> = (0..n_requests)
        .map(|_| {
            let (region, ids) = &catalog[(rng.next_u64() % catalog.len() as u64) as usize];
            let server = ids[(rng.next_u64() % ids.len() as u64) as usize];
            match rng.next_u64() % 4 {
                // Horizons 1..=96 stress both the zero-copy path (within the
                // materialized day) and the model-fallback path beyond it.
                0 => Request::Predict {
                    region: *region,
                    server,
                    horizon: 1 + (rng.next_u64() % 96) as usize,
                },
                1 => Request::PredictDay {
                    region: *region,
                    server,
                    day: day_of(*region, server),
                },
                2 => Request::LlWindow {
                    region: *region,
                    server,
                    day: day_of(*region, server),
                },
                _ => Request::Batch {
                    region: *region,
                    queries: (0..BATCH_SIZE)
                        .map(|_| {
                            (
                                ids[(rng.next_u64() % ids.len() as u64) as usize],
                                1 + (rng.next_u64() % 48) as usize,
                            )
                        })
                        .collect(),
                },
            }
        })
        .collect();

    // ---- Latency / QPS across reader threads -----------------------------
    let mut rows = Vec::new();
    let mut table = Table::new([
        "threads",
        "wall s",
        "qps",
        "p50 us",
        "p95 us",
        "p99 us",
        "identical",
    ]);
    let mut baseline: Option<Vec<u64>> = None;
    let mut errors = 0usize;
    let (mut worst_p50, mut worst_p95, mut worst_p99, mut best_qps) = (0f64, 0f64, 0f64, 0f64);
    for &threads in THREAD_STEPS {
        let (digests, mut lat, wall, errs) = run_requests(&serve, &regions, &requests, threads);
        errors = errs;
        let identical = match &baseline {
            None => {
                baseline = Some(digests);
                true
            }
            Some(base) => base == &digests,
        };
        assert!(
            identical,
            "threads=1 and threads={threads} must produce byte-identical responses"
        );
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let qps = requests.len() as f64 / wall.max(1e-12);
        let (p50, p95, p99) = (
            quantile(&lat, 0.50) * 1e6,
            quantile(&lat, 0.95) * 1e6,
            quantile(&lat, 0.99) * 1e6,
        );
        worst_p50 = worst_p50.max(p50);
        worst_p95 = worst_p95.max(p95);
        worst_p99 = worst_p99.max(p99);
        best_qps = best_qps.max(qps);
        table.row([
            format!("{threads}"),
            format!("{wall:.3}"),
            format!("{qps:.0}"),
            format!("{p50:.1}"),
            format!("{p95:.1}"),
            format!("{p99:.1}"),
            "yes".to_string(),
        ]);
        rows.push(json!({
            "threads": threads,
            "requests": requests.len(),
            "wall_s": wall,
            "qps": qps,
            "latency_us": { "p50": p50, "p95": p95, "p99": p99 },
            "identical_to_single_thread": identical,
        }));
    }
    table.print();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\ndeterminism: responses byte-identical across thread counts \
         ({errors} deterministic error responses in the mix)"
    );

    // ---- SLO gate --------------------------------------------------------
    let observed = |name: &str| match name {
        "p50_latency_us" => worst_p50,
        "p95_latency_us" => worst_p95,
        "p99_latency_us" => worst_p99,
        "qps" => best_qps,
        other => unreachable!("unknown gate {other}"),
    };
    let mut all_pass = true;
    let mut slo_rows = Vec::new();
    println!("\nSLO gate:");
    for gate in SLO_GATES {
        let value = observed(gate.name);
        let pass = gate.pass(value);
        all_pass &= pass;
        let op = match gate.kind {
            GateKind::AtMost => "<=",
            GateKind::AtLeast => ">=",
        };
        println!(
            "  {:16} {value:>12.1} {op} {:>10.1}  {}",
            gate.name,
            gate.threshold,
            if pass { "PASS" } else { "FAIL" }
        );
        slo_rows.push(json!({
            "slo": gate.name,
            "threshold": gate.threshold,
            "observed": value,
            "pass": pass,
        }));
    }

    emit_json(
        "BENCH_serving",
        &json!({
            "fleet": {
                "regions": regions.len(),
                "served_regions": catalog.len(),
                "servers": servers,
                "served_servers": served_servers,
                "weeks": weeks,
                "forecaster": "persistent-prev-day",
            },
            "request_mix": {
                "total": n_requests,
                "kinds": "predict, predict_day, ll_window, batch8",
                "deterministic_errors": errors,
            },
            "machine_cores": cores,
            "determinism": "ok",
            "slo_gate": { "pass": all_pass, "slos": slo_rows },
            "rows": rows,
        }),
    )?;

    assert!(all_pass, "serving SLO gate failed — see table above");
    Ok(())
}
