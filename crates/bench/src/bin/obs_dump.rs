//! obs_dump — run a simulated pipeline week under fault injection and dump
//! the observability exports: Prometheus text exposition, span JSON-lines,
//! and a chrome://tracing trace file under `experiments/`.
//!
//! The bin doubles as the CI smoke check for the obs layer: it re-parses
//! both text exports and verifies the stable export is byte-identical
//! across two identical runs before exiting.

use seagull_bench::{emit_json, fleets};
use seagull_core::dashboard::Dashboard;
use seagull_core::pipeline::{AmlPipeline, PipelineConfig};
use seagull_core::resilience::ResiliencePolicy;
use seagull_obs::{export, Obs, TimeMode};
use seagull_telemetry::blobstore::MemoryBlobStore;
use seagull_telemetry::chaos::{ChaosBlobStore, ChaosConfig};
use seagull_telemetry::extract::LoadExtraction;
use serde_json::json;
use std::sync::Arc;

/// One deterministic two-week simulation: flaky storage, two pipeline runs,
/// dashboard fed from the shared registry.
fn simulate(seed: u64) -> (Obs, AmlPipeline, Dashboard, String) {
    let (fleet, spec) = fleets::region_fleet(seed, 60, 2);
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let mem = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &[start, start + 7],
            mem.as_ref(),
        )
        .expect("extraction succeeds");
    let chaos = Arc::new(ChaosBlobStore::new(
        mem,
        ChaosConfig {
            seed,
            transient_fault_prob: 0.25,
            ..ChaosConfig::default()
        },
    ));
    let obs = Obs::new();
    let pipeline = AmlPipeline::with_resilience(
        PipelineConfig::production(),
        Arc::clone(&chaos) as Arc<_>,
        ResiliencePolicy {
            seed,
            ..ResiliencePolicy::default()
        },
    )
    .with_obs(obs.clone());
    let dashboard = Dashboard::with_obs(obs.clone());
    dashboard.record(pipeline.run_region_week(&region, start));
    dashboard.record(pipeline.run_region_week(&region, start + 7));
    chaos.export_metrics(obs.registry());
    (obs, pipeline, dashboard, region)
}

fn main() -> std::io::Result<()> {
    let (obs, pipeline, dashboard, region) = simulate(42);

    let prom = export::to_prometheus(&obs.registry().snapshot());
    let spans = obs.tracer().spans();
    let span_lines = export::spans_to_json_lines(&spans, TimeMode::Full);
    let chrome = export::spans_to_chrome_trace(&spans);

    println!("=== Prometheus exposition (region {region}) ===");
    print!("{prom}");
    println!("\n=== Span JSON-lines ===");
    print!("{span_lines}");
    println!("\n=== Dashboard ===");
    print!("{}", dashboard.render(&pipeline.incidents));

    // Smoke checks: both text exports must survive their own parsers, and
    // the stable export must be byte-identical for a same-seed rerun.
    let parsed = export::parse_prometheus(&prom).expect("prometheus re-parses");
    assert!(!parsed.is_empty(), "exposition has samples");
    assert!(
        parsed
            .iter()
            .any(|s| s.name == "seagull_retry_attempts_total"),
        "retry counters exported"
    );
    let reparsed = export::parse_span_json_lines(&span_lines).expect("spans re-parse");
    assert_eq!(reparsed.len(), spans.len(), "every span round-trips");
    assert!(
        spans.iter().any(|s| s.name == "run-week"),
        "run spans recorded"
    );
    let (obs2, _, _, _) = simulate(42);
    assert_eq!(
        obs.stable_export(),
        obs2.stable_export(),
        "same seed, byte-identical stable export"
    );
    println!("\n[smoke: exports parse; stable export reproducible]");

    let trace_path = emit_json(
        "obs_dump",
        &json!({
            "metrics": parsed.len(),
            "spans": spans.len(),
            "stable_export_bytes": obs.stable_export().len(),
        }),
    )?;
    let chrome_path = trace_path.with_file_name("obs_dump_trace.json");
    std::fs::write(&chrome_path, chrome)?;
    eprintln!("[chrome trace written to {}]", chrome_path.display());

    Ok(())
}
