//! Ablation — does the asymmetric +10/−5 error bound matter?
//!
//! DESIGN.md §5. The paper chose an asymmetric bound "because a slight
//! overestimation of low load periods is less critical ... than a slight
//! underestimation". This ablation sweeps symmetric and asymmetric bounds
//! and reports how the fleet-wide metrics and the predictability gate react.

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::evaluate::{
    evaluate_fleet_week, predictability_fleet, predictable_pct, AccuracySummary, EvaluationConfig,
};
use seagull_core::metrics::{AccuracyConfig, ErrorBound};
use seagull_core::par::default_threads;
use seagull_forecast::PersistentForecast;
use serde_json::json;

fn main() -> std::io::Result<()> {
    let (fleet, spec) = fleets::classification_fleet(42);
    let start = spec.start_day;
    let long_lived: Vec<_> = fleet
        .iter()
        .filter(|s| s.meta.is_long_lived(start + 28))
        .cloned()
        .collect();
    let model = PersistentForecast::previous_day();
    let threads = default_threads();

    let bounds = [
        (
            "paper +10/-5",
            ErrorBound {
                over: 10.0,
                under: 5.0,
            },
        ),
        ("symmetric ±5", ErrorBound::symmetric(5.0)),
        ("symmetric ±7.5", ErrorBound::symmetric(7.5)),
        ("symmetric ±10", ErrorBound::symmetric(10.0)),
        (
            "inverted +5/-10",
            ErrorBound {
                over: 5.0,
                under: 10.0,
            },
        ),
    ];

    println!(
        "Ablation: acceptable error bound ({} long-lived servers)\n",
        long_lived.len()
    );
    let mut t = Table::new([
        "bound",
        "LL windows correct %",
        "in-window load accurate %",
        "predictable %",
    ]);
    let mut records = Vec::new();
    for (name, bound) in bounds {
        let cfg = EvaluationConfig {
            accuracy: AccuracyConfig {
                bound,
                ..AccuracyConfig::default()
            },
            ..EvaluationConfig::default()
        };
        let evals = evaluate_fleet_week(&long_lived, start + 21, &model, &cfg, threads);
        let summary = AccuracySummary::from_evaluations(&evals);
        let preds = predictability_fleet(&long_lived, start + 28, &model, &cfg, threads);
        let ppct = predictable_pct(&preds);
        t.row([
            name.to_string(),
            format!("{:.2}", summary.window_correct_pct),
            format!("{:.2}", summary.load_accurate_pct),
            format!("{ppct:.2}"),
        ]);
        records.push(json!({
            "bound": name, "over": bound.over, "under": bound.under,
            "window_correct_pct": summary.window_correct_pct,
            "load_accurate_pct": summary.load_accurate_pct,
            "predictable_pct": ppct,
        }));
    }
    t.print();
    println!(
        "\nreading: tightening the under-prediction side (the risky direction) \
         gates out more servers; the asymmetric bound trades a small loss of \
         coverage for protection against scheduling into under-predicted load"
    );

    emit_json("ablate_error_bound", &json!({ "rows": records }))?;

    Ok(())
}
