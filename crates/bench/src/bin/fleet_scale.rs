//! Fleet execution-engine benchmark: thread scaling × warm-model cache.
//!
//! Runs the same multi-region, multi-week schedule through
//! [`FleetRunner`] at 1/2/4/8 worker threads, once with the warm cache off
//! (every server refits every week) and once with it on, and emits
//! `BENCH_fleet_scale.json` with fleet-week wall times, server-week
//! throughput, speedup vs one thread, and cache hit rates / fit wall time
//! saved. All numbers are honest wall-clock measurements on the current
//! machine — thread speedups are bounded by the cores actually available.
//!
//! Also cross-checks determinism: the canonicalized outputs (run reports
//! with wall timings zeroed, every stored document, the incident log, and
//! `Obs::stable_export()`) of a threads=1 and a threads=8 schedule must be
//! byte-identical. Exits non-zero on mismatch — the `fleet-smoke` CI job
//! relies on that.

use seagull_bench::{emit_json, scale, Scale, Table};
use seagull_core::pipeline::{collections, AmlPipeline, PipelineConfig, PipelineRunReport};
use seagull_core::FleetRunner;
use seagull_forecast::{SsaConfig, SsaForecaster};
use seagull_telemetry::blobstore::MemoryBlobStore;
use seagull_telemetry::extract::LoadExtraction;
use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

const THREAD_STEPS: &[usize] = &[1, 2, 4, 8];

/// The comparable part of a run report: wall-clock stage durations are
/// legitimately machine/thread dependent, everything else must match.
fn semantic_report(report: &PipelineRunReport) -> Value {
    json!({
        "region": report.region,
        "week_start_day": report.week_start_day,
        "stages": report.stages.iter().map(|s| s.stage.clone()).collect::<Vec<_>>(),
        "servers": report.servers,
        "anomalies": report.anomalies,
        "blocked": report.blocked,
        "predictions_written": report.predictions_written,
        "evaluations": report.evaluations,
        "accuracy": report.accuracy,
        "deployed_version": report.deployed_version,
        "degraded": report.degraded,
    })
}

fn pipeline(store: &Arc<MemoryBlobStore>, threads: usize, warm_cache: bool) -> AmlPipeline {
    let config = PipelineConfig {
        threads,
        warm_cache,
        // SSA makes the per-server fit cost non-trivial, so both the thread
        // fan-out and the fit-skip savings are measurable.
        forecaster: Arc::new(SsaForecaster::new(SsaConfig::default())),
        ..PipelineConfig::production()
    };
    AmlPipeline::new(
        config,
        Arc::clone(store) as Arc<dyn seagull_telemetry::blobstore::BlobStore>,
    )
}

/// Everything a schedule produces, canonicalized for equality comparison.
fn canonical_outputs(runner: &FleetRunner, reports: &[PipelineRunReport]) -> Value {
    let p = runner.pipeline();
    let mut docs = Vec::new();
    for collection in [
        collections::PREDICTIONS,
        collections::ACCURACY,
        collections::FEATURES,
        collections::RUNS,
        collections::DEAD_LETTER,
    ] {
        let mut ids = p.docs.ids(collection);
        ids.sort();
        for id in ids {
            if collection == collections::RUNS {
                // Stored run reports carry wall timings; canonicalize them
                // the same way as the returned reports.
                let run: PipelineRunReport =
                    p.docs.get(collection, &id).expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), semantic_report(&run)));
            } else {
                let value: Value = p.docs.get(collection, &id).expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), value));
            }
        }
    }
    let incidents: Vec<Value> = p
        .incidents
        .all()
        .iter()
        .map(|i| {
            json!({
                "severity": format!("{:?}", i.severity),
                "source": i.source,
                "region": i.region,
                "key": i.message_key,
                "count": i.count,
            })
        })
        .collect();
    json!({
        "reports": reports.iter().map(semantic_report).collect::<Vec<_>>(),
        "docs": docs,
        "incidents": incidents,
        "stable_export": runner.obs().stable_export(),
    })
}

fn main() -> std::io::Result<()> {
    let (per_region_unit, weeks) = match scale() {
        Scale::Small => (2, 3),
        Scale::Paper => (12, 4),
    };
    let spec = FleetSpec::four_regions(90, per_region_unit);
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let servers: usize = spec.regions.iter().map(|r| r.servers).sum();
    let start = spec.start_day;
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(weeks);

    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .expect("extraction succeeds");

    println!(
        "Fleet scale: {} regions, {servers} servers, {weeks} weeks, \
         threads {THREAD_STEPS:?}\n",
        regions.len()
    );

    // ---- Determinism cross-check ----------------------------------------
    let canon: Vec<Value> = [1usize, 8]
        .iter()
        .map(|&t| {
            let runner = FleetRunner::new(pipeline(&store, t, true), regions.clone());
            let reports = runner.run_schedule(&week_days);
            canonical_outputs(&runner, &reports)
        })
        .collect();
    assert_eq!(
        canon[0], canon[1],
        "threads=1 and threads=8 schedules must produce identical reports, \
         documents, incidents, and stable exports"
    );
    println!("determinism: threads=1 == threads=8 (reports, docs, incidents, stable export)\n");

    // ---- Scaling × cache matrix ------------------------------------------
    // Thread rows beyond the machine's real core count measure scheduler
    // oversubscription, not scaling: they are marked and their speedup is
    // reported as null rather than pretending to be a parallelism result.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut table = Table::new([
        "threads",
        "cold s",
        "warm s",
        "cache speedup",
        "hit rate",
        "saved s",
        "speedup vs 1T",
    ]);
    let server_weeks = (servers * weeks) as f64;
    let mut cold_base = f64::NAN;
    for &threads in THREAD_STEPS {
        let oversubscribed = threads > cores;
        let cold_runner = FleetRunner::new(pipeline(&store, threads, false), regions.clone());
        let t0 = Instant::now();
        cold_runner.run_schedule(&week_days);
        let cold_s = t0.elapsed().as_secs_f64();
        if threads == 1 {
            cold_base = cold_s;
        }

        let warm_runner = FleetRunner::new(pipeline(&store, threads, true), regions.clone());
        let t0 = Instant::now();
        warm_runner.run_schedule(&week_days);
        let warm_s = t0.elapsed().as_secs_f64();
        let stats = warm_runner.cache_stats();

        let speedup_vs_1 = cold_base / cold_s.max(1e-12);
        let cache_speedup = cold_s / warm_s.max(1e-12);
        table.row([
            format!("{threads}{}", if oversubscribed { "*" } else { "" }),
            format!("{cold_s:.3}"),
            format!("{warm_s:.3}"),
            format!("{cache_speedup:.2}x"),
            format!("{:.1}%", stats.hit_rate() * 100.0),
            format!("{:.3}", stats.saved_wall.as_secs_f64()),
            if oversubscribed {
                "n/a".to_string()
            } else {
                format!("{speedup_vs_1:.2}x")
            },
        ]);
        rows.push(json!({
            "threads": threads,
            "oversubscribed": oversubscribed,
            "cold_wall_s": cold_s,
            "warm_wall_s": warm_s,
            "cold_server_weeks_per_s": server_weeks / cold_s.max(1e-12),
            "warm_server_weeks_per_s": server_weeks / warm_s.max(1e-12),
            "speedup_vs_1_thread": if oversubscribed { Value::Null } else { json!(speedup_vs_1) },
            "cache_speedup": cache_speedup,
            "cache": {
                "hits": stats.hits,
                "hits_similarity": stats.hits_similarity,
                "misses": stats.misses(),
                "hit_rate": stats.hit_rate(),
                "saved_wall_s": stats.saved_wall.as_secs_f64(),
                "evictions": stats.evictions,
            },
        }));
    }
    table.print();

    println!(
        "\nnote: machine has {cores} core(s); rows marked * run more threads than \
         cores and measure oversubscription, not scaling — their speedup is null"
    );

    emit_json(
        "BENCH_fleet_scale",
        &json!({
            "fleet": {
                "regions": regions.len(),
                "servers": servers,
                "weeks": weeks,
                "forecaster": "ssa",
            },
            "machine_cores": cores,
            "determinism": "ok",
            "rows": rows,
        }),
    )?;

    Ok(())
}
