//! Fit-path benchmark: the fast-fit kernel layer end to end.
//!
//! Measures cold-fit throughput (server-weeks/s) of the fast path —
//! randomized SSA subspace kernel + same-shape fit batching + scratch-pooled
//! linalg — against a dense-forced solo-fit configuration that reproduces
//! the old hot path, on the same fleet `BENCH_fleet_scale.json` uses. Emits
//! `BENCH_fit.json` with both rows, the measured speedup, forecast parity
//! against the dense path, the warm-cache hit breakdown (exact vs
//! similarity-keyed reuses, reported separately), and a four-way
//! determinism cross-check.
//!
//! Always asserted, machine-independent (all seed-deterministic):
//!   * determinism: canonical outputs byte-identical across
//!     `{Barrier, Dataflow} × {1, 8 threads}`;
//!   * parity: every pipeline prediction of the fast path within
//!     [`RANDOMIZED_PARITY_TOL`] of the dense path's, same document set;
//!   * warm cache: hit rate above the exact-bytes 50% plateau, with
//!     similarity reuses > 0 and counted separately.
//!
//! Asserted only under `SEAGULL_FIT_ASSERT=1` (wall-clock, machine-
//! dependent — the `fit-smoke` CI job sets it):
//!   * the fast path is ≥ [`SPEEDUP_GATE`]x the dense-forced path measured
//!     on the same machine.

use seagull_bench::{emit_json, scale, Scale, Table};
use seagull_core::pipeline::{
    collections, AmlPipeline, ExecMode, PipelineConfig, PipelineRunReport, PredictionDoc,
};
use seagull_core::FleetRunner;
use seagull_forecast::ssa::RANDOMIZED_PARITY_TOL;
use seagull_forecast::{SsaConfig, SsaForecaster, SsaKernel};
use seagull_telemetry::blobstore::MemoryBlobStore;
use seagull_telemetry::extract::LoadExtraction;
use seagull_telemetry::fleet::{ClassMix, FleetGenerator, FleetSpec, ServerTelemetry};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Cold-fit throughput recorded by the seed `BENCH_fleet_scale.json` run
/// (threads=1, dense Jacobi, solo fits) — the baseline ROADMAP item 4
/// targets. The hard gate compares against the dense path *measured on the
/// same machine*; this constant only contextualizes the JSON record.
const BASELINE_SERVER_WEEKS_PER_S: f64 = 51.6;

/// Required measured speedup of the fast path over the dense-forced path.
const SPEEDUP_GATE: f64 = 5.0;

/// One pipeline with the SSA forecaster pinned to `kernel`.
fn pipeline(
    store: &Arc<MemoryBlobStore>,
    kernel: SsaKernel,
    exec: ExecMode,
    threads: usize,
    fit_batch: usize,
    warm_cache: bool,
) -> AmlPipeline {
    let config = PipelineConfig {
        threads,
        warm_cache,
        exec,
        fit_batch,
        forecaster: Arc::new(SsaForecaster::new(SsaConfig {
            kernel,
            ..SsaConfig::default()
        })),
        ..PipelineConfig::production()
    };
    AmlPipeline::new(
        config,
        Arc::clone(store) as Arc<dyn seagull_telemetry::blobstore::BlobStore>,
    )
}

/// The comparable part of a run report: wall-clock stage durations are
/// legitimately machine/thread dependent, everything else must match.
fn semantic_report(report: &PipelineRunReport) -> Value {
    json!({
        "region": report.region,
        "week_start_day": report.week_start_day,
        "stages": report.stages.iter().map(|s| s.stage.clone()).collect::<Vec<_>>(),
        "servers": report.servers,
        "anomalies": report.anomalies,
        "blocked": report.blocked,
        "predictions_written": report.predictions_written,
        "evaluations": report.evaluations,
        "accuracy": report.accuracy,
        "deployed_version": report.deployed_version,
        "degraded": report.degraded,
    })
}

/// Everything a schedule produces, canonicalized for equality comparison.
fn canonical_outputs(runner: &FleetRunner, reports: &[PipelineRunReport]) -> Value {
    let p = runner.pipeline();
    let mut docs = Vec::new();
    for collection in [
        collections::PREDICTIONS,
        collections::ACCURACY,
        collections::FEATURES,
        collections::RUNS,
        collections::DEAD_LETTER,
    ] {
        let mut ids = p.docs.ids(collection);
        ids.sort();
        for id in ids {
            if collection == collections::RUNS {
                let run: PipelineRunReport =
                    p.docs.get(collection, &id).expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), semantic_report(&run)));
            } else {
                let value: Value = p.docs.get(collection, &id).expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), value));
            }
        }
    }
    json!({
        "reports": reports.iter().map(semantic_report).collect::<Vec<_>>(),
        "docs": docs,
        "stable_export": runner.obs().stable_export(),
    })
}

/// All prediction documents of a pipeline, sorted by id.
fn predictions(p: &AmlPipeline) -> Vec<(String, PredictionDoc)> {
    let mut ids = p.docs.ids(collections::PREDICTIONS);
    ids.sort();
    ids.into_iter()
        .map(|id| {
            let doc: PredictionDoc = p.docs.get(collections::PREDICTIONS, &id).unwrap();
            (id, doc)
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    let (per_region_unit, weeks) = match scale() {
        Scale::Small => (2, 3),
        Scale::Paper => (12, 4),
    };
    let mut spec = FleetSpec::four_regions(90, per_region_unit);
    // Pattern-heavy class mix: the fit-cost story is about servers whose
    // series carry structure (SSA on a flat stable server is trivial at any
    // kernel), and the similarity-reuse story is about patterned servers
    // whose bytes jitter week over week while their shape persists. The
    // paper's production mix is ~95% stable/short-lived, which leaves both
    // populations nearly empty at bench scale — so the fit bench skews the
    // mix toward them and says so in the JSON record.
    spec.mix = ClassMix {
        short_lived: 0.10,
        stable: 0.30,
        daily: 0.35,
        weekly: 0.15,
        unstable: 0.10,
    };
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let servers: usize = spec.regions.iter().map(|r| r.servers).sum();
    let start = spec.start_day;
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(weeks);

    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .expect("extraction succeeds");

    let server_weeks = (servers * weeks) as f64;
    println!(
        "Fit path: {} regions, {servers} servers, {weeks} weeks ({server_weeks} server-weeks)\n",
        regions.len()
    );

    // ---- Determinism matrix ----------------------------------------------
    // The fast path (auto kernel + batching), warm cache on, across both
    // execution modes and two thread counts: canonical outputs must be
    // byte-identical in all four cells.
    let mut cells: Vec<(String, Value)> = Vec::new();
    for exec in [ExecMode::Barrier, ExecMode::Dataflow] {
        for threads in [1usize, 8] {
            let runner = FleetRunner::new(
                pipeline(&store, SsaKernel::Auto, exec, threads, 16, true),
                regions.clone(),
            );
            let reports = runner.run_schedule(&week_days);
            cells.push((
                format!("{exec:?} x{threads}"),
                canonical_outputs(&runner, &reports),
            ));
        }
    }
    for (label, outputs) in &cells[1..] {
        assert_eq!(
            &cells[0].1, outputs,
            "{label} diverged from {} — reports, documents, or stable export",
            cells[0].0
        );
    }
    println!(
        "determinism: {} cells byte-identical ({})\n",
        cells.len(),
        cells
            .iter()
            .map(|(l, _)| l.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ---- Cold-fit throughput: dense-forced solo vs fast path -------------
    // The dense row reproduces the pre-optimization hot path: full cyclic
    // Jacobi on the Gram matrix, one fit per server, no batching. Both rows
    // run threads=1 so the comparison is single-core, like the recorded
    // baseline.
    let dense_runner = FleetRunner::new(
        pipeline(&store, SsaKernel::Dense, ExecMode::Dataflow, 1, 1, false),
        regions.clone(),
    );
    let t0 = Instant::now();
    dense_runner.run_schedule(&week_days);
    let dense_s = t0.elapsed().as_secs_f64();

    let fast_runner = FleetRunner::new(
        pipeline(&store, SsaKernel::Auto, ExecMode::Dataflow, 1, 16, false),
        regions.clone(),
    );
    let t0 = Instant::now();
    fast_runner.run_schedule(&week_days);
    let fast_s = t0.elapsed().as_secs_f64();

    let dense_tput = server_weeks / dense_s.max(1e-12);
    let fast_tput = server_weeks / fast_s.max(1e-12);
    let speedup = dense_s / fast_s.max(1e-12);

    let mut table = Table::new(["path", "wall s", "server-weeks/s", "speedup"]);
    table.row([
        "dense solo (old)".to_string(),
        format!("{dense_s:.3}"),
        format!("{dense_tput:.1}"),
        "1.00x".to_string(),
    ]);
    table.row([
        "fast (randomized + batched)".to_string(),
        format!("{fast_s:.3}"),
        format!("{fast_tput:.1}"),
        format!("{speedup:.2}x"),
    ]);
    table.print();
    println!(
        "\nrecorded seed baseline: {BASELINE_SERVER_WEEKS_PER_S} server-weeks/s \
         (BENCH_fleet_scale.json, threads=1)\n"
    );

    // ---- Forecast parity vs the dense path -------------------------------
    // Same document ids, every predicted value within the published
    // randomized-kernel tolerance.
    let dense_preds = predictions(dense_runner.pipeline());
    let fast_preds = predictions(fast_runner.pipeline());
    assert_eq!(
        dense_preds.iter().map(|(id, _)| id).collect::<Vec<_>>(),
        fast_preds.iter().map(|(id, _)| id).collect::<Vec<_>>(),
        "fast and dense paths must predict the same server-days"
    );
    let mut parity_max = 0.0f64;
    for ((_, d), (_, f)) in dense_preds.iter().zip(&fast_preds) {
        assert_eq!(d.values.len(), f.values.len());
        for (a, b) in d.values.iter().zip(&f.values) {
            parity_max = parity_max.max((a - b).abs());
        }
    }
    assert!(
        parity_max <= RANDOMIZED_PARITY_TOL,
        "fast-path forecast diverges from dense by {parity_max}, \
         tolerance {RANDOMIZED_PARITY_TOL}"
    );
    println!(
        "parity: {} predictions, max |fast - dense| = {parity_max:.2e} \
         (tolerance {RANDOMIZED_PARITY_TOL:.0e})\n",
        fast_preds.len()
    );

    // ---- Warm cache: exact + similarity-keyed reuse ----------------------
    let warm_runner = FleetRunner::new(
        pipeline(&store, SsaKernel::Auto, ExecMode::Dataflow, 1, 16, true),
        regions.clone(),
    );
    let t0 = Instant::now();
    warm_runner.run_schedule(&week_days);
    let warm_s = t0.elapsed().as_secs_f64();
    let stats = warm_runner.cache_stats();
    println!(
        "warm cache: hit rate {:.1}% ({} exact + {} similarity reuses, {} misses), \
         {warm_s:.3}s wall",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.hits_similarity,
        stats.misses()
    );
    assert!(
        stats.hit_rate() > 0.5,
        "similarity-keyed cache must beat the exact-bytes 50% plateau: {stats:?}"
    );
    assert!(
        stats.hits_similarity > 0,
        "the similarity key must account for reuses beyond exact-bytes hits: {stats:?}"
    );

    // ---- Machine-dependent gate ------------------------------------------
    let assert_mode = std::env::var("SEAGULL_FIT_ASSERT").is_ok_and(|v| v == "1");
    if assert_mode {
        assert!(
            speedup >= SPEEDUP_GATE,
            "fast path is {speedup:.2}x the dense path, gate is {SPEEDUP_GATE}x"
        );
        println!("\nassert mode: speedup {speedup:.2}x >= {SPEEDUP_GATE}x gate");
    }

    emit_json(
        "BENCH_fit",
        &json!({
            "fleet": {
                "regions": regions.len(),
                "servers": servers,
                "weeks": weeks,
                "server_weeks": server_weeks,
                "forecaster": "ssa",
                "class_mix": "pattern-heavy (10% short-lived, 30% stable, 35% daily, \
                              15% weekly, 10% unstable) — not the paper's production mix",
            },
            "determinism": "ok",
            "baseline_recorded_server_weeks_per_s": BASELINE_SERVER_WEEKS_PER_S,
            "dense": {
                "wall_s": dense_s,
                "server_weeks_per_s": dense_tput,
            },
            "fast": {
                "wall_s": fast_s,
                "server_weeks_per_s": fast_tput,
            },
            "speedup_vs_dense": speedup,
            "speedup_vs_recorded_baseline": fast_tput / BASELINE_SERVER_WEEKS_PER_S,
            "parity": {
                "predictions": fast_preds.len(),
                "max_abs_diff": parity_max,
                "tolerance": RANDOMIZED_PARITY_TOL,
            },
            "warm": {
                "wall_s": warm_s,
                "hit_rate": stats.hit_rate(),
                "hits_exact": stats.hits,
                "hits_similarity": stats.hits_similarity,
                "misses": stats.misses(),
            },
            "assert_mode": assert_mode,
            "speedup_gate": SPEEDUP_GATE,
        }),
    )?;

    Ok(())
}
