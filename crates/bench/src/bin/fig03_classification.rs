//! Figure 3 — Classification of servers.
//!
//! Paper: of a random sample of servers from four regions over one month,
//! 42.1 % are short-lived; of the long-lived 58 %, 53.5 % (of all servers)
//! are stable, ~0.2 % follow a daily or weekly pattern, and 4.2 % follow no
//! pattern.

use seagull_bench::{emit_json, fleets, Table};
use seagull_core::classify::{classify_fleet_with, ClassifyConfig, ServerClass};
use serde_json::json;

fn main() -> std::io::Result<()> {
    let (fleet, spec) = fleets::classification_fleet(42);
    let as_of = spec.start_day + 28;
    let report = classify_fleet_with(&fleet, as_of, &ClassifyConfig::default());

    println!(
        "Figure 3: classification of {} servers (4 regions, 1 month)\n",
        report.total()
    );
    let classes = [
        (ServerClass::ShortLived, 42.1),
        (ServerClass::Stable, 53.5),
        (ServerClass::DailyPattern, 0.2),
        (ServerClass::WeeklyPattern, 0.1),
        (ServerClass::NoPattern, 4.2),
    ];
    let mut table = Table::new(["class", "measured %", "paper %"]);
    for (class, paper) in classes {
        table.row([
            class.label().to_string(),
            format!("{:.2}", report.percentage(class)),
            format!("{paper:.1}"),
        ]);
    }
    table.row([
        "long-lived (total)".to_string(),
        format!("{:.2}", report.long_lived_percentage()),
        "58.0".to_string(),
    ]);
    table.print();

    emit_json(
        "fig03_classification",
        &json!({
            "servers": report.total(),
            "measured": classes
                .iter()
                .map(|(c, _)| (c.label(), report.percentage(*c)))
                .collect::<Vec<_>>(),
            "long_lived_pct": report.long_lived_percentage(),
            "paper": {
                "short_lived": 42.1, "stable": 53.5,
                "daily_or_weekly": 0.3, "no_pattern": 4.2, "long_lived": 58.0
            },
        }),
    )?;

    Ok(())
}
