//! Dataflow pipeline benchmark: fused per-server operators vs the batch
//! barrier path, on uniform and skewed fleets.
//!
//! Three sections, all seeded:
//!
//! 1. **Determinism.** The same two-week schedule runs under every cell of
//!    the `{Barrier, Dataflow} × {1, 8 threads}` matrix; canonicalized
//!    outputs (reports, every stored document, the incident log, and
//!    `Obs::stable_export()`) must be byte-identical across all four cells.
//!    Exits non-zero on mismatch — the `dataflow-smoke` CI job relies on
//!    that.
//! 2. **Straggler scheduling.** A fit-cost workload (fixed sleep per fit,
//!    with one deliberate ~300× straggler on the skewed fleet) runs under
//!    both execution modes. The barrier path pays the featurize barrier and
//!    its chunk-mates *on top of* the straggler; the fused path hides the
//!    rest of the fleet inside the straggler's fit. The skewed-fleet
//!    straggler tail ratio (wall / straggler cost) must improve under
//!    Dataflow in the same run, and the bench asserts it.
//! 3. **Competitive execution.** The same fleet trains through
//!    [`CompetitiveForecaster::paper_defaults`] (persistent previous-day vs
//!    SSA under a shared convergence budget) and the win / early-win /
//!    budget-skip rates are reported.
//!
//! Emits `BENCH_dataflow.json`.

use seagull_bench::{emit_json, fleets, scale, Scale, Table};
use seagull_core::pipeline::{
    collections, AmlPipeline, ExecMode, PipelineConfig, PipelineRunReport,
};
use seagull_core::FleetRunner;
use seagull_forecast::{
    CompetitiveForecaster, FittedModel, ForecastError, Forecaster, PersistentForecast,
};
use seagull_telemetry::blobstore::{BlobStore, MemoryBlobStore};
use seagull_telemetry::extract::LoadExtraction;
use seagull_timeseries::TimeSeries;
use serde_json::{json, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The comparable part of a run report: wall-clock stage durations are
/// legitimately machine/mode/thread dependent, everything else must match.
fn semantic_report(report: &PipelineRunReport) -> Value {
    json!({
        "region": report.region,
        "week_start_day": report.week_start_day,
        "stages": report.stages.iter().map(|s| s.stage.clone()).collect::<Vec<_>>(),
        "servers": report.servers,
        "anomalies": report.anomalies,
        "blocked": report.blocked,
        "predictions_written": report.predictions_written,
        "evaluations": report.evaluations,
        "accuracy": report.accuracy,
        "deployed_version": report.deployed_version,
        "degraded": report.degraded,
    })
}

/// Everything a schedule produces, canonicalized for equality comparison.
fn canonical_outputs(runner: &FleetRunner, reports: &[PipelineRunReport]) -> Value {
    let p = runner.pipeline();
    let mut docs = Vec::new();
    for collection in [
        collections::PREDICTIONS,
        collections::ACCURACY,
        collections::FEATURES,
        collections::RUNS,
        collections::DEAD_LETTER,
    ] {
        let mut ids = p.docs.ids(collection);
        ids.sort();
        for id in ids {
            if collection == collections::RUNS {
                let run: PipelineRunReport =
                    p.docs.get(collection, &id).expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), semantic_report(&run)));
            } else {
                let value: Value = p.docs.get(collection, &id).expect("listed doc exists");
                docs.push((format!("{collection}/{id}"), value));
            }
        }
    }
    let incidents: Vec<Value> = p
        .incidents
        .all()
        .iter()
        .map(|i| {
            json!({
                "severity": format!("{:?}", i.severity),
                "source": i.source,
                "region": i.region,
                "key": i.message_key,
                "count": i.count,
            })
        })
        .collect();
    json!({
        "reports": reports.iter().map(semantic_report).collect::<Vec<_>>(),
        "docs": docs,
        "incidents": incidents,
        "stable_export": runner.obs().stable_export(),
    })
}

/// A persistent fit padded with a deterministic sleep — a stand-in for a
/// model whose training cost dwarfs the rest of the fused operator. The
/// first fit of the run optionally sleeps `straggler` instead of `base`,
/// modelling a skewed fleet with one pathologically expensive server.
/// Predictions are untouched, so outputs stay identical across modes.
struct SleepyFit {
    calls: AtomicUsize,
    base: Duration,
    straggler: Duration,
    inner: PersistentForecast,
}

impl SleepyFit {
    fn new(base: Duration, straggler: Duration) -> SleepyFit {
        SleepyFit {
            calls: AtomicUsize::new(0),
            base,
            straggler,
            inner: PersistentForecast::previous_day(),
        }
    }
}

impl Forecaster for SleepyFit {
    fn name(&self) -> &'static str {
        "sleepy-persistent"
    }
    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let first = self.calls.fetch_add(1, Ordering::SeqCst) == 0;
        std::thread::sleep(if first { self.straggler } else { self.base });
        self.inner.fit(history)
    }
}

/// One timed region-week with the given execution mode and forecaster.
fn timed_week(
    store: &Arc<MemoryBlobStore>,
    exec: ExecMode,
    threads: usize,
    forecaster: Arc<dyn Forecaster>,
    region: &str,
    start: i64,
) -> (f64, PipelineRunReport) {
    let config = PipelineConfig {
        exec,
        threads,
        warm_cache: false,
        forecaster,
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, Arc::clone(store) as Arc<dyn BlobStore>);
    let t0 = Instant::now();
    let report = pipeline.run_region_week(region, start);
    (t0.elapsed().as_secs_f64(), report)
}

fn mode_name(exec: ExecMode) -> &'static str {
    match exec {
        ExecMode::Barrier => "barrier",
        ExecMode::Dataflow => "dataflow",
    }
}

fn main() -> std::io::Result<()> {
    let (servers, det_servers) = match scale() {
        Scale::Small => (192, 60),
        Scale::Paper => (512, 200),
    };
    const THREADS: usize = 8;
    let base = Duration::from_millis(2);
    let straggler = Duration::from_millis(600);

    // ---- Determinism across the mode × thread matrix ---------------------
    let (det_fleet, det_spec) = fleets::region_fleet(4242, det_servers, 2);
    let det_region = det_spec.regions[0].name.clone();
    let det_weeks = vec![det_spec.start_day, det_spec.start_day + 7];
    let det_store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &det_fleet,
            std::slice::from_ref(&det_region),
            &det_weeks,
            det_store.as_ref(),
        )
        .expect("extraction succeeds");

    let matrix = [
        (ExecMode::Barrier, 1usize),
        (ExecMode::Barrier, THREADS),
        (ExecMode::Dataflow, 1),
        (ExecMode::Dataflow, THREADS),
    ];
    let canon: Vec<Value> = matrix
        .iter()
        .map(|&(exec, threads)| {
            let config = PipelineConfig {
                exec,
                threads,
                ..PipelineConfig::production()
            };
            let pipeline = AmlPipeline::new(config, Arc::clone(&det_store) as Arc<dyn BlobStore>);
            let runner = FleetRunner::new(pipeline, vec![det_region.clone()]);
            let reports = runner.run_schedule(&det_weeks);
            canonical_outputs(&runner, &reports)
        })
        .collect();
    for (i, &(exec, threads)) in matrix.iter().enumerate().skip(1) {
        assert_eq!(
            canon[0],
            canon[i],
            "{}@{}T diverged from barrier@1T: reports, documents, incidents, \
             and stable exports must be identical across execution modes and \
             thread counts",
            mode_name(exec),
            threads,
        );
    }
    println!(
        "determinism: {det_servers}-server two-week schedule identical across \
         {{barrier, dataflow}} x {{1, {THREADS}}} threads\n"
    );

    // ---- Straggler scheduling: uniform vs skewed fit costs ---------------
    let (fleet, spec) = fleets::region_fleet(1300, servers, 1);
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &[start],
            store.as_ref(),
        )
        .expect("extraction succeeds");

    let mut table = Table::new([
        "fleet",
        "mode",
        "wall s",
        "server-weeks/s",
        "straggler tail",
    ]);
    let mut sched = serde_json::Map::new();
    let mut walls = std::collections::HashMap::new();
    // Short-lived servers drop out of extraction, so the active population
    // can be slightly below the spec'd fleet size; the report is the truth.
    let mut active = 0usize;
    for (fleet_kind, slow) in [("uniform", base), ("skewed", straggler)] {
        for exec in [ExecMode::Barrier, ExecMode::Dataflow] {
            let (wall, report) = timed_week(
                &store,
                exec,
                THREADS,
                Arc::new(SleepyFit::new(base, slow)),
                &region,
                start,
            );
            assert!(!report.blocked);
            active = report.servers;
            let tail = wall / straggler.as_secs_f64();
            let tail_cell = if fleet_kind == "skewed" {
                format!("{tail:.2}x")
            } else {
                "-".into()
            };
            table.row([
                fleet_kind.into(),
                mode_name(exec).into(),
                format!("{wall:.3}"),
                format!("{:.1}", active as f64 / wall.max(1e-12)),
                tail_cell,
            ]);
            let row = if fleet_kind == "skewed" {
                json!({
                    "wall_s": wall,
                    "server_weeks_per_s": active as f64 / wall.max(1e-12),
                    "straggler_tail_ratio": tail,
                })
            } else {
                json!({
                    "wall_s": wall,
                    "server_weeks_per_s": active as f64 / wall.max(1e-12),
                })
            };
            sched.insert(format!("{fleet_kind}_{}", mode_name(exec)), row);
            walls.insert((fleet_kind, mode_name(exec)), wall);
        }
    }
    table.print();

    let barrier_skew = walls[&("skewed", "barrier")];
    let dataflow_skew = walls[&("skewed", "dataflow")];
    let tail_improvement = barrier_skew / dataflow_skew.max(1e-12);
    println!(
        "\nskewed-fleet straggler tail: barrier {:.2}x vs dataflow {:.2}x of the \
         straggler's own cost ({tail_improvement:.2}x improvement)",
        barrier_skew / straggler.as_secs_f64(),
        dataflow_skew / straggler.as_secs_f64(),
    );
    assert!(
        dataflow_skew < barrier_skew,
        "fused dataflow must beat the barrier path on a skewed fleet \
         (barrier {barrier_skew:.3}s vs dataflow {dataflow_skew:.3}s): the \
         straggler's fit should hide its siblings' featurize+fit work"
    );

    // ---- Competitive model execution -------------------------------------
    let racer = Arc::new(CompetitiveForecaster::paper_defaults());
    let (competitive_wall, competitive_report) = timed_week(
        &store,
        ExecMode::Dataflow,
        THREADS,
        Arc::clone(&racer) as Arc<dyn Forecaster>,
        &region,
        start,
    );
    let stats = racer.stats();
    println!(
        "\ncompetitive: {} races over {active} servers in {competitive_wall:.3}s \
         ({} early wins, {} budget skips, {} unraced)",
        stats.races, stats.early_wins, stats.budget_skips, stats.unraced
    );
    // Unraced fits fall to the primary candidate, so the win denominator is
    // every fit, not just the scored races.
    let fits = (stats.races + stats.unraced).max(1);
    let mut wins = Table::new(["candidate", "wins", "win rate"]);
    for (name, count) in &stats.wins {
        wins.row([
            (*name).into(),
            format!("{count}"),
            format!("{:.1}%", 100.0 * *count as f64 / fits as f64),
        ]);
    }
    wins.print();

    emit_json(
        "BENCH_dataflow",
        &json!({
            "fleet": {
                "servers": servers,
                "active_servers": active,
                "weeks": 1,
                "threads": THREADS,
                "base_fit_ms": base.as_millis() as u64,
                "straggler_fit_ms": straggler.as_millis() as u64,
            },
            "determinism": {
                "status": "ok",
                "servers": det_servers,
                "weeks": det_weeks.len(),
                "matrix": ["barrier@1", format!("barrier@{THREADS}"),
                           "dataflow@1", format!("dataflow@{THREADS}")],
            },
            "scheduling": Value::Object(sched),
            "straggler_tail_improvement": tail_improvement,
            "competitive": {
                "wall_s": competitive_wall,
                "predictions_written": competitive_report.predictions_written,
                "races": stats.races,
                "early_wins": stats.early_wins,
                "budget_skips": stats.budget_skips,
                "unraced": stats.unraced,
                "wins": stats.wins.iter()
                    .map(|(name, count)| json!({"candidate": name, "wins": count}))
                    .collect::<Vec<_>>(),
            },
        }),
    )?;

    Ok(())
}
