//! Figure 13(a) — Backup-scheduling impact.
//!
//! Paper, over one month of production: for daily-pattern predictable
//! servers, 12.5 % of backups moved into correctly chosen LL windows, 85.3 %
//! of default windows already were the LL window, 2.1 % of LL windows were
//! chosen incorrectly; stable servers: 99.5 % of defaults already optimal;
//! for busy servers (load > 60 %), 7.7 % of collisions with peaks are now
//! avoided — several hundred hours of improved customer experience.
//!
//! Two populations are scheduled: the production Figure-3 mix (overall
//! rates) and a pattern-enriched fleet (per-class rates — the paper's daily/
//! weekly classes are only ~0.3 % of the fleet, far too sparse for per-class
//! percentages at reproduction scale).

use seagull_backup::impact::ImpactCounts;
use seagull_backup::{analyze_impact, BackupScheduler, FabricPropertyStore, SchedulerConfig};
use seagull_bench::{emit_json, scale, Table};
use seagull_core::metrics::ErrorBound;
use seagull_core::par::default_threads;
use seagull_forecast::PersistentForecast;
use seagull_telemetry::fleet::{ClassMix, FleetGenerator, FleetSpec, RegionSpec};
use seagull_telemetry::server::GeneratedClass;
use serde_json::json;

fn schedule(
    spec: FleetSpec,
) -> (
    Vec<seagull_telemetry::fleet::ServerTelemetry>,
    Vec<seagull_backup::ScheduledBackup>,
) {
    let start = spec.start_day;
    // Five weeks: the scheduled week (the fifth) has a full three-week gate
    // plus training history behind every backup day.
    let fleet = FleetGenerator::new(spec).generate_weeks(5);
    let scheduler = BackupScheduler::new(SchedulerConfig {
        threads: default_threads(),
        ..SchedulerConfig::default()
    });
    let model = PersistentForecast::previous_day();
    let fabric = FabricPropertyStore::new();
    let scheduled = scheduler.schedule_week(&fleet, start + 28, &model, &fabric);
    (fleet, scheduled)
}

fn main() -> std::io::Result<()> {
    let factor = scale().factor();

    // Population 1: the production mix.
    let (fleet, scheduled) = schedule(FleetSpec::four_regions(42, 40 * factor));
    let report = analyze_impact(&fleet, &scheduled, &ErrorBound::default(), 60.0);

    // Population 2: pattern-enriched, for per-class rates.
    let enriched_spec = FleetSpec {
        seed: 43,
        regions: vec![RegionSpec {
            name: "enriched".into(),
            servers: 1200 * factor,
        }],
        start_day: 17_997,
        grid_min: 5,
        mix: ClassMix {
            short_lived: 0.0,
            stable: 0.40,
            daily: 0.25,
            weekly: 0.15,
            unstable: 0.20,
        },
        capacity_reaching: 0.037,
    };
    let (efleet, escheduled) = schedule(enriched_spec);
    let ereport = analyze_impact(&efleet, &escheduled, &ErrorBound::default(), 60.0);

    println!(
        "Figure 13(a): impact over {} scheduled backups (production mix)\n",
        report.overall.total
    );
    let mut t = Table::new([
        "population",
        "moved to LL %",
        "default already LL %",
        "incorrect %",
        "kept default %",
        "n",
    ]);
    let add = |t: &mut Table, label: &str, c: ImpactCounts| {
        t.row([
            label.to_string(),
            format!("{:.1}", c.moved_pct()),
            format!("{:.1}", c.already_optimal_pct()),
            format!("{:.1}", c.incorrect_pct()),
            format!("{:.1}", c.kept_default_pct()),
            c.total.to_string(),
        ]);
    };
    add(&mut t, "all servers (Fig.3 mix)", report.overall);
    add(
        &mut t,
        "stable (Fig.3 mix)",
        report.class_counts(GeneratedClass::Stable),
    );
    t.print();

    println!("\nper-class rates (pattern-enriched fleet):\n");
    let mut t2 = Table::new([
        "class",
        "moved to LL %",
        "default already LL %",
        "incorrect %",
        "kept default %",
        "n",
    ]);
    for class in [
        GeneratedClass::Stable,
        GeneratedClass::DailyPattern,
        GeneratedClass::WeeklyPattern,
        GeneratedClass::Unstable,
    ] {
        add(&mut t2, class.label(), ereport.class_counts(class));
    }
    t2.print();

    println!(
        "\nbusy servers (>60% load, production mix): {} collisions with peaks, \
         {} avoided ({:.1}%) [paper: 7.7%]",
        report.busy_collisions,
        report.busy_collisions_avoided,
        report.busy_avoided_pct()
    );
    println!(
        "busy servers (enriched): {} collisions, {} avoided ({:.1}%)",
        ereport.busy_collisions,
        ereport.busy_collisions_avoided,
        ereport.busy_avoided_pct()
    );
    println!(
        "hours of improved customer experience this week: {:.1} h (production mix), \
         {:.1} h (enriched) [paper: several hundred per month across all regions]",
        report.hours_improved, ereport.hours_improved
    );
    println!(
        "\npaper reference (daily-pattern predictable): moved 12.5%, already-LL 85.3%, \
         incorrect 2.1%; stable: 99.5% already-LL"
    );

    emit_json(
        "fig13a_impact",
        &json!({
            "production_mix": {
                "overall": report.overall,
                "stable": report.class_counts(GeneratedClass::Stable),
                "busy_collisions": report.busy_collisions,
                "busy_avoided_pct": report.busy_avoided_pct(),
                "hours_improved": report.hours_improved,
            },
            "enriched": {
                "by_class": ereport.by_class.iter()
                    .map(|(c, n)| (c.label(), n)).collect::<Vec<_>>(),
                "busy_collisions": ereport.busy_collisions,
                "busy_avoided_pct": ereport.busy_avoided_pct(),
                "hours_improved": ereport.hours_improved,
            },
            "paper": { "daily_moved": 12.5, "daily_already": 85.3, "daily_incorrect": 2.1,
                       "stable_already": 99.5, "busy_avoided": 7.7 },
        }),
    )?;

    Ok(())
}
