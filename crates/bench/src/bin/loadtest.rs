//! Load-test bench: where does the serving read path saturate, and how
//! does it fail?
//!
//! Three phases against a pipeline-published [`ServeService`] (methodology
//! per the load-testing notes in `crates/bench/src/loadtest.rs`):
//!
//! 1. **Closed-loop peak** — a worker pool fires back-to-back predictions;
//!    measures service time and peak sustainable QPS at 1 worker and at
//!    `SEAGULL_THREADS` workers (default 8). When workers exceed machine
//!    cores the scaling row is marked *oversubscribed* — the absolute
//!    numbers stay honest, the scaling ratio does not mean much.
//! 2. **Open-loop knee sweep** — seeded Poisson arrivals at increasing
//!    fractions of the measured peak; latency is sojourn time (completion −
//!    scheduled arrival), so queueing under saturation is visible. The
//!    *knee* is the last offered rate the service absorbed (achieved ≥ 95%
//!    of offered, p99 under [`KNEE_P99_BOUND_US`]).
//! 3. **Overload: shed vs degrade** — trips one region's circuit breaker
//!    and confirms overload sheds fast (breaker rejections strictly
//!    cheaper than served requests, and no served request slows down)
//!    instead of degrading everyone, then walks the breaker through
//!    cooldown → half-open → closed and confirms the region serves again.
//!
//! The moderate-load sweep point is **SLO-gated** through
//! [`seagull_watch::SloGate`] — the same `SloSpec` machinery production
//! monitoring uses — and any failing gate exits non-zero (the
//! `loadtest-smoke` CI job relies on that). Response digests are FNV-1a
//! folded in request order and written to `experiments/loadtest_digest.txt`;
//! CI runs the bench at `SEAGULL_THREADS=1` and `=8` and diffs the file, so
//! the read path must stay byte-deterministic across thread counts.

use seagull_bench::loadtest::{
    find_knee, fnv1a_fold, fnv1a_fold_f64s, fnv1a_fold_u64, ClosedLoop, OpenLoop, OverloadStats,
    SweepPoint, FNV_OFFSET,
};
use seagull_bench::{emit_json, emit_text, scale, Scale, Table};
use seagull_core::pipeline::{AmlPipeline, PipelineConfig};
use seagull_core::{FleetRunner, IncidentManager};
use seagull_forecast::PersistentForecast;
use seagull_serve::{ServeError, ServeService};
use seagull_telemetry::blobstore::{BlobStore, MemoryBlobStore};
use seagull_telemetry::chaos::DetRng;
use seagull_telemetry::extract::LoadExtraction;
use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

/// p99 sojourn bound (µs) a sweep point must stay under to count as
/// "absorbed" for knee finding.
const KNEE_P99_BOUND_US: f64 = 50_000.0;

/// Serving QPS of the pre-shard read path (PR 9's `BENCH_serving.json`
/// best step on the reference machine) — the floor this bench reports its
/// speedup against.
const BASELINE_QPS: f64 = 65_000.0;

/// One prediction query: `(region index, server, horizon)`.
type Query = (usize, u64, usize);

/// Deterministic FNV digest of one prediction outcome: start timestamp and
/// exact value bits on success, the error rendering otherwise. Everything
/// except wall time.
fn digest_response(r: &Result<seagull_timeseries::TimeSeries, ServeError>) -> u64 {
    match r {
        Ok(s) => {
            let h = fnv1a_fold_u64(FNV_OFFSET, s.start().minutes() as u64);
            fnv1a_fold_f64s(h, s.values())
        }
        Err(e) => fnv1a_fold(FNV_OFFSET, format!("err:{e}").as_bytes()),
    }
}

fn main() -> std::io::Result<()> {
    let (per_region_unit, weeks, closed_requests, sweep_requests) = match scale() {
        Scale::Small => (2, 3, 40_000usize, 10_000usize),
        Scale::Paper => (12, 4, 200_000usize, 50_000usize),
    };
    let threads: usize = std::env::var("SEAGULL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(8);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let oversubscribed = threads > cores;

    // ---- Fleet → pipeline → published snapshots --------------------------
    let spec = FleetSpec::four_regions(90, per_region_unit);
    let regions: Vec<String> = spec.regions.iter().map(|r| r.name.clone()).collect();
    let start = spec.start_day;
    let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
    let fleet: Vec<ServerTelemetry> = FleetGenerator::new(spec).generate_weeks(weeks);

    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::default()
        .run(&fleet, &regions, &week_days, store.as_ref())
        .expect("extraction succeeds");

    let serve = ServeService::with_defaults();
    let config = PipelineConfig {
        threads: 4,
        warm_cache: true,
        forecaster: Arc::new(PersistentForecast::previous_day()),
        ..PipelineConfig::production()
    };
    let pipeline = AmlPipeline::new(config, Arc::clone(&store) as Arc<dyn BlobStore>)
        .with_deploy_sink(Arc::new(serve.clone()));
    FleetRunner::new(pipeline, regions.clone()).run_schedule(&week_days);
    serve.set_clock_day(start + 7 * weeks as i64);

    let catalog: Vec<(usize, Vec<u64>)> = regions
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            serve
                .snapshot(r)
                .map(|s| (i, s.server_ids().collect::<Vec<u64>>()))
        })
        .filter(|(_, ids)| !ids.is_empty())
        .collect();
    assert!(
        !catalog.is_empty(),
        "the schedule must publish at least one non-empty snapshot"
    );

    // Pre-generated query set, reused by every run so the digest depends
    // only on the read path, never on the generator's timing.
    let mut rng = DetRng::new(0x10ad_7e57);
    let n_queries = closed_requests.max(sweep_requests);
    let queries: Vec<Query> = (0..n_queries)
        .map(|_| {
            let (region, ids) = &catalog[(rng.next_u64() % catalog.len() as u64) as usize];
            let server = ids[(rng.next_u64() % ids.len() as u64) as usize];
            (*region, server, 1 + (rng.next_u64() % 96) as usize)
        })
        .collect();
    let query = |i: usize| {
        let (region, server, horizon) = queries[i % queries.len()];
        digest_response(&serve.predict(&regions[region], server, horizon))
    };

    println!(
        "Load test: {} served regions, {n_queries} distinct queries, \
         {threads} reader threads on {cores} cores{}\n",
        catalog.len(),
        if oversubscribed {
            " (oversubscribed)"
        } else {
            ""
        }
    );

    // ---- Phase 1: closed-loop peak ---------------------------------------
    println!("phase 1: closed-loop peak (service time, back-to-back)");
    let mut closed_rows = Vec::new();
    let mut closed_table = Table::new(["workers", "qps", "p50 us", "p95 us", "p99 us"]);
    let mut single_qps = 0f64;
    let mut peak_qps = 0f64;
    let mut peak_digest = 0u64;
    let mut worker_steps = vec![1usize];
    if threads > 1 {
        worker_steps.push(threads);
    }
    for &workers in &worker_steps {
        let run = ClosedLoop::new(workers)
            .requests(closed_requests)
            .run(query);
        if workers == 1 {
            single_qps = run.achieved_qps;
            peak_digest = run.digest;
        } else {
            assert_eq!(
                run.digest, peak_digest,
                "closed-loop digests must match across worker counts"
            );
        }
        peak_qps = peak_qps.max(run.achieved_qps);
        closed_table.row([
            format!("{workers}"),
            format!("{:.0}", run.achieved_qps),
            format!("{:.1}", run.quantile_us(0.50)),
            format!("{:.1}", run.quantile_us(0.95)),
            format!("{:.1}", run.quantile_us(0.99)),
        ]);
        closed_rows.push(json!({
            "workers": workers,
            "requests": closed_requests,
            "qps": run.achieved_qps,
            "latency_us": {
                "p50": run.quantile_us(0.50),
                "p95": run.quantile_us(0.95),
                "p99": run.quantile_us(0.99),
            },
        }));
    }
    closed_table.print();
    let scaling = peak_qps / single_qps.max(1e-12);
    let speedup = peak_qps / BASELINE_QPS;
    println!(
        "peak {peak_qps:.0} qps = {speedup:.1}x the {BASELINE_QPS:.0} qps pre-shard baseline; \
         1→{threads} worker scaling {scaling:.2}x{}\n",
        if oversubscribed {
            " (oversubscribed: workers > cores, ratio not meaningful)"
        } else {
            ""
        }
    );

    // ---- Phase 2: open-loop sweep → knee ---------------------------------
    // Open-loop generators hold a wall-clock schedule by spin-waiting the
    // final half-millisecond; oversubscribed generator threads steal the
    // CPU from each other and the measured sojourn becomes scheduler
    // queueing, not service queueing. Cap generators at the core count —
    // the digest stays thread-count independent either way, which is what
    // the CI equality check exercises.
    let gen_threads = threads.min(cores);
    println!(
        "phase 2: open-loop sweep (sojourn time vs offered rate, {gen_threads} generator threads)"
    );
    let fractions = [0.25, 0.50, 0.70, 0.85, 1.00, 1.20];
    let mut points = Vec::new();
    let mut sweep_rows = Vec::new();
    let mut sweep_digest = None;
    let mut sweep_table = Table::new([
        "offered qps",
        "achieved qps",
        "p50 us",
        "p95 us",
        "p99 us",
        "absorbed",
    ]);
    let mut gate_latencies: Vec<f64> = Vec::new();
    for (i, frac) in fractions.iter().enumerate() {
        let rate = (frac * peak_qps).max(1_000.0);
        let run = OpenLoop::new(0x5eed_0000 + i as u64)
            .rate_qps(rate)
            .requests(sweep_requests)
            .run(gen_threads, query);
        match sweep_digest {
            None => sweep_digest = Some(run.digest),
            Some(d) => assert_eq!(
                d, run.digest,
                "every sweep point issues the same queries — digests must match"
            ),
        }
        if i == 1 {
            // The moderate-load point (50% of peak) feeds the SLO gate: a
            // stable operating point, not the saturation edge.
            gate_latencies = run.latencies_us.clone();
        }
        let point = SweepPoint::from_run(&run);
        sweep_table.row([
            format!("{:.0}", point.offered_qps),
            format!("{:.0}", point.achieved_qps),
            format!("{:.1}", point.p50_us),
            format!("{:.1}", point.p95_us),
            format!("{:.1}", point.p99_us),
            if point.absorbed(KNEE_P99_BOUND_US) {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
        sweep_rows.push(json!({
            "offered_qps": point.offered_qps,
            "achieved_qps": point.achieved_qps,
            "latency_us": { "p50": point.p50_us, "p95": point.p95_us, "p99": point.p99_us },
            "absorbed": point.absorbed(KNEE_P99_BOUND_US),
        }));
        points.push(point);
    }
    sweep_table.print();
    let knee = find_knee(&points, KNEE_P99_BOUND_US);
    let knee_row = knee.map(|i| &points[i]);
    match knee_row {
        Some(p) => println!(
            "knee: {:.0} qps absorbed (p50 {:.1}µs, p95 {:.1}µs, p99 {:.1}µs)\n",
            p.achieved_qps, p.p50_us, p.p95_us, p.p99_us
        ),
        None => println!("knee: not found — even the lowest offered rate saturated\n"),
    }

    // ---- Phase 3: overload — shed vs degrade -----------------------------
    println!("phase 3: overload behavior (breaker tripped on one region)");
    let incidents = IncidentManager::new();
    let (overload_region_idx, _) = catalog[0];
    let overload_region = regions[overload_region_idx].clone();
    let trip_tick = serve.clock_day();
    for _ in 0..serve.breaker().config().trip_threshold {
        serve
            .breaker()
            .record_failure(&overload_region, trip_tick, &incidents);
    }
    let outcomes: Vec<(f64, bool)> = (0..sweep_requests)
        .map(|i| {
            let (region, server, horizon) = queries[i % queries.len()];
            let q0 = Instant::now();
            let result = serve.predict(&regions[region], server, horizon);
            let lat = q0.elapsed().as_secs_f64() * 1e6;
            (lat, matches!(result, Err(ServeError::Rejected { .. })))
        })
        .collect();
    let stats = OverloadStats::classify(&outcomes);
    assert!(
        stats.shed > 0,
        "the tripped region's requests must be shed, not served"
    );
    let shed_speedup = stats.served_p50_us / stats.shed_p50_us.max(1e-12);
    println!(
        "  shed {} ({:.0}% of traffic) at p50 {:.2}µs; served {} at p50 {:.2}µs \
         — shedding is {shed_speedup:.0}x cheaper than serving",
        stats.shed,
        stats.shed_fraction() * 100.0,
        stats.shed_p50_us,
        stats.served,
        stats.served_p50_us,
    );

    // Cooldown → half-open probe → closed: the shed region recovers.
    let cooldown = serve.breaker().config().cooldown_ticks;
    let recovery_tick = trip_tick + cooldown;
    assert!(
        serve.breaker().allow(&overload_region, recovery_tick),
        "cooldown elapsed — the half-open probe must be admitted"
    );
    serve
        .breaker()
        .record_success(&overload_region, recovery_tick, &incidents);
    let (_, ids) = &catalog[0];
    let recovered = serve.predict(&overload_region, ids[0], 1);
    assert!(
        !matches!(recovered, Err(ServeError::Rejected { .. })),
        "after cooldown + successful probe the region must serve again"
    );
    println!("  recovery: breaker closed after {cooldown}-tick cooldown, region serves again\n");

    // ---- SLO gate (seagull-watch SloSpec machinery) ----------------------
    let gate = seagull_watch::SloGate::latency_us(
        "loadtest",
        &[(0.50, 2_000.0), (0.95, 10_000.0), (0.99, 50_000.0)],
    );
    gate.observe_all(&gate_latencies);
    let report = gate.report();
    println!(
        "SLO gate (sojourn at 50% of peak, {} samples):",
        gate_latencies.len()
    );
    let mut slo_rows = Vec::new();
    for v in &report.verdicts {
        println!(
            "  {:16} attained {:>7.3}% (need {:>6.2}% under {:>9.1}µs)  {}",
            v.name,
            v.attained_pct,
            v.required_pct,
            v.threshold,
            if v.pass { "PASS" } else { "FAIL" }
        );
        slo_rows.push(json!({
            "slo": v.name,
            "threshold_us": v.threshold,
            "required_pct": v.required_pct,
            "attained_pct": v.attained_pct,
            "pass": v.pass,
        }));
    }

    // ---- Artifacts -------------------------------------------------------
    let digest = sweep_digest.expect("sweep ran");
    emit_text(
        "loadtest_digest.txt",
        &format!("closed:{peak_digest:016x}\nsweep:{digest:016x}\n"),
    )?;
    emit_json(
        "BENCH_loadtest",
        &json!({
            "machine_cores": cores,
            "reader_threads": threads,
            "oversubscribed": oversubscribed,
            "queries": n_queries,
            "closed_loop": {
                "rows": closed_rows,
                "peak_qps": peak_qps,
                "single_worker_qps": single_qps,
                "scaling_1_to_n": scaling,
                "baseline_qps": BASELINE_QPS,
                "speedup_vs_baseline": speedup,
            },
            "open_loop_sweep": {
                "generator_threads": gen_threads,
                "p99_bound_us": KNEE_P99_BOUND_US,
                "rows": sweep_rows,
                "knee": knee_row.map(|p| json!({
                    "offered_qps": p.offered_qps,
                    "achieved_qps": p.achieved_qps,
                    "latency_us": { "p50": p.p50_us, "p95": p.p95_us, "p99": p.p99_us },
                })),
            },
            "overload": {
                "region": overload_region,
                "shed": stats.shed,
                "served": stats.served,
                "shed_fraction": stats.shed_fraction(),
                "shed_p50_us": stats.shed_p50_us,
                "served_p50_us": stats.served_p50_us,
                "shed_speedup": shed_speedup,
                "recovered_after_cooldown": true,
            },
            "slo_gate": { "pass": report.pass, "slos": slo_rows },
            "digest": format!("{digest:016x}"),
        }),
    )?;

    assert!(report.pass, "load-test SLO gate failed — see table above");
    Ok(())
}
