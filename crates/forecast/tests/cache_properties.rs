//! Property-based tests for the warm-model cache: LRU eviction order and
//! capacity bound, invalidation invariants (fingerprint/class), and the
//! hit/miss accounting identity, under arbitrary commit/lookup sequences.

use proptest::prelude::*;
use seagull_forecast::{CacheUpdate, FittedModel, ForecastError, Lookup, MissReason, ModelCache};
use seagull_timeseries::{TimeSeries, Timestamp, MINUTES_PER_WEEK};
use std::sync::Arc;
use std::time::Duration;

struct DummyFit {
    anchor: Timestamp,
    step_min: u32,
}

impl FittedModel for DummyFit {
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
        TimeSeries::from_fn(self.anchor, self.step_min, horizon, |_| 1.0)
            .map_err(ForecastError::Series)
    }
}

/// One whole week of 30-minute samples starting `start_week` weeks in.
fn series(start_week: i64, value: f64) -> TimeSeries {
    TimeSeries::from_fn(
        Timestamp::from_minutes(start_week * MINUTES_PER_WEEK),
        30,
        7 * 48,
        |_| value,
    )
    .unwrap()
}

/// Same grid as [`series`] but a daily sawtooth, so its quantized shape
/// sketch differs from any constant series (blocks similarity reuse).
fn ramp(start_week: i64) -> TimeSeries {
    TimeSeries::from_fn(
        Timestamp::from_minutes(start_week * MINUTES_PER_WEEK),
        30,
        7 * 48,
        |t| 10.0 + 40.0 * ((t.minutes() / 30) % 48) as f64 / 48.0,
    )
    .unwrap()
}

fn update(key: &str, fingerprint: u64, class: &str, history: &TimeSeries) -> CacheUpdate {
    let fitted: Arc<dyn FittedModel> = Arc::new(DummyFit {
        anchor: history.end(),
        step_min: history.step_min(),
    });
    CacheUpdate::new(
        key,
        fingerprint,
        class,
        fitted,
        history,
        Duration::from_millis(1),
    )
}

/// A synthetic commit schedule: (key index, tick order is the vec order).
fn inserts_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..24, 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After eviction the cache never exceeds capacity, the eviction counter
    /// equals the number of entries dropped, and the survivors are exactly
    /// the most-recently-stamped keys (ties broken toward larger keys,
    /// since eviction removes the smallest key among the oldest stamps).
    #[test]
    fn eviction_respects_capacity_and_lru_order(
        inserts in inserts_strategy(),
        capacity in 1usize..12,
    ) {
        let cache = ModelCache::with_capacity(capacity);
        let week = series(0, 10.0);
        // Later commits of the same key overwrite and re-stamp it.
        let mut last_stamp = std::collections::BTreeMap::new();
        for (tick, &k) in inserts.iter().enumerate() {
            let key = format!("r/{k:02}");
            cache.commit(tick as u64, vec![update(&key, u64::from(k), "stable", &week)], &[]);
            last_stamp.insert(key, tick as u64);
        }
        let before = cache.len();
        cache.evict_to_capacity();
        prop_assert!(cache.len() <= capacity);
        prop_assert_eq!(
            cache.stats().evictions as usize,
            before.saturating_sub(capacity.min(before))
        );

        // Reference model: survivors = top-capacity by (stamp desc, key desc).
        let mut ranked: Vec<(&String, &u64)> = last_stamp.iter().map(|(k, s)| (k, s)).collect();
        ranked.sort_by(|(ka, sa), (kb, sb)| sb.cmp(sa).then_with(|| kb.cmp(ka)));
        for (i, (key, _)) in ranked.iter().enumerate() {
            prop_assert_eq!(
                cache.contains(key),
                i < capacity,
                "key {} rank {} capacity {}", key, i, capacity
            );
        }
    }

    /// Invalidation invariants: a changed class label never hits; changed
    /// bytes never hit for a non-stable class; an unchanged fingerprint with
    /// whole-week alignment always hits. The accounting identity
    /// `lookups == hits + misses` holds throughout.
    #[test]
    fn invalidation_and_accounting_invariants(
        fingerprint in any::<u64>(),
        other_fingerprint in any::<u64>(),
        class_idx in 0usize..3,
        weeks_ahead in 0i64..5,
    ) {
        let classes = ["daily-pattern", "weekly-pattern", "no-pattern"];
        let class = classes[class_idx];
        let cache = ModelCache::new();
        let week0 = series(0, 50.0);
        cache.commit(0, vec![update("a/s", fingerprint, class, &week0)], &[]);

        let later = series(weeks_ahead, 50.0);
        // Same fingerprint, same class, week-aligned: always a hit.
        match cache.lookup("a/s", fingerprint, class, &later) {
            Lookup::Hit(hit) => {
                prop_assert_eq!(hit.shift_min, weeks_ahead * MINUTES_PER_WEEK)
            }
            Lookup::Miss(r) => prop_assert!(false, "expected hit, got {r:?}"),
        }
        // Changed class: always a class miss.
        prop_assert!(matches!(
            cache.lookup("a/s", fingerprint, "stable", &later),
            Lookup::Miss(MissReason::Class)
        ));
        // Changed fingerprint AND changed shape on a non-stable class:
        // fingerprint miss (the similarity sketch does not match either).
        if other_fingerprint != fingerprint {
            prop_assert!(matches!(
                cache.lookup("a/s", other_fingerprint, class, &ramp(weeks_ahead)),
                Lookup::Miss(MissReason::Fingerprint)
            ));
            // Changed fingerprint but unchanged shape: the similarity key
            // serves the hit and it lands in the separate counter.
            match cache.lookup("a/s", other_fingerprint, class, &later) {
                Lookup::Hit(hit) => prop_assert!(hit.similarity),
                Lookup::Miss(r) => prop_assert!(false, "expected similarity hit, got {r:?}"),
            }
        }
        // Unknown key: cold miss.
        prop_assert!(matches!(
            cache.lookup("a/other", fingerprint, class, &later),
            Lookup::Miss(MissReason::Cold)
        ));

        let stats = cache.stats();
        let lookups = 3 + 2 * u64::from(other_fingerprint != fingerprint);
        prop_assert_eq!(stats.hits + stats.hits_similarity + stats.misses(), lookups);
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.hits_similarity, u64::from(other_fingerprint != fingerprint));
        prop_assert_eq!(stats.misses_cold, 1);
    }

    /// Commit is idempotent on contents: re-committing the same update keeps
    /// exactly one entry per key, and hit-key recency bumps never grow the
    /// cache.
    #[test]
    fn commit_never_duplicates_keys(
        keys in proptest::collection::vec(0u8..10, 1..40),
    ) {
        let cache = ModelCache::new();
        let week = series(0, 5.0);
        let mut distinct = std::collections::BTreeSet::new();
        for (tick, &k) in keys.iter().enumerate() {
            let key = format!("r/{k}");
            cache.commit(tick as u64, vec![update(&key, 9, "stable", &week)], &[]);
            cache.commit(tick as u64, Vec::new(), &[key.clone()]);
            distinct.insert(key);
        }
        prop_assert_eq!(cache.len(), distinct.len());
    }
}
