//! A Prophet-style additive model.
//!
//! Prophet "forecasts a time series data based on an additive model where
//! non-linear trends are fit with yearly, weekly, and daily seasonality"
//! (Section 5.1). For week-scale server telemetry the relevant structure is a
//! piecewise-linear trend with changepoints plus daily and weekly Fourier
//! seasonality, which is exactly what this module fits.
//!
//! Two fitting backends are provided. [`FitMethod::GradientDescent`] descends
//! the full penalized least-squares objective, re-evaluating the design
//! matrix every iteration — the cost profile of Prophet's per-series MAP
//! optimization, and the default so the Figure 11(a) runtime comparison
//! reproduces the paper's "Prophet does not scale" finding honestly.
//! [`FitMethod::Exact`] solves the same objective in closed form via ridge
//! regression for callers that just want the model.

use crate::{check_history, FittedModel, ForecastError, Forecaster};
use seagull_linalg::{ridge_regression, Matrix};
use seagull_timeseries::{TimeSeries, Timestamp, MINUTES_PER_DAY, MINUTES_PER_WEEK};
use serde::{Deserialize, Serialize};

/// How to optimize the additive objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FitMethod {
    /// Closed-form ridge solution.
    Exact,
    /// Full-gradient descent with the given iteration budget (Prophet-like
    /// per-series optimization cost).
    GradientDescent {
        /// Number of full-gradient iterations.
        iterations: usize,
    },
}

/// Additive-model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdditiveConfig {
    /// Fourier harmonics for the daily period.
    pub daily_harmonics: usize,
    /// Fourier harmonics for the weekly period.
    pub weekly_harmonics: usize,
    /// Number of interior trend changepoints (uniformly spaced over the
    /// first 80 % of history, as Prophet does).
    pub changepoints: usize,
    /// L2 penalty on all coefficients.
    pub ridge_lambda: f64,
    /// Optimization backend.
    pub fit: FitMethod,
}

impl Default for AdditiveConfig {
    fn default() -> Self {
        AdditiveConfig {
            daily_harmonics: 6,
            weekly_harmonics: 3,
            changepoints: 8,
            ridge_lambda: 1.0,
            fit: FitMethod::GradientDescent { iterations: 5000 },
        }
    }
}

/// The additive forecaster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdditiveForecaster {
    config: AdditiveConfig,
}

impl AdditiveForecaster {
    /// Creates a forecaster with the given configuration.
    pub fn new(config: AdditiveConfig) -> AdditiveForecaster {
        AdditiveForecaster { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AdditiveConfig {
        &self.config
    }

    fn feature_dim(&self) -> usize {
        // intercept + slope + changepoints + 2 per harmonic.
        2 + self.config.changepoints
            + 2 * (self.config.daily_harmonics + self.config.weekly_harmonics)
    }

    /// Feature vector for a timestamp. `t0`/`span_min` normalize the trend.
    fn features(&self, at: Timestamp, t0: Timestamp, span_min: f64, out: &mut Vec<f64>) {
        out.clear();
        let c = &self.config;
        let tn = (at - t0) as f64 / span_min;
        out.push(1.0);
        out.push(tn);
        for j in 0..c.changepoints {
            // Changepoints uniformly over the first 80 % of history.
            let cp = 0.8 * (j + 1) as f64 / (c.changepoints + 1) as f64;
            out.push((tn - cp).max(0.0));
        }
        let two_pi = 2.0 * std::f64::consts::PI;
        let mday = at.minute_of_day() as f64 / MINUTES_PER_DAY as f64;
        for k in 1..=c.daily_harmonics {
            let arg = two_pi * k as f64 * mday;
            out.push(arg.sin());
            out.push(arg.cos());
        }
        let mweek = at.minute_of_week() as f64 / MINUTES_PER_WEEK as f64;
        for k in 1..=c.weekly_harmonics {
            let arg = two_pi * k as f64 * mweek;
            out.push(arg.sin());
            out.push(arg.cos());
        }
    }
}

impl Default for AdditiveForecaster {
    fn default() -> Self {
        AdditiveForecaster::new(AdditiveConfig::default())
    }
}

impl Forecaster for AdditiveForecaster {
    fn name(&self) -> &'static str {
        "additive"
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let dim = self.feature_dim();
        check_history(history, dim.max(2 * history.points_per_day().min(48)))?;
        let n = history.len();
        let t0 = history.start();
        let span_min = (history.end() - history.start()) as f64;

        // Build the design matrix once (pool-backed: steady-state fits reuse
        // the previous fit's buffer).
        let mut scratch = Vec::with_capacity(dim);
        let mut design = Matrix::zeros_pooled(n, dim);
        for i in 0..n {
            self.features(history.timestamp_at(i), t0, span_min, &mut scratch);
            design.row_mut(i).copy_from_slice(&scratch);
        }
        // Center the target for conditioning.
        let mean = history.mean();
        let mut y = seagull_linalg::scratch::take(n);
        y.extend(history.values().iter().map(|v| v - mean));

        let fit_result = match self.config.fit {
            FitMethod::Exact => ridge_regression(&design, &y, self.config.ridge_lambda),
            FitMethod::GradientDescent { iterations } => Ok(gradient_descent(
                &design,
                &y,
                self.config.ridge_lambda,
                iterations,
            )),
        };
        design.recycle();
        seagull_linalg::scratch::recycle(y);
        let coef = fit_result?;

        Ok(Box::new(FittedAdditive {
            forecaster: *self,
            coef,
            mean,
            t0,
            span_min,
            template: history.clone(),
        }))
    }
}

/// Full-gradient descent on `(1/n)||Ax-b||² + λ/n ||x||²` with a step size
/// from a power-iteration estimate of the Lipschitz constant. The design
/// matrix is re-traversed every iteration by construction (see module docs).
fn gradient_descent(a: &Matrix, b: &[f64], lambda: f64, iterations: usize) -> Vec<f64> {
    let (n, d) = a.shape();
    let nf = n as f64;
    // Estimate the largest eigenvalue of (AᵀA)/n with a few power iterations.
    let mut v = vec![1.0f64; d];
    let mut lip = 1.0;
    for _ in 0..20 {
        // w = Aᵀ(A v) / n
        let av = a.matvec(&v).expect("shape checked");
        let mut w = vec![0.0f64; d];
        for (i, &s) in av.iter().enumerate() {
            for (wj, &r) in w.iter_mut().zip(a.row(i)) {
                *wj += r * s;
            }
        }
        for wj in &mut w {
            *wj /= nf;
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            break;
        }
        lip = norm;
        for (vj, wj) in v.iter_mut().zip(&w) {
            *vj = wj / norm;
        }
    }
    let step = 1.0 / (2.0 * (lip + lambda / nf) + 1e-9);

    let mut x = vec![0.0f64; d];
    for _ in 0..iterations {
        // grad = 2 Aᵀ(Ax − b)/n + 2 λ x / n, computed against the full
        // design matrix each iteration.
        let ax = a.matvec(&x).expect("shape checked");
        let mut grad = vec![0.0f64; d];
        for i in 0..n {
            let r = ax[i] - b[i];
            if r == 0.0 {
                continue;
            }
            let row = a.row(i);
            for (g, &v) in grad.iter_mut().zip(row) {
                *g += r * v;
            }
        }
        for (j, g) in grad.iter_mut().enumerate() {
            *g = 2.0 * (*g + lambda * x[j]) / nf;
        }
        for (xj, g) in x.iter_mut().zip(&grad) {
            *xj -= step * g;
        }
    }
    x
}

struct FittedAdditive {
    forecaster: AdditiveForecaster,
    coef: Vec<f64>,
    mean: f64,
    t0: Timestamp,
    span_min: f64,
    template: TimeSeries,
}

impl FittedModel for FittedAdditive {
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
        let start = self.template.end();
        let step = self.template.step_min();
        let mut scratch = Vec::with_capacity(self.coef.len());
        let mut values = Vec::with_capacity(horizon);
        for i in 0..horizon {
            let at = start + i as i64 * step as i64;
            self.forecaster
                .features(at, self.t0, self.span_min, &mut scratch);
            let v: f64 = scratch.iter().zip(&self.coef).map(|(f, c)| f * c).sum();
            values.push((v + self.mean).clamp(0.0, 100.0));
        }
        Ok(TimeSeries::new(start, step, values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{daily_sine, rmse};

    fn exact() -> AdditiveForecaster {
        AdditiveForecaster::new(AdditiveConfig {
            fit: FitMethod::Exact,
            ..AdditiveConfig::default()
        })
    }

    #[test]
    fn repeated_fits_reuse_scratch_buffers() {
        let hist = daily_sine(3, 15);
        let model = exact();
        // First fit seeds this thread's pool; later fits draw from it.
        model.fit(&hist).unwrap();
        let before = seagull_linalg::scratch::stats();
        model.fit(&hist).unwrap();
        let after = seagull_linalg::scratch::stats();
        assert!(
            after.reuses > before.reuses,
            "second fit reused no scratch buffers ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn exact_fit_recovers_daily_sine() {
        let hist = daily_sine(7, 15);
        let pred = exact().fit_predict(&hist, 96).unwrap();
        let truth = daily_sine(8, 15);
        let expect = truth.slice(hist.end(), hist.end() + 1440).unwrap();
        let err = rmse(&pred, &expect);
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn gradient_descent_approaches_exact() {
        let hist = daily_sine(5, 15);
        let gd = AdditiveForecaster::new(AdditiveConfig {
            fit: FitMethod::GradientDescent { iterations: 3000 },
            ..AdditiveConfig::default()
        });
        let pe = exact().fit_predict(&hist, 96).unwrap();
        let pg = gd.fit_predict(&hist, 96).unwrap();
        let diff = rmse(&pe, &pg);
        assert!(diff < 3.0, "gd vs exact rmse {diff}");
    }

    #[test]
    fn weekly_seasonality_captured() {
        // Weekdays 60, weekends 10: the weekly Fourier terms must pick the
        // structure up well enough to tell a Saturday from a Wednesday.
        let hist = TimeSeries::from_fn(
            seagull_timeseries::Timestamp::from_days(700),
            15,
            3 * 7 * 96,
            |t| {
                if t.day_of_week().is_weekend() {
                    10.0
                } else {
                    60.0
                }
            },
        )
        .unwrap();
        let model = AdditiveForecaster::new(AdditiveConfig {
            weekly_harmonics: 8,
            daily_harmonics: 2,
            changepoints: 0,
            ridge_lambda: 0.1,
            fit: FitMethod::Exact,
        });
        let fitted = model.fit(&hist).unwrap();
        let pred = fitted.predict(7 * 96).unwrap();
        // Compare mean predicted weekday vs weekend level.
        let mut wd = vec![];
        let mut we = vec![];
        for (t, v) in pred.iter() {
            if t.day_of_week().is_weekend() {
                we.push(v);
            } else {
                wd.push(v);
            }
        }
        let wd_mean = seagull_timeseries::mean(&wd);
        let we_mean = seagull_timeseries::mean(&we);
        assert!(
            wd_mean - we_mean > 30.0,
            "weekday {wd_mean} vs weekend {we_mean}"
        );
    }

    #[test]
    fn trend_extends_into_forecast() {
        // Rising linear trend, no seasonality.
        let hist = TimeSeries::from_fn(
            seagull_timeseries::Timestamp::from_days(10),
            15,
            5 * 96,
            |t| 10.0 + 0.005 * (t - seagull_timeseries::Timestamp::from_days(10)) as f64 / 15.0,
        )
        .unwrap();
        let model = AdditiveForecaster::new(AdditiveConfig {
            daily_harmonics: 0,
            weekly_harmonics: 0,
            changepoints: 4,
            ridge_lambda: 1e-6,
            fit: FitMethod::Exact,
        });
        let pred = model.fit(&hist).unwrap().predict(96).unwrap();
        let last = hist.values()[hist.len() - 1];
        assert!(pred.values()[95] > last + 0.3, "trend should continue");
    }

    #[test]
    fn insufficient_history_rejected() {
        let hist =
            TimeSeries::from_fn(seagull_timeseries::Timestamp::from_days(10), 15, 10, |_| {
                1.0
            })
            .unwrap();
        assert!(matches!(
            exact().fit(&hist),
            Err(ForecastError::InsufficientHistory { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut hist = daily_sine(3, 15);
        hist.values_mut()[5] = f64::NAN;
        assert!(matches!(
            exact().fit(&hist),
            Err(ForecastError::NonFiniteHistory)
        ));
    }

    #[test]
    fn predictions_clamped_to_percentage() {
        let hist = daily_sine(3, 15);
        let pred = exact().fit_predict(&hist, 500).unwrap();
        for v in pred.values() {
            assert!((0.0..=100.0).contains(v));
        }
    }

    #[test]
    fn feature_dim_matches_features() {
        let f = exact();
        let mut v = Vec::new();
        f.features(
            seagull_timeseries::Timestamp::from_days(3),
            seagull_timeseries::Timestamp::from_days(2),
            1440.0,
            &mut v,
        );
        assert_eq!(v.len(), f.feature_dim());
    }
}
