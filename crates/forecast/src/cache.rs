//! Warm-model cache: skip re-selection and re-fit for servers whose series
//! did not materially change since the last run.
//!
//! The pipeline re-fits every server every week, but most fleet series are
//! stable week over week (that is the paper's core observation — low-load
//! windows recur). [`ModelCache`] keeps the last fitted model per server,
//! keyed by a fingerprint of the quantized series bytes plus the server's
//! classification label. A lookup hits when
//!
//! * the fingerprint and classification are unchanged (byte-identical
//!   input ⇒ identical fit), or
//! * the server is classified *stable*, the new history has the same shape,
//!   and [`crate::diagnostics::series_drift`] does not flag a level/scale
//!   shift against the statistics captured at fit time, or
//! * the new history's quantized shape sketch ([`shape_sketch`]) matches
//!   the one captured at fit time and the same drift gate passes — a
//!   *similarity* reuse, counted separately in
//!   [`CacheStats::hits_similarity`] so the accuracy monitor can veto the
//!   looser key (via [`ModelCache::flag_drift`]) without touching exact
//!   reuse.
//!
//! Reuse across weeks is sound because every forecaster here anchors its
//! prediction at `history.end()` and is translation-equivariant under
//! whole-week shifts (day-of-week and minute-of-day structure is
//! preserved); the caller re-anchors the cached model's output with
//! `TimeSeries::shifted(shift_min)`. A hit therefore requires the new
//! history to start an exact multiple of [`MINUTES_PER_WEEK`] after the
//! cached one.
//!
//! ## Determinism under parallelism
//!
//! Lookups are read-only and run inside the parallel train stage; mutations
//! are batched: the caller commits updates *serially in item order* after
//! the parallel region joins ([`ModelCache::commit`]), and evictions happen
//! only at orchestrator barriers ([`ModelCache::evict_to_capacity`]).
//! Recency is stamped with the caller's scheduler tick, with ties broken by
//! key, so cache state — and thus every hit/miss counter — is a pure
//! function of the input data, independent of thread count and region
//! completion order.

use crate::diagnostics::series_drift;
use crate::FittedModel;
use seagull_timeseries::{TimeSeries, MINUTES_PER_WEEK};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Default capacity: comfortably above any bench fleet, small enough that
/// eviction is exercised by tests.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Segments in the quantized shape sketch.
const SKETCH_BUCKETS: usize = 16;
/// Sketch quantization step, in units of the series' own standard deviation.
const SKETCH_QUANTUM: f64 = 0.25;

/// Quantized shape sketch of a series.
///
/// The series is split into `SKETCH_BUCKETS` equal segments; each
/// segment's mean is z-scored against the whole series, quantized to
/// `SKETCH_QUANTUM`-sigma steps, clamped to an `i8`, and the 16 signed
/// bucket values are packed into a `u128`. Two sketches are *similar*
/// ([`sketches_similar`]) when every bucket agrees to within one quantum —
/// exact equality would make reuse hostage to quantization-boundary jitter
/// (a segment mean sitting at 0.24σ one week and 0.26σ the next). The
/// sketch is deliberately much coarser than the byte fingerprint, which is
/// why the cache only consults it behind the drift gate.
pub fn shape_sketch(values: &[f64]) -> u128 {
    if values.is_empty() {
        return 0;
    }
    let (mean, std) = mean_std(values);
    let scale = std.max(1e-9);
    let n = values.len();
    let mut packed = 0u128;
    for b in 0..SKETCH_BUCKETS {
        let lo = b * n / SKETCH_BUCKETS;
        let hi = ((b + 1) * n / SKETCH_BUCKETS).max(lo + 1).min(n);
        let q = if lo >= hi {
            0i8
        } else {
            let seg = &values[lo..hi];
            let seg_mean = seg.iter().sum::<f64>() / seg.len() as f64;
            let z = (seg_mean - mean) / scale / SKETCH_QUANTUM;
            z.round().clamp(i8::MIN as f64 + 1.0, i8::MAX as f64) as i8
        };
        packed |= (q as u8 as u128) << (8 * b);
    }
    packed
}

/// Whether two shape sketches describe the same normalized shape: every
/// bucket's quantized z-score within one `SKETCH_QUANTUM` step of its
/// counterpart. Identical sketches are trivially similar.
pub fn sketches_similar(a: u128, b: u128) -> bool {
    for bucket in 0..SKETCH_BUCKETS {
        let qa = ((a >> (8 * bucket)) & 0xff) as u8 as i8;
        let qb = ((b >> (8 * bucket)) & 0xff) as u8 as i8;
        if (i16::from(qa) - i16::from(qb)).abs() > 1 {
            return false;
        }
    }
    true
}

struct CacheEntry {
    fingerprint: u64,
    class: String,
    fitted: Arc<dyn FittedModel>,
    /// Training-history grid, for shape checks and week-shift re-anchoring.
    start_min: i64,
    step_min: u32,
    len: usize,
    /// Summary statistics of the training history, the drift baseline.
    mean: f64,
    std: f64,
    /// Quantized shape sketch of the training history, the similarity key.
    sketch: u128,
    /// Wall time the original cold fit took; credited to
    /// [`CacheStats::saved_wall`] on every hit.
    fit_wall: Duration,
    /// Recency stamp: scheduler tick of the last touch (hit or insert).
    stamp: u64,
}

/// Why a lookup missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissReason {
    /// No entry for this server yet.
    Cold,
    /// Fingerprint changed (or the history grid/shape changed) and the
    /// series is not eligible for stable reuse.
    Fingerprint,
    /// The server's classification label changed.
    Class,
    /// Stable reuse was considered but diagnostics flagged drift.
    Drift,
}

/// A successful lookup: the cached fitted model plus how far (in minutes)
/// its prediction must be shifted to anchor at the new history's end.
pub struct CachedFit {
    /// The cached fitted model, shared with the cache entry.
    pub fitted: Arc<dyn FittedModel>,
    /// Minutes to shift the prediction so it anchors at the new history end.
    pub shift_min: i64,
    /// True when the hit came from the quantized-shape similarity key
    /// rather than an exact fingerprint match or stable-class reuse.
    pub similarity: bool,
}

/// Outcome of [`ModelCache::lookup`].
pub enum Lookup {
    /// A reusable fitted model was found.
    Hit(CachedFit),
    /// No reusable entry; the caller must fit cold.
    Miss(MissReason),
}

/// A deferred insert, produced on a miss and applied by
/// [`ModelCache::commit`] after the parallel region joins.
pub struct CacheUpdate {
    key: String,
    fingerprint: u64,
    class: String,
    fitted: Arc<dyn FittedModel>,
    start_min: i64,
    step_min: u32,
    len: usize,
    mean: f64,
    std: f64,
    sketch: u128,
    fit_wall: Duration,
}

impl CacheUpdate {
    /// Packages a cold fit for the serial commit barrier.
    pub fn new(
        key: impl Into<String>,
        fingerprint: u64,
        class: impl Into<String>,
        fitted: Arc<dyn FittedModel>,
        history: &TimeSeries,
        fit_wall: Duration,
    ) -> CacheUpdate {
        let (mean, std) = mean_std(history.values());
        CacheUpdate {
            key: key.into(),
            fingerprint,
            class: class.into(),
            fitted,
            start_min: history.start().minutes(),
            step_min: history.step_min(),
            len: history.len(),
            mean,
            std,
            sketch: shape_sketch(history.values()),
            fit_wall,
        }
    }
}

/// Point-in-time cache counters. All except `saved_wall` are deterministic
/// for a given input stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache by exact fingerprint or stable-class
    /// reuse.
    pub hits: u64,
    /// Lookups served via the quantized-shape similarity key. Kept apart
    /// from `hits` so the accuracy monitor can judge the looser key on its
    /// own record.
    pub hits_similarity: u64,
    /// Lookups that found no entry at all.
    pub misses_cold: u64,
    /// Entries invalidated because the series fingerprint changed.
    pub invalidated_fingerprint: u64,
    /// Entries invalidated because the server changed class.
    pub invalidated_class: u64,
    /// Entries invalidated by an accuracy drift flag.
    pub invalidated_drift: u64,
    /// Entries evicted by the capacity sweep.
    pub evictions: u64,
    /// Cold-fit wall time skipped by hits (sum of the original fit cost of
    /// every reused entry). Wall-clock derived: volatile.
    pub saved_wall: Duration,
}

impl CacheStats {
    /// Total lookups that required a cold fit, for any reason.
    pub fn misses(&self) -> u64 {
        self.misses_cold
            + self.invalidated_fingerprint
            + self.invalidated_class
            + self.invalidated_drift
    }

    /// Hits (exact and similarity) over total lookups; 0.0 when nothing was
    /// looked up.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.hits_similarity;
        let total = served + self.misses();
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

/// LRU cache of fitted models, shared across pipeline runs.
pub struct ModelCache {
    entries: RwLock<BTreeMap<String, CacheEntry>>,
    /// Keys flagged as regressed by an external monitor: the next lookup
    /// misses with [`MissReason::Drift`] so the server is refit. Cleared
    /// when the fresh fit commits.
    flagged: RwLock<BTreeSet<String>>,
    capacity: usize,
    hits: AtomicU64,
    hits_similarity: AtomicU64,
    misses_cold: AtomicU64,
    invalidated_fingerprint: AtomicU64,
    invalidated_class: AtomicU64,
    invalidated_drift: AtomicU64,
    evictions: AtomicU64,
    saved_wall_ns: AtomicU64,
}

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ModelCache {
    /// A cache with the default capacity.
    pub fn new() -> ModelCache {
        ModelCache::default()
    }

    /// A cache holding at most `capacity` fitted models.
    pub fn with_capacity(capacity: usize) -> ModelCache {
        ModelCache {
            entries: RwLock::new(BTreeMap::new()),
            flagged: RwLock::new(BTreeSet::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            hits_similarity: AtomicU64::new(0),
            misses_cold: AtomicU64::new(0),
            invalidated_fingerprint: AtomicU64::new(0),
            invalidated_class: AtomicU64::new(0),
            invalidated_drift: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            saved_wall_ns: AtomicU64::new(0),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached fitted models.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only lookup, safe to call from inside a parallel region.
    ///
    /// `class` is the server's current classification label; `history` the
    /// new training series. Recency is *not* updated here — report hits to
    /// [`ModelCache::commit`] so recency moves deterministically.
    pub fn lookup(&self, key: &str, fingerprint: u64, class: &str, history: &TimeSeries) -> Lookup {
        let entries = self.entries.read().unwrap();
        let Some(entry) = entries.get(key) else {
            self.misses_cold.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss(MissReason::Cold);
        };
        // An externally flagged regression forces a refit regardless of how
        // well the cached entry matches: the accuracy monitor observed the
        // served predictions go wrong, which the fingerprint cannot see.
        if self.flagged.read().unwrap().contains(key) {
            self.invalidated_drift.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss(MissReason::Drift);
        }
        if entry.class != class {
            self.invalidated_class.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss(MissReason::Class);
        }
        let delta = history.start().minutes() - entry.start_min;
        let shape_ok = entry.step_min == history.step_min()
            && entry.len == history.len()
            && delta >= 0
            && delta % MINUTES_PER_WEEK == 0;
        if !shape_ok {
            self.invalidated_fingerprint.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss(MissReason::Fingerprint);
        }
        if entry.fingerprint == fingerprint {
            self.record_hit(entry, false);
            return Lookup::Hit(CachedFit {
                fitted: Arc::clone(&entry.fitted),
                shift_min: delta,
                similarity: false,
            });
        }
        // Changed bytes: stable servers may still reuse the fit if the
        // series has not drifted from the baseline captured at fit time,
        // and any other server whose quantized shape sketch is still
        // similar to the one captured at fit time gets a *similarity*
        // reuse behind the same drift gate. The entry itself is never
        // rewritten on a similarity hit — only recency moves (at commit),
        // so a veto via `flag_drift` restores a clean cold fit.
        let stable = class == "stable";
        let similar = !stable && sketches_similar(entry.sketch, shape_sketch(history.values()));
        if stable || similar {
            let verdict = series_drift(entry.mean, entry.std, history.values());
            if !verdict.drifted {
                self.record_hit(entry, similar);
                return Lookup::Hit(CachedFit {
                    fitted: Arc::clone(&entry.fitted),
                    shift_min: delta,
                    similarity: similar,
                });
            }
            self.invalidated_drift.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss(MissReason::Drift);
        }
        self.invalidated_fingerprint.fetch_add(1, Ordering::Relaxed);
        Lookup::Miss(MissReason::Fingerprint)
    }

    fn record_hit(&self, entry: &CacheEntry, similarity: bool) {
        if similarity {
            self.hits_similarity.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        self.saved_wall_ns
            .fetch_add(entry.fit_wall.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Apply the batched outcome of one run: fresh fits are inserted (or
    /// replace the stale entry) and hit keys have their recency bumped, all
    /// stamped with `tick`. Call after the parallel region joins, passing
    /// updates in item order. Does not evict — see
    /// [`ModelCache::evict_to_capacity`].
    pub fn commit(&self, tick: u64, updates: Vec<CacheUpdate>, hit_keys: &[String]) {
        let mut entries = self.entries.write().unwrap();
        for key in hit_keys {
            if let Some(entry) = entries.get_mut(key) {
                entry.stamp = entry.stamp.max(tick);
            }
        }
        if !updates.is_empty() {
            let mut flagged = self.flagged.write().unwrap();
            for u in &updates {
                flagged.remove(&u.key);
            }
        }
        for u in updates {
            entries.insert(
                u.key,
                CacheEntry {
                    fingerprint: u.fingerprint,
                    class: u.class,
                    fitted: u.fitted,
                    start_min: u.start_min,
                    step_min: u.step_min,
                    len: u.len,
                    mean: u.mean,
                    std: u.std,
                    sketch: u.sketch,
                    fit_wall: u.fit_wall,
                    stamp: tick,
                },
            );
        }
    }

    /// Evict least-recently-used entries (oldest stamp, ties broken by key)
    /// until `len() <= capacity`. Deterministic: call from orchestrator
    /// barriers, never concurrently with lookups whose outcome should not
    /// depend on other regions' progress.
    pub fn evict_to_capacity(&self) {
        let mut entries = self.entries.write().unwrap();
        while entries.len() > self.capacity {
            let victim = entries
                .iter()
                .min_by(|(ka, ea), (kb, eb)| ea.stamp.cmp(&eb.stamp).then_with(|| ka.cmp(kb)))
                .map(|(key, _)| key.clone())
                .expect("non-empty map above capacity");
            entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether an entry exists for `key` (any fingerprint/class).
    pub fn contains(&self, key: &str) -> bool {
        self.entries.read().unwrap().contains_key(key)
    }

    /// Flags `key` as regressed: its next lookup misses with
    /// [`MissReason::Drift`], forcing a refit, and the flag clears when the
    /// fresh fit commits. This is the warm-cache drift gate an online
    /// accuracy monitor pulls when served predictions score badly against
    /// the actuals. Call from a serial step (an orchestrator barrier), not
    /// from inside a parallel region.
    pub fn flag_drift(&self, key: &str) {
        self.flagged.write().unwrap().insert(key.to_string());
    }

    /// Whether `key` is currently flagged for forced refit.
    pub fn drift_flagged(&self, key: &str) -> bool {
        self.flagged.read().unwrap().contains(key)
    }

    /// The cached fitted model for `key`, if any — a read-only extraction
    /// that bypasses fingerprint/class/drift validation and does **not**
    /// count as a lookup or touch recency.
    ///
    /// This is the serving-layer hook: at deploy time the snapshot builder
    /// pulls each server's fitted model out of the warm cache so the
    /// serving read path can answer horizons the materialized predictions
    /// do not cover. Staleness checking is the caller's concern (the model
    /// is whatever the last pipeline run committed).
    pub fn fitted(&self, key: &str) -> Option<Arc<dyn FittedModel>> {
        self.entries
            .read()
            .unwrap()
            .get(key)
            .map(|e| Arc::clone(&e.fitted))
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            hits_similarity: self.hits_similarity.load(Ordering::Relaxed),
            misses_cold: self.misses_cold.load(Ordering::Relaxed),
            invalidated_fingerprint: self.invalidated_fingerprint.load(Ordering::Relaxed),
            invalidated_class: self.invalidated_class.load(Ordering::Relaxed),
            invalidated_drift: self.invalidated_drift.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            saved_wall: Duration::from_nanos(self.saved_wall_ns.load(Ordering::Relaxed)),
        }
    }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForecastError;
    use seagull_timeseries::Timestamp;

    struct DummyFit {
        value: f64,
        anchor: Timestamp,
        step_min: u32,
    }

    impl FittedModel for DummyFit {
        fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
            TimeSeries::from_fn(self.anchor, self.step_min, horizon, |_| self.value)
                .map_err(ForecastError::Series)
        }
    }

    fn series(start_week: i64, value: f64) -> TimeSeries {
        TimeSeries::from_fn(
            Timestamp::from_minutes(start_week * MINUTES_PER_WEEK),
            30,
            7 * 48,
            |_| value,
        )
        .unwrap()
    }

    /// A daily sawtooth: same grid as [`series`] but a distinctly
    /// non-constant shape, so its sketch differs from any constant series.
    fn ramp(start_week: i64, level: f64, amplitude: f64) -> TimeSeries {
        TimeSeries::from_fn(
            Timestamp::from_minutes(start_week * MINUTES_PER_WEEK),
            30,
            7 * 48,
            |t| level + amplitude * ((t.minutes() / 30) % 48) as f64 / 48.0,
        )
        .unwrap()
    }

    fn update(key: &str, fp: u64, class: &str, history: &TimeSeries) -> CacheUpdate {
        let fitted: Arc<dyn FittedModel> = Arc::new(DummyFit {
            value: 1.0,
            anchor: history.end(),
            step_min: history.step_min(),
        });
        CacheUpdate::new(key, fp, class, fitted, history, Duration::from_millis(5))
    }

    #[test]
    fn cold_then_hit_on_same_fingerprint_next_week() {
        let cache = ModelCache::new();
        let week0 = series(0, 10.0);
        assert!(matches!(
            cache.lookup("a/s1", 42, "daily-pattern", &week0),
            Lookup::Miss(MissReason::Cold)
        ));
        cache.commit(0, vec![update("a/s1", 42, "daily-pattern", &week0)], &[]);

        let week1 = series(1, 10.0);
        match cache.lookup("a/s1", 42, "daily-pattern", &week1) {
            Lookup::Hit(hit) => assert_eq!(hit.shift_min, MINUTES_PER_WEEK),
            Lookup::Miss(r) => panic!("expected hit, got {r:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses_cold, 1);
        assert_eq!(stats.saved_wall, Duration::from_millis(5));
    }

    #[test]
    fn fingerprint_and_class_changes_invalidate() {
        let cache = ModelCache::new();
        let week0 = series(0, 10.0);
        cache.commit(0, vec![update("a/s1", 42, "daily-pattern", &week0)], &[]);
        // Changed bytes *and* changed shape: no exact or similarity reuse.
        let reshaped = ramp(1, 10.0, 40.0);
        assert!(matches!(
            cache.lookup("a/s1", 43, "daily-pattern", &reshaped),
            Lookup::Miss(MissReason::Fingerprint)
        ));
        let week1 = series(1, 10.0);
        assert!(matches!(
            cache.lookup("a/s1", 42, "no-pattern", &week1),
            Lookup::Miss(MissReason::Class)
        ));
        let stats = cache.stats();
        assert_eq!(stats.invalidated_fingerprint, 1);
        assert_eq!(stats.invalidated_class, 1);
    }

    #[test]
    fn similarity_reuse_on_matching_sketch() {
        let cache = ModelCache::new();
        let week0 = ramp(0, 10.0, 40.0);
        cache.commit(0, vec![update("a/s1", 42, "daily-pattern", &week0)], &[]);
        // Different bytes, non-stable class, same quantized shape: the
        // similarity key serves the hit and it is counted separately.
        let week1 = ramp(1, 10.0, 40.0);
        match cache.lookup("a/s1", 99, "daily-pattern", &week1) {
            Lookup::Hit(hit) => {
                assert!(hit.similarity);
                assert_eq!(hit.shift_min, MINUTES_PER_WEEK);
            }
            Lookup::Miss(r) => panic!("expected similarity hit, got {r:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.hits_similarity, 1);
        assert!(stats.hit_rate() > 0.99, "similarity hits count in hit_rate");

        // The accuracy monitor can veto the looser key: a drift flag forces
        // the next lookup to refit even though the sketch still matches.
        cache.flag_drift("a/s1");
        assert!(matches!(
            cache.lookup("a/s1", 99, "daily-pattern", &week1),
            Lookup::Miss(MissReason::Drift)
        ));
    }

    #[test]
    fn similarity_reuse_blocked_by_level_drift() {
        let cache = ModelCache::new();
        let week0 = ramp(0, 10.0, 40.0);
        cache.commit(0, vec![update("a/s1", 42, "daily-pattern", &week0)], &[]);
        // The sketch is z-scored, so a pure level/scale shift leaves it
        // unchanged — exactly the case the drift gate must catch.
        let shifted = ramp(1, 80.0, 40.0);
        assert!(matches!(
            cache.lookup("a/s1", 99, "daily-pattern", &shifted),
            Lookup::Miss(MissReason::Drift)
        ));
        assert_eq!(cache.stats().invalidated_drift, 1);
        assert_eq!(cache.stats().hits_similarity, 0);
    }

    #[test]
    fn shape_sketch_quantizes_and_discriminates() {
        let flat = series(0, 10.0);
        let saw = ramp(0, 10.0, 40.0);
        // Constant series: every bucket is exactly mean, sketch is zero.
        assert_eq!(shape_sketch(flat.values()), 0);
        assert_ne!(shape_sketch(saw.values()), shape_sketch(flat.values()));
        // Scale/level invariance (the drift gate owns those dimensions).
        let scaled = ramp(0, 50.0, 80.0);
        assert_eq!(shape_sketch(saw.values()), shape_sketch(scaled.values()));
        assert_eq!(shape_sketch(&[]), 0);
        // A saw is far more than one quantum from flat in some bucket.
        assert!(!sketches_similar(
            shape_sketch(saw.values()),
            shape_sketch(flat.values())
        ));
    }

    #[test]
    fn sketch_similarity_tolerates_one_quantum_of_jitter() {
        let a = shape_sketch(ramp(0, 10.0, 40.0).values());
        assert!(sketches_similar(a, a), "similarity is reflexive");
        // Nudge one bucket by exactly one quantum: still similar — this is
        // the quantization-boundary jitter noisy same-shape servers show
        // week over week.
        let bucket0 = (a & 0xff) as u8 as i8;
        let jittered = (a & !0xffu128) | (bucket0.wrapping_add(1) as u8 as u128);
        assert!(sketches_similar(a, jittered));
        assert!(sketches_similar(jittered, a), "similarity is symmetric");
        // Two quanta in a single bucket is a different shape.
        let moved = (a & !0xffu128) | (bucket0.wrapping_add(2) as u8 as u128);
        assert!(!sketches_similar(a, moved));
    }

    #[test]
    fn stable_class_reuses_until_drift() {
        let cache = ModelCache::new();
        let week0 = series(0, 100.0);
        cache.commit(0, vec![update("a/s1", 42, "stable", &week0)], &[]);
        // Slightly different bytes, same level: stable reuse.
        let week1 = series(1, 100.0001);
        assert!(matches!(
            cache.lookup("a/s1", 99, "stable", &week1),
            Lookup::Hit(_)
        ));
        // Level shift well past the drift gate: refit.
        let drifted = series(2, 500.0);
        assert!(matches!(
            cache.lookup("a/s1", 7, "stable", &drifted),
            Lookup::Miss(MissReason::Drift)
        ));
        assert_eq!(cache.stats().invalidated_drift, 1);
    }

    #[test]
    fn drift_flag_forces_refit_then_clears_on_commit() {
        let cache = ModelCache::new();
        let week0 = series(0, 10.0);
        cache.commit(0, vec![update("a/s1", 42, "stable", &week0)], &[]);
        cache.flag_drift("a/s1");
        assert!(cache.drift_flagged("a/s1"));
        // Even a byte-identical fingerprint must miss while flagged.
        let week1 = series(1, 10.0);
        assert!(matches!(
            cache.lookup("a/s1", 42, "stable", &week1),
            Lookup::Miss(MissReason::Drift)
        ));
        assert_eq!(cache.stats().invalidated_drift, 1);
        // The fresh fit commits and consumes the flag: next week hits again.
        cache.commit(1, vec![update("a/s1", 42, "stable", &week1)], &[]);
        assert!(!cache.drift_flagged("a/s1"));
        let week2 = series(2, 10.0);
        assert!(matches!(
            cache.lookup("a/s1", 42, "stable", &week2),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn misaligned_or_reshaped_history_misses() {
        let cache = ModelCache::new();
        let week0 = series(0, 10.0);
        cache.commit(0, vec![update("a/s1", 42, "stable", &week0)], &[]);
        // Start not a whole-week multiple ahead.
        let misaligned = TimeSeries::from_fn(
            Timestamp::from_minutes(MINUTES_PER_WEEK + 1440),
            30,
            7 * 48,
            |_| 10.0,
        )
        .unwrap();
        assert!(matches!(
            cache.lookup("a/s1", 42, "stable", &misaligned),
            Lookup::Miss(MissReason::Fingerprint)
        ));
        // Different length.
        let reshaped = TimeSeries::from_fn(
            Timestamp::from_minutes(MINUTES_PER_WEEK),
            30,
            6 * 48,
            |_| 10.0,
        )
        .unwrap();
        assert!(matches!(
            cache.lookup("a/s1", 42, "stable", &reshaped),
            Lookup::Miss(MissReason::Fingerprint)
        ));
    }

    #[test]
    fn lru_evicts_oldest_stamp_then_smallest_key() {
        let cache = ModelCache::with_capacity(2);
        let week0 = series(0, 1.0);
        cache.commit(0, vec![update("k/a", 1, "stable", &week0)], &[]);
        cache.commit(1, vec![update("k/b", 2, "stable", &week0)], &[]);
        cache.commit(2, vec![update("k/c", 3, "stable", &week0)], &[]);
        cache.evict_to_capacity();
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains("k/a"), "oldest stamp evicted");
        assert!(cache.contains("k/b") && cache.contains("k/c"));
        assert_eq!(cache.stats().evictions, 1);

        // A hit bumps recency: k/b survives the next eviction.
        cache.commit(3, Vec::new(), &["k/b".to_string()]);
        cache.commit(4, vec![update("k/d", 4, "stable", &week0)], &[]);
        cache.evict_to_capacity();
        assert!(cache.contains("k/b"));
        assert!(!cache.contains("k/c"));
    }

    #[test]
    fn hit_prediction_reanchors_with_shift() {
        let cache = ModelCache::new();
        let week0 = series(0, 10.0);
        cache.commit(0, vec![update("a/s1", 42, "stable", &week0)], &[]);
        let week2 = series(2, 10.0);
        let Lookup::Hit(hit) = cache.lookup("a/s1", 42, "stable", &week2) else {
            panic!("expected hit");
        };
        let pred = hit
            .fitted
            .predict(48)
            .unwrap()
            .shifted(hit.shift_min)
            .unwrap();
        assert_eq!(pred.start(), week2.end());
    }
}
