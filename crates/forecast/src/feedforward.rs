//! A simple feed-forward neural-network estimator.
//!
//! The paper trains GluonTS's *simple feed forward estimator* ("We tried
//! several other estimators but this model achieved highest accuracy",
//! Section 5.1). Architecturally that model maps a context window of recent
//! observations directly to a multi-step prediction window through a small
//! MLP. This module implements that from scratch: dense layers with ReLU
//! activations, mean-squared-error loss, mini-batch Adam, z-score input
//! normalization, and multi-step rollout for horizons longer than the
//! prediction window.

use crate::{check_history, FittedModel, ForecastError, Forecaster};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use seagull_linalg::{kernel, scratch};
use seagull_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// Feed-forward network hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedForwardConfig {
    /// Number of lagged observations fed to the network.
    pub context_len: usize,
    /// Points predicted per forward pass; longer horizons roll out
    /// autoregressively.
    pub prediction_len: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Stride between consecutive training windows (1 = every window).
    pub stride: usize,
    /// RNG seed for weight init and batch shuffling.
    pub seed: u64,
}

impl Default for FeedForwardConfig {
    fn default() -> Self {
        FeedForwardConfig {
            context_len: 48,
            prediction_len: 96,
            hidden: vec![32],
            epochs: 12,
            batch_size: 32,
            learning_rate: 1e-3,
            stride: 2,
            seed: 7,
        }
    }
}

/// The feed-forward forecaster.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedForwardForecaster {
    config: FeedForwardConfig,
}

impl FeedForwardForecaster {
    /// Creates a forecaster with the given configuration.
    pub fn new(config: FeedForwardConfig) -> FeedForwardForecaster {
        FeedForwardForecaster { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FeedForwardConfig {
        &self.config
    }
}

impl Default for FeedForwardForecaster {
    fn default() -> Self {
        FeedForwardForecaster::new(FeedForwardConfig::default())
    }
}

impl Forecaster for FeedForwardForecaster {
    fn name(&self) -> &'static str {
        "feedforward"
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let c = &self.config;
        if c.context_len == 0 || c.prediction_len == 0 || c.stride == 0 || c.batch_size == 0 {
            return Err(ForecastError::Numerical(
                "feed-forward config values must be positive".into(),
            ));
        }
        // Need at least one full (context, target) pair.
        check_history(history, c.context_len + c.prediction_len)?;

        // Z-score normalization over the whole history.
        let mean = history.mean();
        let std = seagull_timeseries::stddev(history.values()).max(1e-6);
        let norm: Vec<f64> = history.values().iter().map(|v| (v - mean) / std).collect();

        // Sliding (context -> target) windows.
        let n_windows = (norm.len() - c.context_len - c.prediction_len) / c.stride + 1;
        let mut order: Vec<usize> = (0..n_windows).map(|w| w * c.stride).collect();

        let mut rng = ChaCha8Rng::seed_from_u64(c.seed);
        let mut net = Mlp::new(c.context_len, &c.hidden, c.prediction_len, &mut rng);
        let mut adam = AdamState::new(&net);
        let mut grads = net.zero_grads();
        let mut ws = TrainScratch::new(&net);

        let mut step = 0usize;
        for _epoch in 0..c.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(c.batch_size) {
                grads.zero();
                for &start in chunk {
                    let x = &norm[start..start + c.context_len];
                    let y = &norm[start + c.context_len..start + c.context_len + c.prediction_len];
                    net.accumulate_gradients(x, y, &mut grads, &mut ws);
                }
                let scale = 1.0 / chunk.len() as f64;
                step += 1;
                adam.apply(&mut net, &grads, scale, c.learning_rate, step);
            }
        }
        ws.recycle();

        Ok(Box::new(FittedFeedForward {
            net,
            mean,
            std,
            context: norm[norm.len() - c.context_len..].to_vec(),
            template: history.clone(),
            prediction_len: c.prediction_len,
        }))
    }
}

struct FittedFeedForward {
    net: Mlp,
    mean: f64,
    std: f64,
    /// Normalized trailing context at the end of history.
    context: Vec<f64>,
    template: TimeSeries,
    prediction_len: usize,
}

impl FittedModel for FittedFeedForward {
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
        let mut ctx = self.context.clone();
        let mut out_norm = Vec::with_capacity(horizon);
        while out_norm.len() < horizon {
            let pred = self.net.forward(&ctx);
            let take = self.prediction_len.min(horizon - out_norm.len());
            out_norm.extend_from_slice(&pred[..take]);
            // Roll the context forward with the (normalized) predictions.
            ctx.extend_from_slice(&pred[..take]);
            let excess = ctx.len() - self.context.len();
            ctx.drain(..excess);
        }
        let values: Vec<f64> = out_norm
            .iter()
            .map(|v| (v * self.std + self.mean).clamp(0.0, 100.0))
            .collect();
        Ok(TimeSeries::new(
            self.template.end(),
            self.template.step_min(),
            values,
        )?)
    }
}

/// A minimal dense network: weights as flat row-major layers.
struct Mlp {
    /// Per layer: (out_dim, in_dim, weights[out*in], biases[out]).
    layers: Vec<Layer>,
}

struct Layer {
    out_dim: usize,
    in_dim: usize,
    w: Vec<f64>,
    b: Vec<f64>,
}

/// Per-layer gradient accumulators, same shapes as the layers.
struct Grads {
    w: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
}

impl Grads {
    fn zero(&mut self) {
        for g in self.w.iter_mut().chain(self.b.iter_mut()) {
            g.fill(0.0);
        }
    }
}

/// Flat training workspace borrowed from the thread-local scratch pool so
/// the per-sample forward/backward passes allocate nothing.
struct TrainScratch {
    /// All layer activations concatenated: the input block, then each
    /// layer's post-activation output block.
    acts: Vec<f64>,
    /// Start offset of each activation block in `acts`, plus an end sentinel.
    offsets: Vec<usize>,
    /// Backpropagated error for the current layer.
    delta: Vec<f64>,
    /// Error being assembled for the previous layer.
    prev: Vec<f64>,
}

impl TrainScratch {
    fn new(net: &Mlp) -> TrainScratch {
        let input = net.layers[0].in_dim;
        let mut offsets = Vec::with_capacity(net.layers.len() + 2);
        offsets.push(0);
        let mut total = input;
        let mut widest = input;
        for l in &net.layers {
            offsets.push(total);
            total += l.out_dim;
            widest = widest.max(l.out_dim);
        }
        offsets.push(total);
        let mut acts = scratch::take(total);
        acts.resize(total, 0.0);
        TrainScratch {
            acts,
            offsets,
            delta: scratch::take(widest),
            prev: scratch::take(widest),
        }
    }

    fn recycle(self) {
        scratch::recycle(self.acts);
        scratch::recycle(self.delta);
        scratch::recycle(self.prev);
    }
}

impl Mlp {
    fn new(input: usize, hidden: &[usize], output: usize, rng: &mut ChaCha8Rng) -> Mlp {
        let mut dims = vec![input];
        dims.extend_from_slice(hidden);
        dims.push(output);
        let layers = dims
            .windows(2)
            .map(|d| {
                let (in_dim, out_dim) = (d[0], d[1]);
                // He initialization for ReLU layers.
                let scale = (2.0 / in_dim as f64).sqrt();
                let w = (0..in_dim * out_dim)
                    .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                    .collect();
                Layer {
                    out_dim,
                    in_dim,
                    w,
                    b: vec![0.0; out_dim],
                }
            })
            .collect();
        Mlp { layers }
    }

    fn zero_grads(&self) -> Grads {
        Grads {
            w: self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            b: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Forward pass; hidden layers use ReLU, the output layer is linear.
    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut a = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = vec![0.0f64; layer.out_dim];
            for (o, zo) in z.iter_mut().enumerate() {
                let wrow = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                *zo = layer.b[o] + kernel::dot(wrow, &a);
            }
            if li + 1 < self.layers.len() {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            a = z;
        }
        a
    }

    /// Forward + backward for one sample, accumulating dL/dθ for the
    /// squared-error loss `mean((ŷ - y)²)` into `grads`. Activations and
    /// error vectors live in `ws`; nothing is allocated per sample.
    fn accumulate_gradients(&self, x: &[f64], y: &[f64], grads: &mut Grads, ws: &mut TrainScratch) {
        let nl = self.layers.len();
        // Forward, keeping every activation block in the flat buffer.
        ws.acts[..x.len()].copy_from_slice(x);
        for (li, layer) in self.layers.iter().enumerate() {
            let (lo, mid, hi) = (ws.offsets[li], ws.offsets[li + 1], ws.offsets[li + 2]);
            let (head, tail) = ws.acts.split_at_mut(mid);
            let a = &head[lo..];
            let z = &mut tail[..hi - mid];
            for (o, zo) in z.iter_mut().enumerate() {
                let wrow = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                *zo = layer.b[o] + kernel::dot(wrow, a);
            }
            if li + 1 < nl {
                for v in z.iter_mut() {
                    *v = v.max(0.0);
                }
            }
        }
        // Backward.
        let out = &ws.acts[ws.offsets[nl]..ws.offsets[nl + 1]];
        ws.delta.clear();
        ws.delta.extend(
            out.iter()
                .zip(y)
                .map(|(p, t)| 2.0 * (p - t) / y.len() as f64),
        );
        for li in (0..nl).rev() {
            let layer = &self.layers[li];
            let a_in = &ws.acts[ws.offsets[li]..ws.offsets[li + 1]];
            // Gradients for this layer.
            for (o, &d) in ws.delta.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                grads.b[li][o] += d;
                let grow = &mut grads.w[li][o * layer.in_dim..(o + 1) * layer.in_dim];
                kernel::axpy(grow, d, a_in);
            }
            if li == 0 {
                break;
            }
            // Propagate delta through weights and the previous ReLU.
            ws.prev.clear();
            ws.prev.resize(layer.in_dim, 0.0);
            for (o, &d) in ws.delta.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                let wrow = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                kernel::axpy(&mut ws.prev, d, wrow);
            }
            for (p, &a) in ws.prev.iter_mut().zip(a_in) {
                if a <= 0.0 {
                    *p = 0.0; // ReLU gate (a_in is post-activation).
                }
            }
            std::mem::swap(&mut ws.delta, &mut ws.prev);
        }
    }
}

/// Adam optimizer state (first/second moments per parameter).
struct AdamState {
    m_w: Vec<Vec<f64>>,
    v_w: Vec<Vec<f64>>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
}

impl AdamState {
    const BETA1: f64 = 0.9;
    const BETA2: f64 = 0.999;
    const EPS: f64 = 1e-8;

    fn new(net: &Mlp) -> AdamState {
        AdamState {
            m_w: net.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            v_w: net.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            m_b: net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            v_b: net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    fn apply(&mut self, net: &mut Mlp, grads: &Grads, scale: f64, lr: f64, step: usize) {
        let bc1 = 1.0 - Self::BETA1.powi(step as i32);
        let bc2 = 1.0 - Self::BETA2.powi(step as i32);
        for (li, layer) in net.layers.iter_mut().enumerate() {
            for (i, w) in layer.w.iter_mut().enumerate() {
                let g = grads.w[li][i] * scale;
                let m = &mut self.m_w[li][i];
                let v = &mut self.v_w[li][i];
                *m = Self::BETA1 * *m + (1.0 - Self::BETA1) * g;
                *v = Self::BETA2 * *v + (1.0 - Self::BETA2) * g * g;
                *w -= lr * (*m / bc1) / ((*v / bc2).sqrt() + Self::EPS);
            }
            for (i, b) in layer.b.iter_mut().enumerate() {
                let g = grads.b[li][i] * scale;
                let m = &mut self.m_b[li][i];
                let v = &mut self.v_b[li][i];
                *m = Self::BETA1 * *m + (1.0 - Self::BETA1) * g;
                *v = Self::BETA2 * *v + (1.0 - Self::BETA2) * g * g;
                *b -= lr * (*m / bc1) / ((*v / bc2).sqrt() + Self::EPS);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{daily_sine, rmse};
    use seagull_timeseries::{TimeSeries, Timestamp};

    fn fast_config() -> FeedForwardConfig {
        FeedForwardConfig {
            context_len: 24,
            prediction_len: 24,
            hidden: vec![16],
            epochs: 30,
            batch_size: 16,
            learning_rate: 3e-3,
            stride: 1,
            seed: 3,
        }
    }

    #[test]
    fn learns_constant_series() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 15, 300, |_| 37.0).unwrap();
        let model = FeedForwardForecaster::new(fast_config());
        let pred = model.fit_predict(&hist, 24).unwrap();
        for v in pred.values() {
            assert!((v - 37.0).abs() < 3.0, "value {v}");
        }
    }

    #[test]
    fn learns_daily_sine_roughly() {
        let hist = daily_sine(5, 15); // 96/day
        let mut cfg = fast_config();
        cfg.context_len = 96;
        cfg.prediction_len = 96;
        cfg.epochs = 40;
        let model = FeedForwardForecaster::new(cfg);
        let pred = model.fit_predict(&hist, 96).unwrap();
        let truth = daily_sine(6, 15);
        let expect = truth.slice(hist.end(), hist.end() + 1440).unwrap();
        let err = rmse(&pred, &expect);
        // A neural net trained briefly on a clean sine should get close;
        // the sine has amplitude 20 so rmse 4 is "shape captured".
        assert!(err < 4.0, "rmse {err}");
    }

    #[test]
    fn multi_step_rollout_covers_horizon() {
        let hist = daily_sine(3, 15);
        let model = FeedForwardForecaster::new(fast_config());
        let pred = model.fit_predict(&hist, 100).unwrap();
        assert_eq!(pred.len(), 100); // 24-wide windows rolled out 5 times
        assert_eq!(pred.start(), hist.end());
    }

    #[test]
    fn deterministic_given_seed() {
        let hist = daily_sine(3, 15);
        let model = FeedForwardForecaster::new(fast_config());
        let a = model.fit_predict(&hist, 48).unwrap();
        let b = model.fit_predict(&hist, 48).unwrap();
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn insufficient_history_rejected() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 15, 30, |_| 1.0).unwrap();
        let model = FeedForwardForecaster::new(fast_config());
        assert!(matches!(
            model.fit(&hist),
            Err(ForecastError::InsufficientHistory { .. })
        ));
    }

    #[test]
    fn nan_history_rejected() {
        let mut hist = daily_sine(2, 15);
        hist.values_mut()[10] = f64::NAN;
        assert!(matches!(
            FeedForwardForecaster::new(fast_config()).fit(&hist),
            Err(ForecastError::NonFiniteHistory)
        ));
    }

    #[test]
    fn zero_config_rejected() {
        let hist = daily_sine(2, 15);
        let mut cfg = fast_config();
        cfg.stride = 0;
        assert!(FeedForwardForecaster::new(cfg).fit(&hist).is_err());
    }

    #[test]
    fn repeated_fits_reuse_scratch_buffers() {
        let hist = daily_sine(3, 15);
        let model = FeedForwardForecaster::new(fast_config());
        // First fit seeds this thread's pool; later fits draw from it.
        model.fit(&hist).unwrap();
        let before = seagull_linalg::scratch::stats();
        model.fit(&hist).unwrap();
        let after = seagull_linalg::scratch::stats();
        assert!(
            after.reuses > before.reuses,
            "second fit reused no scratch buffers ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn outputs_stay_in_percentage_range() {
        let hist = daily_sine(3, 15);
        let pred = FeedForwardForecaster::new(fast_config())
            .fit_predict(&hist, 200)
            .unwrap();
        for v in pred.values() {
            assert!((0.0..=100.0).contains(v));
        }
    }
}
