//! ARIMA with automatic order search.
//!
//! "ARIMA is computationally intensive since it searches the optimal values
//! of six parameters per server in order to make an accurate load prediction"
//! (Section 2.1). Those six are the non-seasonal orders `(p, d, q)` and the
//! seasonal orders `(P, D, Q)`. This module implements:
//!
//! * non-seasonal and seasonal differencing / integration;
//! * Hannan–Rissanen two-stage estimation (a long autoregression supplies
//!   residual estimates, then ARMA coefficients come from one OLS);
//! * conditional-sum-of-squares refinement by numerical gradient descent;
//! * AIC-driven grid search over all six orders — the part that makes
//!   auto-ARIMA expensive, faithfully reproduced;
//! * multi-step forecasting with innovation zeroing and re-integration.
//!
//! Seasonal AR/MA terms enter additively at lags `s, 2s, …` (a pragmatic
//! simplification of the multiplicative Box–Jenkins polynomial; for load
//! telemetry the difference is far below the noise floor).

use crate::{check_history, FittedModel, ForecastError, Forecaster};
use seagull_linalg::{least_squares, Matrix};
use seagull_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// A full ARIMA order: `(p, d, q) × (P, D, Q)` with seasonal period `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArimaOrder {
    /// Non-seasonal autoregressive order.
    pub p: usize,
    /// Non-seasonal differencing order.
    pub d: usize,
    /// Non-seasonal moving-average order.
    pub q: usize,
    /// Seasonal autoregressive order.
    pub sp: usize,
    /// Seasonal differencing order.
    pub sd: usize,
    /// Seasonal moving-average order.
    pub sq: usize,
    /// Seasonal period in grid points (e.g. 288 for daily at 5-minute grid).
    pub period: usize,
}

impl ArimaOrder {
    /// A plain non-seasonal order.
    pub fn simple(p: usize, d: usize, q: usize) -> ArimaOrder {
        ArimaOrder {
            p,
            d,
            q,
            sp: 0,
            sd: 0,
            sq: 0,
            period: 0,
        }
    }

    /// Number of estimated coefficients (for AIC).
    fn k(&self) -> usize {
        1 + self.p + self.q + self.sp + self.sq
    }

    /// AR lags (regular then seasonal).
    fn ar_lags(&self) -> Vec<usize> {
        let mut l: Vec<usize> = (1..=self.p).collect();
        l.extend((1..=self.sp).map(|j| j * self.period));
        l
    }

    /// MA lags (regular then seasonal).
    fn ma_lags(&self) -> Vec<usize> {
        let mut l: Vec<usize> = (1..=self.q).collect();
        l.extend((1..=self.sq).map(|j| j * self.period));
        l
    }
}

impl std::fmt::Display for ArimaOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ARIMA({},{},{})({},{},{})[{}]",
            self.p, self.d, self.q, self.sp, self.sd, self.sq, self.period
        )
    }
}

/// ARIMA search configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArimaConfig {
    /// Maximum regular AR order searched.
    pub max_p: usize,
    /// Maximum regular differencing searched.
    pub max_d: usize,
    /// Maximum regular MA order searched.
    pub max_q: usize,
    /// Maximum seasonal AR order searched.
    pub max_sp: usize,
    /// Maximum seasonal differencing searched.
    pub max_sd: usize,
    /// Maximum seasonal MA order searched.
    pub max_sq: usize,
    /// Seasonal period in grid points (0 disables the seasonal grid).
    pub period: usize,
    /// CSS gradient-refinement iterations per candidate order.
    pub refine_iterations: usize,
    /// Pre-screen the grid with ACF/PACF order suggestions (Box-Jenkins):
    /// caps the regular `p`/`q` search at the last significant PACF/ACF lag,
    /// the way pmdarima's stepwise search keeps auto-ARIMA tractable.
    pub prescreen: bool,
}

impl Default for ArimaConfig {
    fn default() -> Self {
        ArimaConfig {
            max_p: 2,
            max_d: 1,
            max_q: 2,
            max_sp: 1,
            max_sd: 1,
            max_sq: 1,
            period: 288,
            refine_iterations: 60,
            prescreen: false,
        }
    }
}

impl ArimaConfig {
    /// A fixed single order (no search).
    pub fn fixed(order: ArimaOrder) -> ArimaConfig {
        ArimaConfig {
            max_p: order.p,
            max_d: order.d,
            max_q: order.q,
            max_sp: order.sp,
            max_sd: order.sd,
            max_sq: order.sq,
            period: order.period,
            refine_iterations: 60,
            prescreen: false,
        }
    }

    fn candidate_orders(&self) -> Vec<ArimaOrder> {
        let mut orders = Vec::new();
        let seasonal = self.period > 0;
        for d in 0..=self.max_d {
            for p in 0..=self.max_p {
                for q in 0..=self.max_q {
                    if seasonal {
                        for sd in 0..=self.max_sd {
                            for sp in 0..=self.max_sp {
                                for sq in 0..=self.max_sq {
                                    orders.push(ArimaOrder {
                                        p,
                                        d,
                                        q,
                                        sp,
                                        sd,
                                        sq,
                                        period: self.period,
                                    });
                                }
                            }
                        }
                    } else {
                        orders.push(ArimaOrder::simple(p, d, q));
                    }
                }
            }
        }
        // Skip the degenerate all-zero model unless it is the only one.
        if orders.len() > 1 {
            orders.retain(|o| o.k() > 1 || o.d + o.sd > 0);
        }
        orders
    }
}

/// The auto-ARIMA forecaster.
#[derive(Debug, Clone, PartialEq)]
pub struct ArimaForecaster {
    config: ArimaConfig,
}

impl ArimaForecaster {
    /// Creates a forecaster with the given search configuration.
    pub fn new(config: ArimaConfig) -> ArimaForecaster {
        ArimaForecaster { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ArimaConfig {
        &self.config
    }
}

impl Default for ArimaForecaster {
    fn default() -> Self {
        ArimaForecaster::new(ArimaConfig::default())
    }
}

impl Forecaster for ArimaForecaster {
    fn name(&self) -> &'static str {
        "arima"
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let c = &self.config;
        let min_needed = 2 * c.period.max(30) + 10;
        check_history(history, min_needed)?;

        let effective = if c.prescreen {
            let (p_cap, q_cap) =
                crate::diagnostics::suggest_orders(history.values(), c.max_p.max(c.max_q));
            ArimaConfig {
                max_p: c.max_p.min(p_cap.max(1)),
                max_q: c.max_q.min(q_cap),
                ..c.clone()
            }
        } else {
            c.clone()
        };

        let mut best: Option<(f64, FittedArima)> = None;
        for order in effective.candidate_orders() {
            match fit_order(history, order, c.refine_iterations) {
                Ok((aic, fitted)) => {
                    if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                        best = Some((aic, fitted));
                    }
                }
                Err(_) => continue, // Unfittable candidate; auto-ARIMA skips it.
            }
        }
        match best {
            Some((_, fitted)) => Ok(Box::new(fitted)),
            None => Err(ForecastError::Numerical(
                "no ARIMA candidate could be fit".into(),
            )),
        }
    }
}

/// Applies lag-`k` differencing once.
fn difference(x: &[f64], k: usize) -> Vec<f64> {
    x.iter().skip(k).zip(x).map(|(a, b)| a - b).collect()
}

/// Fits one candidate order; returns (AIC, fitted model).
fn fit_order(
    history: &TimeSeries,
    order: ArimaOrder,
    refine_iterations: usize,
) -> Result<(f64, FittedArima), ForecastError> {
    // Differencing: d regular passes then sd seasonal passes, remembering the
    // tails needed for re-integration.
    let mut w: Vec<f64> = history.values().to_vec();
    let mut regular_tails: Vec<f64> = Vec::new();
    for _ in 0..order.d {
        regular_tails.push(*w.last().expect("nonempty"));
        w = difference(&w, 1);
        if w.is_empty() {
            return Err(ForecastError::InsufficientHistory { needed: 2, got: 1 });
        }
    }
    let mut seasonal_tails: Vec<Vec<f64>> = Vec::new();
    for _ in 0..order.sd {
        if w.len() <= order.period || order.period == 0 {
            return Err(ForecastError::InsufficientHistory {
                needed: order.period + 1,
                got: w.len(),
            });
        }
        seasonal_tails.push(w[w.len() - order.period..].to_vec());
        w = difference(&w, order.period);
    }

    let ar_lags = order.ar_lags();
    let ma_lags = order.ma_lags();
    let max_lag = ar_lags.iter().chain(&ma_lags).copied().max().unwrap_or(0);
    if w.len() < max_lag + 10 {
        return Err(ForecastError::InsufficientHistory {
            needed: max_lag + 10,
            got: w.len(),
        });
    }

    // Stage 1 (Hannan–Rissanen): long AR for residual estimates, but only
    // when MA terms exist.
    let resid_est = if ma_lags.is_empty() {
        vec![0.0; w.len()]
    } else {
        long_ar_residuals(&w, (max_lag + 5).min(w.len() / 4).max(5))?
    };

    // Stage 2: OLS of w_t on AR lags of w and MA lags of residuals.
    let start = max_lag;
    let n_rows = w.len() - start;
    let n_cols = 1 + ar_lags.len() + ma_lags.len();
    if n_rows < n_cols + 2 {
        return Err(ForecastError::InsufficientHistory {
            needed: n_cols + 2 + start,
            got: w.len(),
        });
    }
    let mut design = Matrix::zeros_pooled(n_rows, n_cols);
    let mut target = seagull_linalg::scratch::take(n_rows);
    for (r, t) in (start..w.len()).enumerate() {
        let row = design.row_mut(r);
        row[0] = 1.0;
        for (j, &lag) in ar_lags.iter().enumerate() {
            row[1 + j] = w[t - lag];
        }
        for (j, &lag) in ma_lags.iter().enumerate() {
            row[1 + ar_lags.len() + j] = resid_est[t - lag];
        }
        target.push(w[t]);
    }
    let ls = least_squares(&design, &target);
    design.recycle();
    seagull_linalg::scratch::recycle(target);
    let mut coef = ls?;

    // Stage 3: CSS refinement with a numerical gradient.
    if refine_iterations > 0 {
        refine_css(&w, &order, &mut coef, refine_iterations);
    }

    // Final residuals and AIC.
    let resid = css_residuals(&w, &order, &coef);
    let n_eff = (w.len() - max_lag) as f64;
    let sigma2 = (resid.iter().skip(max_lag).map(|r| r * r).sum::<f64>() / n_eff).max(1e-12);
    let aic = n_eff * sigma2.ln() + 2.0 * order.k() as f64;

    Ok((
        aic,
        FittedArima {
            order,
            coef,
            w,
            resid,
            regular_tails,
            seasonal_tails,
            template: history.clone(),
        },
    ))
}

/// Long-AR residual estimation for Hannan–Rissanen stage one.
fn long_ar_residuals(w: &[f64], m: usize) -> Result<Vec<f64>, ForecastError> {
    let n_rows = w.len() - m;
    let mut design = Matrix::zeros_pooled(n_rows, m + 1);
    let mut target = seagull_linalg::scratch::take(n_rows);
    for (r, t) in (m..w.len()).enumerate() {
        let row = design.row_mut(r);
        row[0] = 1.0;
        for j in 1..=m {
            row[j] = w[t - j];
        }
        target.push(w[t]);
    }
    let ls = least_squares(&design, &target);
    design.recycle();
    seagull_linalg::scratch::recycle(target);
    let coef = ls?;
    let mut resid = vec![0.0f64; w.len()];
    for t in m..w.len() {
        let mut pred = coef[0];
        for j in 1..=m {
            pred += coef[j] * w[t - j];
        }
        resid[t] = w[t] - pred;
    }
    Ok(resid)
}

/// Conditional-sum-of-squares residual recursion for a coefficient vector
/// laid out as `[intercept, ar..., ma...]`.
fn css_residuals(w: &[f64], order: &ArimaOrder, coef: &[f64]) -> Vec<f64> {
    let ar_lags = order.ar_lags();
    let ma_lags = order.ma_lags();
    let max_lag = ar_lags.iter().chain(&ma_lags).copied().max().unwrap_or(0);
    let mut resid = vec![0.0f64; w.len()];
    for t in max_lag..w.len() {
        let mut pred = coef[0];
        for (j, &lag) in ar_lags.iter().enumerate() {
            pred += coef[1 + j] * w[t - lag];
        }
        for (j, &lag) in ma_lags.iter().enumerate() {
            pred += coef[1 + ar_lags.len() + j] * resid[t - lag];
        }
        resid[t] = w[t] - pred;
    }
    resid
}

fn css_objective(w: &[f64], order: &ArimaOrder, coef: &[f64]) -> f64 {
    let max_lag = order
        .ar_lags()
        .iter()
        .chain(&order.ma_lags())
        .copied()
        .max()
        .unwrap_or(0);
    css_residuals(w, order, coef)
        .iter()
        .skip(max_lag)
        .map(|r| r * r)
        .sum()
}

/// Numerical-gradient descent on the CSS objective with backtracking.
fn refine_css(w: &[f64], order: &ArimaOrder, coef: &mut [f64], iterations: usize) {
    let mut obj = css_objective(w, order, coef);
    let mut step = 1e-3;
    let h = 1e-6;
    for _ in 0..iterations {
        // Finite-difference gradient.
        let mut grad = vec![0.0f64; coef.len()];
        for j in 0..coef.len() {
            let orig = coef[j];
            coef[j] = orig + h;
            let plus = css_objective(w, order, coef);
            coef[j] = orig;
            grad[j] = (plus - obj) / h;
        }
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < 1e-10 {
            break;
        }
        // Backtracking line search.
        let mut improved = false;
        for _ in 0..12 {
            let trial: Vec<f64> = coef
                .iter()
                .zip(&grad)
                .map(|(c, g)| c - step * g / gnorm)
                .collect();
            let trial_obj = css_objective(w, order, &trial);
            if trial_obj < obj {
                coef.copy_from_slice(&trial);
                obj = trial_obj;
                step *= 1.5;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }
}

struct FittedArima {
    order: ArimaOrder,
    coef: Vec<f64>,
    /// The (differenced) working series.
    w: Vec<f64>,
    /// CSS residuals aligned with `w`.
    resid: Vec<f64>,
    /// Last values removed by each regular differencing pass (for
    /// re-integration, innermost last).
    regular_tails: Vec<f64>,
    /// Last `period` values removed by each seasonal differencing pass.
    seasonal_tails: Vec<Vec<f64>>,
    template: TimeSeries,
}

impl FittedModel for FittedArima {
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
        let ar_lags = self.order.ar_lags();
        let ma_lags = self.order.ma_lags();
        // Forecast the differenced series: future innovations are zero, past
        // residuals come from the CSS recursion.
        let mut wbuf = self.w.clone();
        let mut rbuf = self.resid.clone();
        for _ in 0..horizon {
            let t = wbuf.len();
            let mut pred = self.coef[0];
            for (j, &lag) in ar_lags.iter().enumerate() {
                if t >= lag {
                    pred += self.coef[1 + j] * wbuf[t - lag];
                }
            }
            for (j, &lag) in ma_lags.iter().enumerate() {
                if t >= lag {
                    pred += self.coef[1 + ar_lags.len() + j] * rbuf[t - lag];
                }
            }
            wbuf.push(pred);
            rbuf.push(0.0);
        }
        let mut fc: Vec<f64> = wbuf[self.w.len()..].to_vec();

        // Re-integrate: seasonal passes (innermost last applied first in
        // reverse), then regular passes.
        for tail in self.seasonal_tails.iter().rev() {
            let s = tail.len();
            let mut hist = tail.clone();
            for v in fc.iter_mut() {
                let base = hist[hist.len() - s];
                let nv = *v + base;
                hist.push(nv);
                *v = nv;
            }
        }
        for &tail in self.regular_tails.iter().rev() {
            let mut prev = tail;
            for v in fc.iter_mut() {
                prev += *v;
                *v = prev;
            }
        }
        for v in &mut fc {
            *v = v.clamp(0.0, 100.0);
        }
        Ok(TimeSeries::new(
            self.template.end(),
            self.template.step_min(),
            fc,
        )?)
    }
}

#[cfg(test)]
mod tests {
    // (prescreen coverage lives in `prescreen_caps_grid` below)
    use super::*;
    use crate::testutil::{daily_sine, rmse};
    use seagull_timeseries::{TimeSeries, Timestamp};

    fn nonseasonal() -> ArimaForecaster {
        ArimaForecaster::new(ArimaConfig {
            max_p: 2,
            max_d: 1,
            max_q: 1,
            max_sp: 0,
            max_sd: 0,
            max_sq: 0,
            period: 0,
            refine_iterations: 20,
            prescreen: false,
        })
    }

    #[test]
    fn repeated_fits_reuse_scratch_buffers() {
        let hist = daily_sine(3, 15);
        let model = nonseasonal();
        // First fit seeds this thread's pool; later fits draw from it.
        model.fit(&hist).unwrap();
        let before = seagull_linalg::scratch::stats();
        model.fit(&hist).unwrap();
        let after = seagull_linalg::scratch::stats();
        assert!(
            after.reuses > before.reuses,
            "second fit reused no scratch buffers ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn ar1_process_is_recovered() {
        // Deterministic AR(1)-like decay toward a mean.
        let mut x = 50.0f64;
        let vals: Vec<f64> = (0..300)
            .map(|i| {
                // Inject a small deterministic perturbation.
                let shock = if i % 17 == 0 { 3.0 } else { 0.0 };
                x = 20.0 + 0.7 * (x - 20.0) + shock;
                x
            })
            .collect();
        let hist = TimeSeries::new(Timestamp::from_days(5), 5, vals).unwrap();
        let model = ArimaForecaster::new(ArimaConfig::fixed(ArimaOrder::simple(1, 0, 0)));
        let pred = model.fit_predict(&hist, 50).unwrap();
        // Forecast should decay towards the unconditional mean (~21).
        let last = pred.values()[49];
        assert!((last - 21.0).abs() < 4.0, "long-run forecast {last}");
    }

    #[test]
    fn linear_trend_with_differencing() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 200, |t| {
            10.0 + 0.02 * (t - Timestamp::from_days(5)) as f64 / 5.0
        })
        .unwrap();
        let model = nonseasonal();
        let pred = model.fit_predict(&hist, 30).unwrap();
        let expect_last = 10.0 + 0.02 * (200.0 + 29.0);
        assert!(
            (pred.values()[29] - expect_last).abs() < 1.0,
            "got {} want {expect_last}",
            pred.values()[29]
        );
    }

    #[test]
    fn seasonal_differencing_tracks_daily_pattern() {
        let hist = daily_sine(3, 15); // period 96
        let model = ArimaForecaster::new(ArimaConfig {
            max_p: 1,
            max_d: 0,
            max_q: 0,
            max_sp: 0,
            max_sd: 1,
            max_sq: 0,
            period: 96,
            refine_iterations: 10,
            prescreen: false,
        });
        let pred = model.fit_predict(&hist, 96).unwrap();
        let truth = daily_sine(4, 15);
        let expect = truth.slice(hist.end(), hist.end() + 1440).unwrap();
        let err = rmse(&pred, &expect);
        assert!(err < 2.0, "rmse {err}");
    }

    #[test]
    fn grid_search_prefers_better_order() {
        // Strongly trending data: models with d=1 should win the AIC race,
        // giving a forecast that keeps rising.
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 150, |t| {
            5.0 + 0.05 * (t - Timestamp::from_days(5)) as f64 / 5.0
        })
        .unwrap();
        let pred = nonseasonal().fit_predict(&hist, 10).unwrap();
        assert!(pred.values()[9] > hist.values()[149]);
    }

    #[test]
    fn candidate_enumeration_counts() {
        let cfg = ArimaConfig {
            max_p: 1,
            max_d: 1,
            max_q: 1,
            max_sp: 0,
            max_sd: 0,
            max_sq: 0,
            period: 0,
            refine_iterations: 0,
            prescreen: false,
        };
        // 2*2*2 = 8 minus the all-zero degenerate model.
        assert_eq!(cfg.candidate_orders().len(), 7);
        let seasonal = ArimaConfig::default();
        // 3*2*3 regular × 2*2*2 seasonal = 144, minus the degenerate one.
        assert_eq!(seasonal.candidate_orders().len(), 143);
    }

    #[test]
    fn insufficient_history_rejected() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 20, |_| 1.0).unwrap();
        assert!(matches!(
            nonseasonal().fit(&hist),
            Err(ForecastError::InsufficientHistory { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut hist = daily_sine(2, 15);
        hist.values_mut()[0] = f64::NAN;
        assert!(matches!(
            nonseasonal().fit(&hist),
            Err(ForecastError::NonFiniteHistory)
        ));
    }

    #[test]
    fn order_display() {
        let o = ArimaOrder {
            p: 1,
            d: 1,
            q: 2,
            sp: 1,
            sd: 0,
            sq: 1,
            period: 96,
        };
        assert_eq!(o.to_string(), "ARIMA(1,1,2)(1,0,1)[96]");
    }

    #[test]
    fn prescreen_caps_grid() {
        // A strongly AR(1) series: the prescreen should cut the grid well
        // below the unconstrained size while still fitting successfully.
        let mut x = 30.0f64;
        let vals: Vec<f64> = (0..400)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
                let e = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                x = 20.0 + 0.7 * (x - 20.0) + 2.0 * e;
                x
            })
            .collect();
        let hist = TimeSeries::new(Timestamp::from_days(5), 5, vals).unwrap();
        let screened = ArimaForecaster::new(ArimaConfig {
            max_p: 3,
            max_d: 1,
            max_q: 3,
            max_sp: 0,
            max_sd: 0,
            max_sq: 0,
            period: 0,
            refine_iterations: 5,
            prescreen: true,
        });
        let pred = screened.fit_predict(&hist, 20).unwrap();
        assert_eq!(pred.len(), 20);
        // Forecast decays toward the unconditional mean.
        assert!((pred.values()[19] - 20.0).abs() < 6.0);
    }

    #[test]
    fn forecasts_clamped() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 120, |t| {
            90.0 + 0.05 * (t - Timestamp::from_days(5)) as f64 / 5.0
        })
        .unwrap();
        let pred = nonseasonal().fit_predict(&hist, 500).unwrap();
        for v in pred.values() {
            assert!((0.0..=100.0).contains(v));
        }
    }
}
