//! Persistent forecasting: "replicating previously seen load per server as
//! the forecast of the load for this server" (Section 5.1).
//!
//! Three variants, exactly as the paper compares them:
//!
//! * **Previous week average** — a constant prediction equal to the mean load
//!   over the last week of history. Captures stable servers (Definition 4).
//! * **Previous equivalent day** — replicates the load of the same weekday
//!   one week ago. Captures weekly patterns (Definition 6).
//! * **Previous day** — replicates yesterday's load. Captures daily patterns
//!   (Definition 5) and is the variant deployed to production (Section 5.4).

use crate::{FittedModel, ForecastError, Forecaster};
use seagull_timeseries::{TimeSeries, MINUTES_PER_DAY, MINUTES_PER_WEEK};
use serde::{Deserialize, Serialize};

/// Which persistent-forecast heuristic to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersistentVariant {
    /// Average of the same grid slot over the previous week.
    PreviousWeekAverage,
    /// Replicate the most recent same day-of-week.
    PreviousEquivalentDay,
    /// Replicate the previous day (the production default).
    PreviousDay,
}

impl PersistentVariant {
    /// All variants, in the paper's presentation order.
    pub const ALL: [PersistentVariant; 3] = [
        PersistentVariant::PreviousWeekAverage,
        PersistentVariant::PreviousEquivalentDay,
        PersistentVariant::PreviousDay,
    ];
}

/// The persistent-forecast model.
///
/// ```
/// use seagull_forecast::{Forecaster, PersistentForecast};
/// use seagull_timeseries::{TimeSeries, Timestamp};
/// // Two days of history whose value is the day index.
/// let hist = TimeSeries::from_fn(Timestamp::from_days(10), 5, 2 * 288, |t| {
///     t.day_index() as f64
/// }).unwrap();
/// let pred = PersistentForecast::previous_day()
///     .fit_predict(&hist, 288)
///     .unwrap();
/// // Day 12 is predicted as a replay of day 11.
/// assert!(pred.values().iter().all(|&v| v == 11.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistentForecast {
    variant: PersistentVariant,
}

impl PersistentForecast {
    /// Creates a model with the chosen variant.
    pub fn new(variant: PersistentVariant) -> PersistentForecast {
        PersistentForecast { variant }
    }

    /// The production configuration: previous day.
    pub fn previous_day() -> PersistentForecast {
        Self::new(PersistentVariant::PreviousDay)
    }

    /// The variant.
    pub fn variant(&self) -> PersistentVariant {
        self.variant
    }
}

impl Forecaster for PersistentForecast {
    fn name(&self) -> &'static str {
        match self.variant {
            PersistentVariant::PreviousWeekAverage => "persistent-week-avg",
            PersistentVariant::PreviousEquivalentDay => "persistent-prev-eq-day",
            PersistentVariant::PreviousDay => "persistent-prev-day",
        }
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let points_per_day = history.points_per_day();
        let needed = match self.variant {
            PersistentVariant::PreviousDay => points_per_day,
            // Week-average works from whatever is available up to a week but
            // needs at least a day to be meaningful; equivalent-day needs the
            // full week back.
            PersistentVariant::PreviousWeekAverage => points_per_day,
            PersistentVariant::PreviousEquivalentDay => 7 * points_per_day,
        };
        // NaNs are tolerated here (persistence replicates them); the metric
        // layer treats NaN predictions as automatic misses, matching how
        // production handles holes. Only the length is validated.
        if history.len() < needed {
            return Err(ForecastError::InsufficientHistory {
                needed,
                got: history.len(),
            });
        }
        let fitted: Fitted = match self.variant {
            PersistentVariant::PreviousWeekAverage => {
                let week_points = (7 * points_per_day).min(history.len());
                let tail = &history.values()[history.len() - week_points..];
                let present: Vec<f64> = tail.iter().copied().filter(|v| !v.is_nan()).collect();
                Fitted::Constant {
                    value: seagull_timeseries::mean(&present),
                    template: history.slice(history.end() - MINUTES_PER_DAY, history.end())?,
                }
            }
            PersistentVariant::PreviousEquivalentDay => Fitted::Replicate {
                lookback_min: MINUTES_PER_WEEK,
                history: history.clone(),
            },
            PersistentVariant::PreviousDay => Fitted::Replicate {
                lookback_min: MINUTES_PER_DAY,
                history: history.clone(),
            },
        };
        Ok(Box::new(fitted))
    }
}

enum Fitted {
    /// Constant prediction (previous-week average). `template` only carries
    /// the grid/start information.
    Constant { value: f64, template: TimeSeries },
    /// Replicate the value observed `lookback_min` minutes earlier; if the
    /// horizon extends beyond history + lookback, the lookback repeats
    /// (predicting day d+2 from one stored day replays the same day).
    Replicate {
        lookback_min: i64,
        history: TimeSeries,
    },
}

impl FittedModel for Fitted {
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
        match self {
            Fitted::Constant { value, template } => {
                let start = template.end();
                Ok(TimeSeries::from_fn(
                    start,
                    template.step_min(),
                    horizon,
                    |_| *value,
                )?)
            }
            Fitted::Replicate {
                lookback_min,
                history,
            } => {
                let start = history.end();
                let step = history.step_min();
                let mut values = Vec::with_capacity(horizon);
                for i in 0..horizon {
                    let mut t = start + i as i64 * step as i64 - *lookback_min;
                    // Wrap further back in whole lookback periods until the
                    // timestamp falls inside history.
                    while t >= history.end() {
                        t -= *lookback_min;
                    }
                    while t < history.start() {
                        // Horizon reaches before history: repeat the earliest
                        // period instead of failing.
                        t += *lookback_min;
                        if t >= history.end() {
                            return Err(ForecastError::InsufficientHistory {
                                needed: (*lookback_min / step as i64) as usize,
                                got: history.len(),
                            });
                        }
                    }
                    values.push(history.value_at(t).ok_or(ForecastError::Series(
                        seagull_timeseries::TimeSeriesError::OutOfRange { requested: t },
                    ))?);
                }
                Ok(TimeSeries::new(start, step, values)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::daily_sine;
    use seagull_timeseries::Timestamp;

    #[test]
    fn previous_day_replays_yesterday() {
        let hist = daily_sine(7, 5);
        let model = PersistentForecast::previous_day();
        let pred = model.fit_predict(&hist, 288).unwrap();
        assert_eq!(pred.start(), hist.end());
        let last_day = &hist.values()[6 * 288..];
        assert_eq!(pred.values(), last_day);
    }

    #[test]
    fn previous_day_wraps_for_long_horizons() {
        let hist = daily_sine(7, 5);
        let model = PersistentForecast::previous_day();
        let pred = model.fit_predict(&hist, 2 * 288).unwrap();
        let last_day = &hist.values()[6 * 288..];
        assert_eq!(&pred.values()[..288], last_day);
        assert_eq!(&pred.values()[288..], last_day);
    }

    #[test]
    fn previous_equivalent_day_replays_last_week() {
        // Build a series where each weekday has a distinct constant level.
        let hist = TimeSeries::from_fn(Timestamp::from_days(700), 5, 7 * 288, |t| {
            t.day_of_week().index() as f64 * 10.0
        })
        .unwrap();
        let model = PersistentForecast::new(PersistentVariant::PreviousEquivalentDay);
        let pred = model.fit_predict(&hist, 288).unwrap();
        // The predicted day is the same weekday as 7 days prior, so the
        // constant must match the true next day's level.
        let expect = pred.start().day_of_week().index() as f64 * 10.0;
        assert!(pred.values().iter().all(|&v| v == expect));
    }

    #[test]
    fn week_average_is_constant_mean() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(10), 5, 7 * 288, |t| {
            if t.day_index() % 2 == 0 {
                10.0
            } else {
                20.0
            }
        })
        .unwrap();
        let model = PersistentForecast::new(PersistentVariant::PreviousWeekAverage);
        let pred = model.fit_predict(&hist, 100).unwrap();
        let mean = hist.mean();
        assert!(pred.values().iter().all(|&v| (v - mean).abs() < 1e-12));
        assert_eq!(pred.len(), 100);
    }

    #[test]
    fn insufficient_history_rejected() {
        let short = daily_sine(1, 5);
        let eq = PersistentForecast::new(PersistentVariant::PreviousEquivalentDay);
        assert!(matches!(
            eq.fit(&short),
            Err(ForecastError::InsufficientHistory { .. })
        ));
        let tiny = TimeSeries::from_fn(Timestamp::from_days(1), 5, 4, |_| 0.0).unwrap();
        assert!(PersistentForecast::previous_day().fit(&tiny).is_err());
    }

    #[test]
    fn nan_history_replicates_nan() {
        let mut hist = daily_sine(2, 5);
        let n = hist.len();
        hist.values_mut()[n - 1] = f64::NAN;
        let pred = PersistentForecast::previous_day()
            .fit_predict(&hist, 288)
            .unwrap();
        assert!(pred.values()[287].is_nan());
        assert!(!pred.values()[0].is_nan());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            PersistentForecast::previous_day().name(),
            "persistent-prev-day"
        );
        assert_eq!(
            PersistentForecast::new(PersistentVariant::PreviousWeekAverage).name(),
            "persistent-week-avg"
        );
        assert_eq!(
            PersistentForecast::new(PersistentVariant::PreviousEquivalentDay).name(),
            "persistent-prev-eq-day"
        );
    }

    #[test]
    fn perfect_on_exact_daily_pattern() {
        // Property from the paper: persistent forecast is exact for a
        // noiseless periodic series.
        let hist = daily_sine(3, 15);
        let pred = PersistentForecast::previous_day()
            .fit_predict(&hist, 96)
            .unwrap();
        let truth = daily_sine(4, 15);
        let expected = truth.slice_values(hist.end(), hist.end() + 1440).unwrap();
        for (p, e) in pred.values().iter().zip(expected) {
            assert!((p - e).abs() < 1e-9);
        }
    }
}
