//! Competitive model execution — the §5/Figure 11 model-selection results
//! turned into a per-server racing [`Forecaster`].
//!
//! The paper compares SSA against the persistent heuristics per server class
//! and finds no single winner: persistent forecast wins on stable and
//! patterned servers while SSA earns its training cost only on a minority of
//! unstable ones. Instead of routing on a detected class (see
//! [`crate::select`]), this module *races* the candidates on a holdout and
//! keeps the winner:
//!
//! 1. Hold out the last full day of the training history; train every
//!    candidate on the prefix (cheapest candidate first).
//! 2. Score each candidate by its in-bound fraction on the holdout day —
//!    the same over/under tolerance the paper's accuracy definition uses
//!    ([`PatternThresholds::in_bound_fraction`]).
//! 3. Stop early when a candidate's holdout score clears the early-win
//!    threshold (the cheap persistent model usually ends the race before
//!    the expensive one starts), and skip any candidate whose estimated
//!    cost would overrun the race's shared convergence budget.
//! 4. Refit the winner on the full history.
//!
//! The race is deterministic: candidate order, holdout split, scoring, and
//! the points-based cost model are all pure functions of the input series,
//! so a fleet run with a competitive forecaster stays byte-identical across
//! thread counts.

use crate::persistent::PersistentForecast;
use crate::select::PatternThresholds;
use crate::ssa::SsaForecaster;
use crate::{FittedModel, ForecastError, Forecaster};
use seagull_timeseries::{TimeSeries, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One entrant in the competitive race.
#[derive(Clone)]
pub struct Candidate {
    /// The model family to race.
    pub forecaster: Arc<dyn Forecaster>,
    /// Coarse static cost estimate per training point, relative to a
    /// persistent heuristic at 1. Used by the shared convergence budget to
    /// decide whether this candidate may start at all.
    pub cost_weight: u64,
}

impl Candidate {
    /// Wraps a forecaster with its cost weight.
    pub fn new(forecaster: Arc<dyn Forecaster>, cost_weight: u64) -> Candidate {
        Candidate {
            forecaster,
            cost_weight: cost_weight.max(1),
        }
    }
}

/// Tuning for [`CompetitiveForecaster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompetitiveConfig {
    /// Holdout in-bound fraction at which the race stops early.
    pub early_win_ratio: f64,
    /// Over/under tolerance used to score holdout predictions.
    pub thresholds: PatternThresholds,
    /// Shared convergence budget per race, in cost points
    /// (`cost_weight × training points`). A candidate whose estimated cost
    /// would overrun the remaining budget is skipped — unless nothing has
    /// scored yet, so a race always produces a winner.
    pub budget_points: u64,
}

impl Default for CompetitiveConfig {
    fn default() -> Self {
        CompetitiveConfig {
            early_win_ratio: 0.95,
            thresholds: PatternThresholds::default(),
            // Roomy enough for a persistent pass plus one SSA fit over a
            // multi-week 5-minute-grid history; tighten to starve expensive
            // candidates sooner.
            budget_points: 250_000,
        }
    }
}

/// How one candidate fared in a race.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Candidate model name.
    pub name: &'static str,
    /// Holdout in-bound fraction; `None` if the candidate was skipped
    /// (budget) or failed to fit.
    pub score: Option<f64>,
    /// Whether the shared budget prevented this candidate from starting.
    pub budget_skipped: bool,
}

/// The outcome of one competitive race.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// Name of the winning candidate.
    pub winner: &'static str,
    /// Per-candidate scores in race (cheapest-first) order.
    pub scores: Vec<CandidateScore>,
    /// Whether the race stopped at the early-win threshold.
    pub early_win: bool,
    /// Whether the history was too short to hold out a day (the primary
    /// candidate won by default, unraced).
    pub unraced: bool,
}

/// Cumulative race statistics (atomic: shared across pipeline threads).
#[derive(Debug, Default)]
pub struct CompetitiveStats {
    races: AtomicU64,
    early_wins: AtomicU64,
    budget_skips: AtomicU64,
    unraced: AtomicU64,
    wins: Vec<AtomicU64>,
}

/// A snapshot of [`CompetitiveStats`], cheap to serialize into bench output.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Races run (holdout actually scored).
    pub races: u64,
    /// Races ended at the early-win threshold.
    pub early_wins: u64,
    /// Candidates skipped because the budget was exhausted.
    pub budget_skips: u64,
    /// Fits where the history was too short to race.
    pub unraced: u64,
    /// `(candidate name, wins)` in race order.
    pub wins: Vec<(&'static str, u64)>,
}

/// Races a cheap persistent forecaster against an expensive model per fit
/// and keeps whichever converges first within a shared budget.
pub struct CompetitiveForecaster {
    candidates: Vec<Candidate>,
    config: CompetitiveConfig,
    stats: CompetitiveStats,
}

impl CompetitiveForecaster {
    /// Builds a racer over explicit candidates, cheapest first. The first
    /// candidate is the *primary*: it also serves as the fallback when the
    /// history is too short to hold out a scoring day.
    pub fn new(candidates: Vec<Candidate>, config: CompetitiveConfig) -> CompetitiveForecaster {
        assert!(
            !candidates.is_empty(),
            "a race needs at least one candidate"
        );
        let wins = candidates.iter().map(|_| AtomicU64::new(0)).collect();
        CompetitiveForecaster {
            candidates,
            config,
            stats: CompetitiveStats {
                wins,
                ..CompetitiveStats::default()
            },
        }
    }

    /// The paper-shaped race: persistent previous-day (the production
    /// default, cost 1/point) vs. SSA (the strongest §5 challenger, cost
    /// weighted for its Hankel SVD).
    pub fn paper_defaults() -> CompetitiveForecaster {
        CompetitiveForecaster::new(
            vec![
                Candidate::new(Arc::new(PersistentForecast::previous_day()), 1),
                Candidate::new(Arc::new(SsaForecaster::default()), 32),
            ],
            CompetitiveConfig::default(),
        )
    }

    /// Snapshot of cumulative race statistics.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            races: self.stats.races.load(Ordering::Relaxed),
            early_wins: self.stats.early_wins.load(Ordering::Relaxed),
            budget_skips: self.stats.budget_skips.load(Ordering::Relaxed),
            unraced: self.stats.unraced.load(Ordering::Relaxed),
            wins: self
                .candidates
                .iter()
                .zip(&self.stats.wins)
                .map(|(c, w)| (c.forecaster.name(), w.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Runs the race and returns the winning fitted model (refit on the full
    /// history) together with the per-candidate report.
    pub fn race(
        &self,
        history: &TimeSeries,
    ) -> Result<(Box<dyn FittedModel>, RaceReport), ForecastError> {
        let Some(split) = holdout_split(history) else {
            // Too short to score: the primary candidate wins by default.
            self.stats.unraced.fetch_add(1, Ordering::Relaxed);
            self.stats.wins[0].fetch_add(1, Ordering::Relaxed);
            let fitted = self.candidates[0].forecaster.fit(history)?;
            return Ok((
                fitted,
                RaceReport {
                    winner: self.candidates[0].forecaster.name(),
                    scores: Vec::new(),
                    early_win: false,
                    unraced: true,
                },
            ));
        };
        let (train, truth) = split;
        let horizon = truth.len();

        let mut scores = Vec::with_capacity(self.candidates.len());
        let mut spent = 0u64;
        let mut early_win = false;
        for candidate in &self.candidates {
            let name = candidate.forecaster.name();
            if early_win {
                scores.push(CandidateScore {
                    name,
                    score: None,
                    budget_skipped: false,
                });
                continue;
            }
            let cost = candidate.cost_weight * train.len() as u64;
            let scored_any = scores.iter().any(|s: &CandidateScore| s.score.is_some());
            if scored_any && spent + cost > self.config.budget_points {
                self.stats.budget_skips.fetch_add(1, Ordering::Relaxed);
                scores.push(CandidateScore {
                    name,
                    score: None,
                    budget_skipped: true,
                });
                continue;
            }
            spent += cost;
            let score = candidate
                .forecaster
                .fit_predict(&train, horizon)
                .ok()
                .and_then(|pred| {
                    self.config
                        .thresholds
                        .in_bound_fraction(pred.values(), truth.values())
                });
            if score.is_some_and(|s| s >= self.config.early_win_ratio) {
                early_win = true;
            }
            scores.push(CandidateScore {
                name,
                score,
                budget_skipped: false,
            });
        }

        // Best holdout score wins; ties go to the earlier (cheaper) entrant.
        let winner_idx = scores
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.score.map(|v| (i, v)))
            .max_by(|(ia, va), (ib, vb)| {
                va.partial_cmp(vb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i);

        match winner_idx {
            Some(i) => {
                self.stats.races.fetch_add(1, Ordering::Relaxed);
                if early_win {
                    self.stats.early_wins.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.wins[i].fetch_add(1, Ordering::Relaxed);
                let fitted = self.candidates[i].forecaster.fit(history)?;
                Ok((
                    fitted,
                    RaceReport {
                        winner: self.candidates[i].forecaster.name(),
                        scores,
                        early_win,
                        unraced: false,
                    },
                ))
            }
            // Every candidate failed on the holdout split; surface the
            // primary's error on the full history (typically
            // InsufficientHistory, which the pipeline bypasses).
            None => Err(self.candidates[0]
                .forecaster
                .fit(history)
                .map(|_| ForecastError::Numerical("no candidate scored the holdout".into()))
                .unwrap_or_else(|e| e)),
        }
    }
}

/// Splits a history into `(train prefix, last-full-day holdout)`, or `None`
/// when the history cannot spare a scoring day.
fn holdout_split(history: &TimeSeries) -> Option<(TimeSeries, TimeSeries)> {
    let day = history.last_full_day()?;
    let day_start = Timestamp::from_days(day);
    let train = history.slice(history.start(), day_start).ok()?;
    // Keep at least one full day of training data so the cheap persistent
    // candidates can participate in their own race.
    if train.len() < train.points_per_day() {
        return None;
    }
    let truth = history.day(day)?;
    Some((train, truth))
}

impl Forecaster for CompetitiveForecaster {
    fn name(&self) -> &'static str {
        "competitive"
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        self.race(history).map(|(fitted, _)| fitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{detect_pattern, HistoryPattern};
    use crate::testutil::daily_sine;
    use seagull_timeseries::Timestamp;

    fn flat(days: usize) -> TimeSeries {
        TimeSeries::from_fn(Timestamp::from_days(100), 15, days * 96, |_| 25.0).unwrap()
    }

    #[test]
    fn persistent_wins_patterned_histories_like_the_selector_would() {
        // Where the selector would route to a persistent variant, the race's
        // winner must be the persistent candidate too (winner parity).
        let racer = CompetitiveForecaster::paper_defaults();
        for history in [flat(7), daily_sine(7, 15)] {
            let pattern = detect_pattern(&history, &PatternThresholds::default());
            assert_ne!(pattern, HistoryPattern::None, "history must be patterned");
            let (_, report) = racer.race(&history).unwrap();
            assert_eq!(report.winner, "persistent-prev-day");
            assert!(report.early_win, "persistent should end the race early");
        }
        let stats = racer.stats();
        assert_eq!(stats.races, 2);
        assert_eq!(stats.early_wins, 2);
        assert_eq!(stats.wins[0], ("persistent-prev-day", 2));
        assert_eq!(stats.wins[1].1, 0);
    }

    #[test]
    fn early_win_skips_the_expensive_candidate() {
        let racer = CompetitiveForecaster::paper_defaults();
        let (_, report) = racer.race(&daily_sine(7, 15)).unwrap();
        assert!(report.early_win);
        assert_eq!(report.scores.len(), 2);
        assert!(report.scores[0].score.is_some());
        assert_eq!(report.scores[1].score, None, "SSA never started");
        assert!(!report.scores[1].budget_skipped);
    }

    #[test]
    fn budget_starves_the_expensive_candidate() {
        // A ramp defeats previous-day persistence (every day differs by more
        // than the tolerance), so without a budget SSA would get its turn.
        let ramp = TimeSeries::from_fn(Timestamp::from_days(100), 15, 7 * 96, |t| {
            t.day_index() as f64 * 40.0
        })
        .unwrap();
        let tight = CompetitiveForecaster::new(
            vec![
                Candidate::new(Arc::new(PersistentForecast::previous_day()), 1),
                Candidate::new(Arc::new(SsaForecaster::default()), 32),
            ],
            CompetitiveConfig {
                budget_points: 1_000,
                ..CompetitiveConfig::default()
            },
        );
        let (_, report) = tight.race(&ramp).unwrap();
        assert!(
            report.scores[1].budget_skipped,
            "SSA must be budget-skipped"
        );
        assert_eq!(report.winner, "persistent-prev-day");
        assert_eq!(tight.stats().budget_skips, 1);
    }

    #[test]
    fn short_history_falls_back_to_primary_unraced() {
        let short = flat(1);
        let racer = CompetitiveForecaster::paper_defaults();
        let (_, report) = racer.race(&short).unwrap();
        assert!(report.unraced);
        assert_eq!(report.winner, "persistent-prev-day");
        assert_eq!(racer.stats().unraced, 1);
        assert_eq!(racer.stats().races, 0);
    }

    #[test]
    fn race_is_deterministic() {
        let history = daily_sine(14, 15);
        let a = CompetitiveForecaster::paper_defaults();
        let b = CompetitiveForecaster::paper_defaults();
        let (fit_a, rep_a) = a.race(&history).unwrap();
        let (fit_b, rep_b) = b.race(&history).unwrap();
        assert_eq!(rep_a, rep_b);
        let pa = fit_a.predict(96).unwrap();
        let pb = fit_b.predict(96).unwrap();
        assert_eq!(pa.values(), pb.values());
    }

    #[test]
    fn winner_is_refit_on_the_full_history() {
        // Previous-day persistence refit on the full history must replicate
        // the *last* day, not the last training day.
        let history = daily_sine(7, 15);
        let racer = CompetitiveForecaster::paper_defaults();
        let (fitted, _) = racer.race(&history).unwrap();
        let pred = fitted.predict(96).unwrap();
        assert_eq!(pred.values(), &history.values()[6 * 96..]);
    }
}
