//! Time-series diagnostics: autocorrelation, partial autocorrelation, and
//! the Ljung–Box whiteness statistic.
//!
//! These are the classical Box–Jenkins order-identification tools behind
//! auto-ARIMA: the PACF cutoff suggests the AR order, the ACF cutoff the MA
//! order, and Ljung–Box on the residuals checks whether a fitted model left
//! structure behind. [`crate::arima`] uses them to pre-screen its order grid
//! (`ArimaConfig::prescreen`), which is also how pmdarima keeps its search
//! tractable.

use serde::{Deserialize, Serialize};

/// Verdict of [`series_drift`]: how far a series moved from a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftVerdict {
    /// Level shift in baseline standard deviations (|Δmean| / σ₀).
    pub level_shift: f64,
    /// Scale ratio σ₁/σ₀ (1.0 when both are degenerate).
    pub scale_ratio: f64,
    /// Whether either signal crossed its drift threshold.
    pub drifted: bool,
}

/// Level shift beyond this many baseline sigmas flags drift.
const DRIFT_LEVEL_SIGMAS: f64 = 3.0;
/// Scale ratio outside `[1/x, x]` flags drift.
const DRIFT_SCALE_FACTOR: f64 = 2.5;

/// Compare a series against baseline `(mean, std)` statistics captured at an
/// earlier fit, flagging level or scale shifts that should invalidate a
/// cached model (see `crate::cache`).
///
/// Deterministic and cheap (two passes over `values`). A near-constant
/// baseline (σ₀ ≈ 0) falls back to a relative-mean gate so flat series
/// don't flag drift on numeric noise.
pub fn series_drift(baseline_mean: f64, baseline_std: f64, values: &[f64]) -> DriftVerdict {
    if values.is_empty() {
        return DriftVerdict {
            level_shift: 0.0,
            scale_ratio: 1.0,
            drifted: false,
        };
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    // Floor the denominator so flat baselines use a 5%-of-level gate.
    let denom = baseline_std.max(0.05 * baseline_mean.abs()).max(1e-9);
    let level_shift = (mean - baseline_mean).abs() / denom;
    let scale_ratio = if baseline_std <= 1e-9 && std <= 1e-9 {
        1.0
    } else {
        std / baseline_std.max(1e-9)
    };
    let drifted = level_shift > DRIFT_LEVEL_SIGMAS
        || !(1.0 / DRIFT_SCALE_FACTOR..=DRIFT_SCALE_FACTOR).contains(&scale_ratio);
    DriftVerdict {
        level_shift,
        scale_ratio,
        drifted,
    }
}

/// Sample autocorrelation for lags `0..=max_lag` (index 0 is always 1).
///
/// Returns an empty vector for series shorter than 2 points or with zero
/// variance.
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = seagull_timeseries::mean(series);
    let denom: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if denom <= 1e-12 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let num: f64 = series[lag..]
            .iter()
            .zip(series)
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum();
        out.push(num / denom);
    }
    out
}

/// Partial autocorrelation for lags `1..=max_lag` via the Durbin–Levinson
/// recursion. `pacf(x, k)[0]` is the lag-1 partial autocorrelation.
pub fn pacf(series: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(series, max_lag);
    if rho.len() < 2 {
        return Vec::new();
    }
    let max_lag = rho.len() - 1;
    let mut phi_prev = vec![0.0f64; max_lag + 1];
    let mut phi = vec![0.0f64; max_lag + 1];
    let mut out = Vec::with_capacity(max_lag);
    // k = 1.
    phi_prev[1] = rho[1];
    out.push(rho[1]);
    let mut v = 1.0 - rho[1] * rho[1];
    for k in 2..=max_lag {
        let mut num = rho[k];
        for j in 1..k {
            num -= phi_prev[j] * rho[k - j];
        }
        if v.abs() <= 1e-12 {
            out.push(0.0);
            continue;
        }
        let phi_kk = num / v;
        for j in 1..k {
            phi[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
        }
        phi[k] = phi_kk;
        v *= 1.0 - phi_kk * phi_kk;
        phi_prev[..=k].copy_from_slice(&phi[..=k]);
        out.push(phi_kk);
    }
    out
}

/// The Ljung–Box portmanteau statistic over the first `lags` residual
/// autocorrelations. Large values (vs. a χ²(lags) reference) indicate the
/// residuals are not white noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LjungBox {
    /// The portmanteau statistic value.
    pub statistic: f64,
    /// Number of autocorrelation lags summed.
    pub lags: usize,
}

/// Computes the Ljung–Box statistic.
pub fn ljung_box(residuals: &[f64], lags: usize) -> Option<LjungBox> {
    let n = residuals.len();
    if n < lags + 2 {
        return None;
    }
    let rho = acf(residuals, lags);
    if rho.len() <= lags {
        return None;
    }
    let nf = n as f64;
    let statistic = nf
        * (nf + 2.0)
        * rho[1..=lags]
            .iter()
            .enumerate()
            .map(|(i, r)| r * r / (nf - (i + 1) as f64))
            .sum::<f64>();
    Some(LjungBox { statistic, lags })
}

/// Suggests `(max_p, max_q)` for an ARIMA grid from the significant PACF and
/// ACF lags (cutoff at the usual ±1.96/√n band), capped at `cap`.
pub fn suggest_orders(series: &[f64], cap: usize) -> (usize, usize) {
    let n = series.len();
    if n < 10 {
        return (cap, cap);
    }
    let band = 1.96 / (n as f64).sqrt();
    let last_significant = |vals: &[f64]| {
        vals.iter()
            .rposition(|v| v.abs() > band)
            .map(|i| i + 1)
            .unwrap_or(0)
    };
    let rho = acf(series, cap);
    if rho.len() <= 1 {
        // Degenerate series (constant / too short): no information, keep the
        // full grid.
        return (cap, cap);
    }
    let p = last_significant(&pacf(series, cap));
    let q = last_significant(&rho[1..]);
    (p.min(cap), q.min(cap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(phi: f64, n: usize) -> Vec<f64> {
        // Deterministic AR(1) sequence driven by well-mixed hash noise.
        let mut x = 0.0f64;
        (0..n)
            .map(|i| {
                let mut h = (i as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                h ^= h >> 31;
                let e = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                x = phi * x + e;
                x
            })
            .collect()
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let x = ar1(0.7, 500);
        let r = acf(&x, 10);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert_eq!(r.len(), 11);
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        let x = ar1(0.8, 4000);
        let r = acf(&x, 3);
        assert!(r[1] > 0.6, "lag1 {}", r[1]);
        // rho(2) ≈ rho(1)^2 for AR(1).
        assert!(
            (r[2] - r[1] * r[1]).abs() < 0.1,
            "{} vs {}",
            r[2],
            r[1] * r[1]
        );
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let x = ar1(0.8, 4000);
        let p = pacf(&x, 6);
        assert!(p[0] > 0.6, "lag1 pacf {}", p[0]);
        for (i, v) in p.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.1, "pacf lag {} = {v}", i + 1);
        }
    }

    #[test]
    fn white_noise_has_small_ljung_box() {
        let noise: Vec<f64> = (0..2000)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ 0xabcdef;
                let h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let lb = ljung_box(&noise, 10).unwrap();
        // chi^2(10) 95th percentile is 18.3.
        assert!(lb.statistic < 25.0, "statistic {}", lb.statistic);
        let structured = ar1(0.8, 2000);
        let lb2 = ljung_box(&structured, 10).unwrap();
        assert!(lb2.statistic > 100.0, "structured {}", lb2.statistic);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(acf(&[1.0], 3).is_empty());
        assert!(acf(&[2.0; 50], 3).is_empty(), "zero variance");
        assert!(pacf(&[1.0, 2.0], 0).is_empty());
        assert!(ljung_box(&[1.0, 2.0], 5).is_none());
    }

    #[test]
    fn suggest_orders_for_ar_process() {
        let x = ar1(0.8, 3000);
        let (p, q) = suggest_orders(&x, 5);
        assert!(p >= 1, "AR structure detected: p={p}");
        assert!(q <= 5);
        let flat = vec![0.0; 3000];
        assert_eq!(
            suggest_orders(&flat, 5),
            (5, 5),
            "degenerate falls back to cap"
        );
    }
}
