//! Per-class model selection — Section 5.2's "ML Model per Class of Servers".
//!
//! The paper discusses (and ultimately declines, for operational simplicity)
//! deploying a different model per class of servers: persistent forecast for
//! stable and patterned servers, an ML model for unstable servers. This
//! module implements that strategy as a composable [`Forecaster`], so the
//! ablation harness can quantify what the simpler single-model deployment
//! gave up ("it is easier to maintain a single model for the entire fleet of
//! servers than a different model per each class", Section 5.4).
//!
//! Classification happens on the *training history* at fit time using the
//! same Definitions 4–6 logic as the classifier proper.

use crate::persistent::{PersistentForecast, PersistentVariant};
use crate::{FittedModel, ForecastError, Forecaster};
use seagull_timeseries::TimeSeries;
use std::sync::Arc;

/// The pattern detected in a training history (a history-local mirror of the
/// fleet classifier's pattern hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryPattern {
    /// A constant (mean-predictable) history.
    Stable,
    /// Each day conforms to the previous day.
    Daily,
    /// Each day conforms to the same day one week earlier.
    Weekly,
    /// No detected pattern (unstable).
    None,
}

/// Thresholds for history-local pattern detection. These mirror the
/// `seagull-core` classifier's defaults; they are duplicated here (rather
/// than imported) because `seagull-core` depends on this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternThresholds {
    /// Tolerated over-prediction (CPU points).
    pub over: f64,
    /// Tolerated under-prediction (CPU points).
    pub under: f64,
    /// Required fraction of in-bound points, `[0, 1]`.
    pub ratio: f64,
}

impl Default for PatternThresholds {
    fn default() -> Self {
        PatternThresholds {
            over: 10.0,
            under: 5.0,
            ratio: 0.9,
        }
    }
}

impl PatternThresholds {
    fn in_bound(&self, predicted: f64, truth: f64) -> bool {
        let err = predicted - truth;
        err <= self.over && -err <= self.under
    }

    /// Fraction of comparable points where `predicted` lands within the
    /// over/under tolerance of `truth` (NaN truths are skipped, NaN
    /// predictions count as misses); `None` when nothing is comparable.
    ///
    /// This is the scoring primitive behind both pattern detection and the
    /// competitive-execution race in [`crate::competitive`].
    pub fn in_bound_fraction(&self, predicted: &[f64], truth: &[f64]) -> Option<f64> {
        let mut hits = 0usize;
        let mut total = 0usize;
        for (&p, &t) in predicted.iter().zip(truth) {
            if t.is_nan() {
                continue;
            }
            total += 1;
            if !p.is_nan() && self.in_bound(p, t) {
                hits += 1;
            }
        }
        (total > 0).then(|| hits as f64 / total as f64)
    }

    fn ratio_ok(&self, predicted: &[f64], truth: &[f64]) -> bool {
        self.in_bound_fraction(predicted, truth)
            .is_some_and(|f| f >= self.ratio)
    }
}

/// Detects the pattern of a training history.
pub fn detect_pattern(history: &TimeSeries, thresholds: &PatternThresholds) -> HistoryPattern {
    // Stable: the mean predicts the whole history.
    let present: Vec<f64> = history
        .values()
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    if present.is_empty() {
        return HistoryPattern::None;
    }
    let mean = seagull_timeseries::mean(&present);
    let constant = vec![mean; history.len()];
    if thresholds.ratio_ok(&constant, history.values()) {
        return HistoryPattern::Stable;
    }
    // Daily: every consecutive day pair conforms.
    let lag_ok = |lag: i64| {
        let (Some(first), Some(last)) = (history.first_full_day(), history.last_full_day()) else {
            return false;
        };
        let mut pairs = 0;
        for d in (first + lag)..=last {
            let (Some(today), Some(earlier)) = (history.day_values(d), history.day_values(d - lag))
            else {
                continue;
            };
            pairs += 1;
            if !thresholds.ratio_ok(earlier, today) {
                return false;
            }
        }
        pairs > 0
    };
    if lag_ok(1) {
        HistoryPattern::Daily
    } else if lag_ok(7) {
        HistoryPattern::Weekly
    } else {
        HistoryPattern::None
    }
}

/// A forecaster that routes each server to a model by its detected pattern.
pub struct ClassAwareForecaster {
    thresholds: PatternThresholds,
    stable: Arc<dyn Forecaster>,
    daily: Arc<dyn Forecaster>,
    weekly: Arc<dyn Forecaster>,
    unstable: Arc<dyn Forecaster>,
}

impl ClassAwareForecaster {
    /// Builds a router with explicit per-class models.
    pub fn new(
        thresholds: PatternThresholds,
        stable: Arc<dyn Forecaster>,
        daily: Arc<dyn Forecaster>,
        weekly: Arc<dyn Forecaster>,
        unstable: Arc<dyn Forecaster>,
    ) -> ClassAwareForecaster {
        ClassAwareForecaster {
            thresholds,
            stable,
            daily,
            weekly,
            unstable,
        }
    }

    /// The Section 5.2 configuration: persistent variants matched to their
    /// classes, with a pluggable model for unstable servers.
    pub fn paper_defaults(unstable: Arc<dyn Forecaster>) -> ClassAwareForecaster {
        ClassAwareForecaster::new(
            PatternThresholds::default(),
            Arc::new(PersistentForecast::new(
                PersistentVariant::PreviousWeekAverage,
            )),
            Arc::new(PersistentForecast::new(PersistentVariant::PreviousDay)),
            Arc::new(PersistentForecast::new(
                PersistentVariant::PreviousEquivalentDay,
            )),
            unstable,
        )
    }

    /// Which model a history routes to.
    pub fn route(&self, history: &TimeSeries) -> (&'static str, &Arc<dyn Forecaster>) {
        match detect_pattern(history, &self.thresholds) {
            HistoryPattern::Stable => ("stable", &self.stable),
            HistoryPattern::Daily => ("daily", &self.daily),
            HistoryPattern::Weekly => ("weekly", &self.weekly),
            HistoryPattern::None => ("unstable", &self.unstable),
        }
    }
}

impl Forecaster for ClassAwareForecaster {
    fn name(&self) -> &'static str {
        "class-aware"
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let (_, model) = self.route(history);
        match model.fit(history) {
            Ok(fitted) => Ok(fitted),
            // If the class-specific model cannot fit (e.g. the weekly
            // variant on six days of history), fall back to the daily model,
            // which has the weakest requirements.
            Err(_) => self.daily.fit(history),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::daily_sine;
    use seagull_timeseries::{TimeSeries, Timestamp};

    fn flat(days: usize) -> TimeSeries {
        TimeSeries::from_fn(Timestamp::from_days(700), 15, days * 96, |_| 25.0).unwrap()
    }

    fn weekly(days: usize) -> TimeSeries {
        TimeSeries::from_fn(Timestamp::from_days(700), 15, days * 96, |t| {
            if t.day_of_week().is_weekend() {
                5.0
            } else {
                60.0
            }
        })
        .unwrap()
    }

    fn chaos(days: usize) -> TimeSeries {
        TimeSeries::from_fn(Timestamp::from_days(700), 15, days * 96, |t| {
            let b = t.minutes() / 200;
            ((b.wrapping_mul(2654435761)) % 83) as f64
        })
        .unwrap()
    }

    #[test]
    fn pattern_detection() {
        let th = PatternThresholds::default();
        assert_eq!(detect_pattern(&flat(7), &th), HistoryPattern::Stable);
        assert_eq!(
            detect_pattern(&daily_sine(7, 15), &th),
            HistoryPattern::Daily
        );
        assert_eq!(detect_pattern(&weekly(15), &th), HistoryPattern::Weekly);
        assert_eq!(detect_pattern(&chaos(7), &th), HistoryPattern::None);
        let empty = TimeSeries::empty(Timestamp::EPOCH, 15).unwrap();
        assert_eq!(detect_pattern(&empty, &th), HistoryPattern::None);
    }

    #[test]
    fn routes_to_matching_model() {
        let router =
            ClassAwareForecaster::paper_defaults(Arc::new(PersistentForecast::previous_day()));
        assert_eq!(router.route(&flat(7)).0, "stable");
        assert_eq!(router.route(&daily_sine(7, 15)).0, "daily");
        assert_eq!(router.route(&weekly(15)).0, "weekly");
        assert_eq!(router.route(&chaos(7)).0, "unstable");
    }

    #[test]
    fn forecasts_flow_through_routed_model() {
        let router =
            ClassAwareForecaster::paper_defaults(Arc::new(PersistentForecast::previous_day()));
        // Stable history -> week-average model -> constant prediction.
        let pred = router.fit_predict(&flat(7), 96).unwrap();
        assert!(pred.values().iter().all(|v| (v - 25.0).abs() < 1e-9));
        // Daily history -> previous-day replication.
        let hist = daily_sine(7, 15);
        let pred = router.fit_predict(&hist, 96).unwrap();
        assert_eq!(pred.values(), &hist.values()[6 * 96..]);
    }

    #[test]
    fn weekly_fallback_when_history_too_short() {
        // Weekly-shaped but only 6 days: the weekly model cannot fit, the
        // router falls back to previous-day instead of failing.
        let short = weekly(6);
        let router =
            ClassAwareForecaster::paper_defaults(Arc::new(PersistentForecast::previous_day()));
        // Detection needs a (d, d-7) pair, so this classifies as
        // stable/daily/none; whatever the route, fit must succeed.
        assert!(router.fit(&short).is_ok());
    }
}
