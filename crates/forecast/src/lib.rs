//! # seagull-forecast
//!
//! The forecasting-model zoo of the Seagull paper (Section 5.1), implemented
//! from scratch:
//!
//! * [`persistent`] — the three persistent-forecast heuristics (previous day,
//!   previous equivalent day, previous-week average). These ended up being
//!   the production model: "we deployed persistent forecast based on previous
//!   day to predict low load for all servers".
//! * [`ssa`] — singular spectrum analysis with recurrent forecasting, the
//!   algorithm behind NimbusML/ML.NET's `SsaForecaster`.
//! * [`feedforward`] — a simple feed-forward neural network estimator, the
//!   GluonTS model the paper trains ("we train a simple feed forward
//!   estimator").
//! * [`additive`] — a Prophet-style additive model: piecewise-linear trend
//!   with changepoints plus Fourier daily/weekly seasonality.
//! * [`arima`] — ARIMA(p,d,q) with an automatic order grid search, matching
//!   pmdarima's auto-ARIMA behaviour (and, as in the paper, its cost).
//!
//! Every model implements [`Forecaster`], whose two-phase `fit` → `predict`
//! split lets the evaluation harness time training and inference separately
//! (paper Figure 11(a)).

#![warn(missing_docs)]

pub mod additive;
pub mod arima;
pub mod cache;
pub mod competitive;
pub mod diagnostics;
pub mod feedforward;
pub mod persistent;
pub mod select;
pub mod ssa;

use seagull_timeseries::{TimeSeries, TimeSeriesError};
use std::fmt;

pub use additive::{AdditiveConfig, AdditiveForecaster};
pub use arima::{ArimaConfig, ArimaForecaster, ArimaOrder};
pub use cache::{
    shape_sketch, sketches_similar, CacheStats, CacheUpdate, CachedFit, Lookup, MissReason,
    ModelCache,
};
pub use competitive::{
    Candidate, CandidateScore, CompetitiveConfig, CompetitiveForecaster, RaceReport, StatsSnapshot,
};
pub use diagnostics::{acf, ljung_box, pacf, series_drift, suggest_orders, DriftVerdict, LjungBox};
pub use feedforward::{FeedForwardConfig, FeedForwardForecaster};
pub use persistent::{PersistentForecast, PersistentVariant};
pub use select::{detect_pattern, ClassAwareForecaster, HistoryPattern, PatternThresholds};
pub use ssa::{SsaConfig, SsaForecaster, SsaKernel};

/// Errors produced by forecasting models.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// The model needs more history than was provided.
    InsufficientHistory {
        /// Minimum points the model requires.
        needed: usize,
        /// Points actually provided.
        got: usize,
    },
    /// The history contains NaN/infinite values; models require gap-filled
    /// input (see `seagull_timeseries::fill_gaps`).
    NonFiniteHistory,
    /// A numerical routine failed (singular system, no convergence, ...).
    Numerical(String),
    /// Series construction failed (grid misalignment and the like).
    Series(TimeSeriesError),
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::InsufficientHistory { needed, got } => {
                write!(f, "insufficient history: need {needed} points, got {got}")
            }
            ForecastError::NonFiniteHistory => write!(f, "history contains non-finite values"),
            ForecastError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            ForecastError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for ForecastError {}

impl From<TimeSeriesError> for ForecastError {
    fn from(e: TimeSeriesError) -> Self {
        ForecastError::Series(e)
    }
}

impl From<seagull_linalg::LinalgError> for ForecastError {
    fn from(e: seagull_linalg::LinalgError) -> Self {
        ForecastError::Numerical(e.to_string())
    }
}

/// A fitted model, ready for inference.
///
/// Predictions start at the first grid point after the training history and
/// share its grid.
pub trait FittedModel: Send + Sync {
    /// Predicts the next `horizon` points.
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError>;

    /// Stable label of the numerical kernel that produced this fit (e.g.
    /// `"ssa-randomized"`, `"ssa-dense"`). The pipeline exports per-kernel
    /// fit counts so kernel selection is observable in production; models
    /// with a single fitting path report `"default"`.
    fn fit_kernel(&self) -> &'static str {
        "default"
    }
}

/// A forecasting model family.
///
/// `fit` consumes history and returns a [`FittedModel`]; the two-phase split
/// exists so the harness can measure training and inference separately, as
/// the paper's Figure 11(a) does. [`Forecaster::fit_predict`] is the one-shot
/// convenience used everywhere else.
pub trait Forecaster: Send + Sync {
    /// Stable model name used in experiment output (e.g. `"persistent-prev-day"`).
    fn name(&self) -> &'static str;

    /// Fits the model to `history`.
    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError>;

    /// Fits and immediately predicts `horizon` points.
    fn fit_predict(
        &self,
        history: &TimeSeries,
        horizon: usize,
    ) -> Result<TimeSeries, ForecastError> {
        self.fit(history)?.predict(horizon)
    }

    /// Fits a batch of histories in one kernel invocation.
    ///
    /// The pipeline groups same-shape (same length / step) servers and hands
    /// each group here so implementations can hoist shape-dependent setup —
    /// sketches, factorization workspace — across the batch. Two contracts
    /// hold for every implementation:
    ///
    /// 1. **Parity**: result `i` is bitwise identical to `self.fit(&histories[i])`
    ///    run in isolation (batching is a pure performance optimization);
    /// 2. **Isolation**: one history failing to fit yields an `Err` in its
    ///    slot only — the rest of the batch still fits.
    ///
    /// The default implementation fits sequentially, which already satisfies
    /// both (and reuses factorization buffers through the thread-local
    /// scratch pool).
    fn fit_batch(
        &self,
        histories: &[&TimeSeries],
    ) -> Vec<Result<Box<dyn FittedModel>, ForecastError>> {
        histories.iter().map(|h| self.fit(h)).collect()
    }
}

/// Validates history for models that need clean, sufficiently long input.
pub(crate) fn check_history(history: &TimeSeries, min_points: usize) -> Result<(), ForecastError> {
    if history.len() < min_points {
        return Err(ForecastError::InsufficientHistory {
            needed: min_points,
            got: history.len(),
        });
    }
    if history.check_finite().is_err() {
        return Err(ForecastError::NonFiniteHistory);
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use seagull_timeseries::{TimeSeries, Timestamp};

    /// A noiseless daily sine pattern: value depends only on minute-of-day.
    pub fn daily_sine(days: usize, step_min: u32) -> TimeSeries {
        let n = days * (1440 / step_min as usize);
        TimeSeries::from_fn(Timestamp::from_days(100), step_min, n, |t| {
            let m = t.minute_of_day() as f64;
            30.0 + 20.0 * (2.0 * std::f64::consts::PI * m / 1440.0).sin()
        })
        .unwrap()
    }

    /// Root-mean-square error between two equal-length series.
    pub fn rmse(a: &TimeSeries, b: &TimeSeries) -> f64 {
        assert_eq!(a.len(), b.len());
        let s: f64 = a
            .values()
            .iter()
            .zip(b.values())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        (s / a.len() as f64).sqrt()
    }
}
