//! Singular Spectrum Analysis with recurrent forecasting.
//!
//! This is the algorithm behind NimbusML/ML.NET's `SsaForecaster`, which the
//! paper applies to unstable servers: "Specifically, we use Singular Spectrum
//! Analysis to transform forecasts" (Section 5.1).
//!
//! The implementation follows the classical Basic SSA + R-forecasting recipe
//! (Golyandina et al.):
//!
//! 1. embed the series into an `L × K` Hankel trajectory matrix;
//! 2. take its SVD and keep the leading eigentriples covering an energy
//!    fraction (the *signal subspace*);
//! 3. reconstruct the smoothed signal by diagonal averaging;
//! 4. derive the linear recurrence relation (LRR) from the signal subspace
//!    and iterate it to produce the forecast.

use crate::{check_history, FittedModel, ForecastError, Forecaster};
use seagull_linalg::{hankel_matrix, hankelize, thin_svd, Matrix};
use seagull_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// SSA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsaConfig {
    /// Embedding window length `L`. The classical guidance is `n/2 ≥ L ≥
    /// period`; for 5-minute telemetry a few hours works well and keeps the
    /// `L × L` eigenproblem cheap.
    pub window: usize,
    /// Keep the smallest set of leading components whose squared singular
    /// values cover this energy fraction.
    pub energy: f64,
    /// Hard cap on the number of retained components.
    pub max_rank: usize,
}

impl Default for SsaConfig {
    fn default() -> Self {
        SsaConfig {
            window: 72, // 6 hours at 5-minute granularity
            energy: 0.92,
            max_rank: 12,
        }
    }
}

/// The SSA forecaster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsaForecaster {
    config: SsaConfig,
}

impl SsaForecaster {
    /// Creates a forecaster with the given configuration.
    pub fn new(config: SsaConfig) -> SsaForecaster {
        SsaForecaster { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SsaConfig {
        &self.config
    }
}

impl Default for SsaForecaster {
    fn default() -> Self {
        SsaForecaster::new(SsaConfig::default())
    }
}

impl Forecaster for SsaForecaster {
    fn name(&self) -> &'static str {
        "ssa"
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let l = self.config.window;
        if l < 2 {
            return Err(ForecastError::Numerical(
                "SSA window must be at least 2".into(),
            ));
        }
        // Need at least 2L points so that K = n - L + 1 > L (a proper
        // trajectory matrix) and the LRR has data to run on.
        check_history(history, 2 * l)?;
        // No centering: the DC level is captured by the leading eigentriple,
        // keeping the linear recurrence valid on the raw signal.
        let traj = hankel_matrix(history.values(), l);
        let svd_result = thin_svd(&traj);
        let traj_cols = traj.cols();
        traj.recycle();
        let svd = svd_result?;

        // Pick the signal subspace by cumulative energy.
        let total: f64 = svd.sigma.iter().map(|s| s * s).sum();
        let mut rank = 0;
        let mut acc = 0.0;
        for s in &svd.sigma {
            if rank >= self.config.max_rank {
                break;
            }
            rank += 1;
            acc += s * s;
            if total > 0.0 && acc / total >= self.config.energy {
                break;
            }
        }
        let rank = rank.max(1);

        // The LRR needs the verticality coefficient v² = Σ π_i² < 1 where
        // π_i is the last coordinate of the i-th left singular vector.
        let mut v2 = 0.0;
        for c in 0..rank {
            let pi = svd.u[(l - 1, c)];
            v2 += pi * pi;
        }
        if v2 >= 1.0 - 1e-9 {
            return Err(ForecastError::Numerical(
                "SSA series is non-forecastable (vertical signal subspace)".into(),
            ));
        }
        // R_j = (1/(1-v²)) Σ_i π_i · U_i[j], j = 0..L-1.
        let mut lrr = vec![0.0f64; l - 1];
        for c in 0..rank {
            let pi = svd.u[(l - 1, c)];
            if pi == 0.0 {
                continue;
            }
            for (j, r) in lrr.iter_mut().enumerate() {
                *r += pi * svd.u[(j, c)];
            }
        }
        for r in &mut lrr {
            *r /= 1.0 - v2;
        }

        // Reconstruct the smoothed signal (rank-r approximation of the
        // trajectory matrix, diagonally averaged) to seed the recurrence with
        // denoised values.
        let approx: Matrix = {
            // U_r diag(sigma_r) V_rᵀ done column block at a time.
            let mut m = Matrix::zeros_pooled(l, traj_cols);
            for c in 0..rank {
                let s = svd.sigma[c];
                for i in 0..l {
                    let us = svd.u[(i, c)] * s;
                    if us == 0.0 {
                        continue;
                    }
                    let row = m.row_mut(i);
                    for (j, r) in row.iter_mut().enumerate() {
                        *r += us * svd.v[(j, c)];
                    }
                }
            }
            m
        };
        let signal = hankelize(&approx);
        approx.recycle();
        svd.u.recycle();
        svd.v.recycle();

        Ok(Box::new(FittedSsa {
            signal,
            lrr,
            template: history.clone(),
        }))
    }
}

struct FittedSsa {
    /// Denoised history (same length as the input).
    signal: Vec<f64>,
    /// Linear recurrence coefficients, length `L-1`.
    lrr: Vec<f64>,
    template: TimeSeries,
}

impl FittedModel for FittedSsa {
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
        let l1 = self.lrr.len();
        let mut buf = self.signal.clone();
        buf.reserve(horizon);
        for _ in 0..horizon {
            let n = buf.len();
            let next: f64 = self
                .lrr
                .iter()
                .zip(&buf[n - l1..])
                .map(|(r, z)| r * z)
                .sum();
            // Load is a percentage; clamp forecasts into the physical range
            // so a marginally unstable LRR cannot run away over long horizons.
            buf.push(next.clamp(0.0, 100.0));
        }
        Ok(TimeSeries::new(
            self.template.end(),
            self.template.step_min(),
            buf[self.signal.len()..].to_vec(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{daily_sine, rmse};
    use seagull_timeseries::{TimeSeries, Timestamp};

    #[test]
    fn forecasts_pure_sine_accurately() {
        let hist = daily_sine(3, 15); // 96/day, 288 points
        let model = SsaForecaster::new(SsaConfig {
            window: 48,
            energy: 0.999,
            max_rank: 8,
        });
        let pred = model.fit_predict(&hist, 96).unwrap();
        let truth = daily_sine(4, 15);
        let expect = truth.slice(hist.end(), hist.end() + 1440).unwrap();
        let err = rmse(&pred, &expect);
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 600, |_| 42.0).unwrap();
        let pred = SsaForecaster::default().fit_predict(&hist, 50).unwrap();
        for v in pred.values() {
            assert!((v - 42.0).abs() < 0.5, "value {v}");
        }
    }

    #[test]
    fn linear_trend_continues() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 400, |t| {
            20.0 + 0.01 * (t.minutes() - 5 * 1440) as f64 / 5.0
        })
        .unwrap();
        let model = SsaForecaster::new(SsaConfig {
            window: 30,
            energy: 0.9999,
            max_rank: 4,
        });
        let pred = model.fit_predict(&hist, 20).unwrap();
        // The trend should keep rising.
        let last_hist = hist.values()[hist.len() - 1];
        assert!(pred.values()[19] > last_hist, "trend should continue");
        // And roughly linearly.
        let expect = last_hist + 0.01 * 20.0;
        assert!((pred.values()[19] - expect).abs() < 0.5);
    }

    #[test]
    fn insufficient_history_rejected() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 100, |_| 1.0).unwrap();
        let model = SsaForecaster::default(); // window 72 needs 144 points
        assert!(matches!(
            model.fit(&hist),
            Err(ForecastError::InsufficientHistory { .. })
        ));
    }

    #[test]
    fn nan_history_rejected() {
        let mut hist = daily_sine(2, 5);
        hist.values_mut()[3] = f64::NAN;
        assert!(matches!(
            SsaForecaster::default().fit(&hist),
            Err(ForecastError::NonFiniteHistory)
        ));
    }

    #[test]
    fn forecast_grid_follows_history() {
        let hist = daily_sine(2, 5);
        let pred = SsaForecaster::default().fit_predict(&hist, 12).unwrap();
        assert_eq!(pred.start(), hist.end());
        assert_eq!(pred.step_min(), 5);
        assert_eq!(pred.len(), 12);
    }

    #[test]
    fn forecasts_stay_in_percentage_range() {
        // A noisy-ish deterministic series that could excite instability.
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 500, |t| {
            let x = t.minutes() as f64;
            50.0 + 30.0 * (x / 97.0).sin() + 15.0 * (x / 13.0).cos()
        })
        .unwrap();
        let pred = SsaForecaster::default().fit_predict(&hist, 1000).unwrap();
        for v in pred.values() {
            assert!((0.0..=100.0).contains(v));
        }
    }

    #[test]
    fn repeated_fits_reuse_scratch_buffers() {
        let hist = daily_sine(3, 15);
        let model = SsaForecaster::new(SsaConfig {
            window: 48,
            energy: 0.999,
            max_rank: 8,
        });
        // First fit seeds this thread's pool; later fits draw from it.
        model.fit(&hist).unwrap();
        let before = seagull_linalg::scratch::stats();
        model.fit(&hist).unwrap();
        let after = seagull_linalg::scratch::stats();
        assert!(
            after.reuses > before.reuses,
            "second fit reused no scratch buffers ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn tiny_window_rejected() {
        let hist = daily_sine(2, 5);
        let model = SsaForecaster::new(SsaConfig {
            window: 1,
            energy: 0.9,
            max_rank: 3,
        });
        assert!(model.fit(&hist).is_err());
    }
}
