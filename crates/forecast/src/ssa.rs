//! Singular Spectrum Analysis with recurrent forecasting.
//!
//! This is the algorithm behind NimbusML/ML.NET's `SsaForecaster`, which the
//! paper applies to unstable servers: "Specifically, we use Singular Spectrum
//! Analysis to transform forecasts" (Section 5.1).
//!
//! The implementation follows the classical Basic SSA + R-forecasting recipe
//! (Golyandina et al.):
//!
//! 1. embed the series into an `L × K` Hankel trajectory matrix;
//! 2. take its SVD and keep the leading eigentriples covering an energy
//!    fraction (the *signal subspace*);
//! 3. reconstruct the smoothed signal by diagonal averaging;
//! 4. derive the linear recurrence relation (LRR) from the signal subspace
//!    and iterate it to produce the forecast.

use crate::{check_history, FittedModel, ForecastError, Forecaster};
use seagull_linalg::{
    hankel_gram, hankel_matrix, hankelize, kernel, scratch, thin_svd, truncated_eigh_with_sketch,
    Matrix,
};
use seagull_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// Which factorization backs the SSA fit.
///
/// The fitted forecast is pinned to the dense path within
/// [`RANDOMIZED_PARITY_TOL`]; kernel choice is a performance decision, not a
/// model change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SsaKernel {
    /// Pick automatically: randomized when the window comfortably exceeds
    /// the sketched subspace (`L ≥ 2·(max_rank + oversample)`), dense
    /// otherwise.
    #[default]
    Auto,
    /// Full cyclic-Jacobi eigendecomposition of the trajectory SVD — the
    /// reference path.
    Dense,
    /// Randomized truncated subspace of the trajectory Gram matrix.
    Randomized,
}

/// Maximum absolute forecast divergence between the randomized and dense
/// kernels, on the 0–100 load scale. Degenerate eigenvalue pairs (pure
/// sinusoids split across two equal-σ components) allow the two paths to
/// pick different bases for the same signal subspace; everything the LRR and
/// reconstruction consume is subspace-invariant, so the divergence stays at
/// numerical-noise level. Asserted by the parity test suite and the fit
/// bench.
pub const RANDOMIZED_PARITY_TOL: f64 = 5e-3;

/// SSA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsaConfig {
    /// Embedding window length `L`. The classical guidance is `n/2 ≥ L ≥
    /// period`; for 5-minute telemetry a few hours works well and keeps the
    /// `L × L` eigenproblem cheap.
    pub window: usize,
    /// Keep the smallest set of leading components whose squared singular
    /// values cover this energy fraction.
    pub energy: f64,
    /// Hard cap on the number of retained components.
    pub max_rank: usize,
    /// Factorization backend (defaults to [`SsaKernel::Auto`]).
    #[serde(default)]
    pub kernel: SsaKernel,
}

impl Default for SsaConfig {
    fn default() -> Self {
        SsaConfig {
            window: 72, // 6 hours at 5-minute granularity
            energy: 0.92,
            max_rank: 12,
            kernel: SsaKernel::Auto,
        }
    }
}

/// Sketch columns beyond `max_rank` for the randomized kernel (the
/// oversampling parameter of the range finder).
const OVERSAMPLE: usize = 8;

/// Power iterations for the randomized kernel.
const POWER_ITERS: usize = 2;

/// Base seed for the Gaussian sketch. The effective seed mixes in the
/// problem shape only — never the server or batch position — so a given
/// `(window, rank)` always draws the same sketch and batched fits are
/// bitwise identical to solo fits.
const SKETCH_SEED: u64 = 0x5ea9_0111_7af1_75eb;

fn sketch_seed(l: usize, q: usize) -> u64 {
    SKETCH_SEED ^ ((l as u64) << 32) ^ q as u64
}

/// The SSA forecaster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsaForecaster {
    config: SsaConfig,
}

impl SsaForecaster {
    /// Creates a forecaster with the given configuration.
    pub fn new(config: SsaConfig) -> SsaForecaster {
        SsaForecaster { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SsaConfig {
        &self.config
    }

    /// Sketch width `q = min(max_rank + oversample, L)` of the randomized
    /// kernel for this configuration.
    fn sketch_width(&self) -> usize {
        (self.config.max_rank + OVERSAMPLE).min(self.config.window)
    }

    /// The kernel [`SsaKernel::Auto`] resolves to for this configuration:
    /// randomized only when the window strictly exceeds twice the sketch
    /// width (below that the subspace projection saves nothing over dense
    /// Jacobi, which is also the fallback rule inside the eigensolver).
    pub fn resolved_kernel(&self) -> SsaKernel {
        match self.config.kernel {
            SsaKernel::Auto => {
                if self.config.window > 2 * self.sketch_width() {
                    SsaKernel::Randomized
                } else {
                    SsaKernel::Dense
                }
            }
            k => k,
        }
    }

    /// Window sanity + history validation shared by both kernels.
    fn validate(&self, history: &TimeSeries) -> Result<(), ForecastError> {
        let l = self.config.window;
        if l < 2 {
            return Err(ForecastError::Numerical(
                "SSA window must be at least 2".into(),
            ));
        }
        // Need at least 2L points so that K = n - L + 1 > L (a proper
        // trajectory matrix) and the LRR has data to run on.
        check_history(history, 2 * l)
    }

    /// Reference path: full trajectory-matrix SVD via dense cyclic Jacobi.
    fn fit_dense(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        let l = self.config.window;
        // No centering: the DC level is captured by the leading eigentriple,
        // keeping the linear recurrence valid on the raw signal.
        let traj = hankel_matrix(history.values(), l);
        let svd_result = thin_svd(&traj);
        let traj_cols = traj.cols();
        traj.recycle();
        let svd = svd_result?;

        // Pick the signal subspace by cumulative energy.
        let total: f64 = svd.sigma.iter().map(|s| s * s).sum();
        let mut rank = 0;
        let mut acc = 0.0;
        for s in &svd.sigma {
            if rank >= self.config.max_rank {
                break;
            }
            rank += 1;
            acc += s * s;
            if total > 0.0 && acc / total >= self.config.energy {
                break;
            }
        }
        let rank = rank.max(1);

        // The LRR needs the verticality coefficient v² = Σ π_i² < 1 where
        // π_i is the last coordinate of the i-th left singular vector.
        let mut v2 = 0.0;
        for c in 0..rank {
            let pi = svd.u[(l - 1, c)];
            v2 += pi * pi;
        }
        if v2 >= 1.0 - 1e-9 {
            return Err(ForecastError::Numerical(
                "SSA series is non-forecastable (vertical signal subspace)".into(),
            ));
        }
        // R_j = (1/(1-v²)) Σ_i π_i · U_i[j], j = 0..L-1.
        let mut lrr = vec![0.0f64; l - 1];
        for c in 0..rank {
            let pi = svd.u[(l - 1, c)];
            if pi == 0.0 {
                continue;
            }
            for (j, r) in lrr.iter_mut().enumerate() {
                *r += pi * svd.u[(j, c)];
            }
        }
        for r in &mut lrr {
            *r /= 1.0 - v2;
        }

        // Reconstruct the smoothed signal (rank-r approximation of the
        // trajectory matrix, diagonally averaged) to seed the recurrence with
        // denoised values.
        let approx: Matrix = {
            // U_r diag(sigma_r) V_rᵀ done column block at a time.
            let mut m = Matrix::zeros_pooled(l, traj_cols);
            for c in 0..rank {
                let s = svd.sigma[c];
                let vc = svd.v.col(c);
                for i in 0..l {
                    kernel::axpy(m.row_mut(i), svd.u[(i, c)] * s, &vc);
                }
            }
            m
        };
        let signal = hankelize(&approx);
        approx.recycle();
        svd.u.recycle();
        svd.v.recycle();

        Ok(Box::new(FittedSsa {
            signal,
            lrr,
            template: history.clone(),
            kernel: "ssa-dense",
        }))
    }

    /// Fast path: randomized truncated eigendecomposition of the trajectory
    /// Gram matrix, with the projection and reconstruction fused into
    /// convolution-style axpys over the raw series (the `L × K` trajectory
    /// matrix is never materialized).
    fn fit_randomized(
        &self,
        history: &TimeSeries,
        sketch: &Matrix,
    ) -> Result<Box<dyn FittedModel>, ForecastError> {
        let s = history.values();
        let n = s.len();
        let l = self.config.window;
        let k = n - l + 1;
        let g = hankel_gram(s, l);
        // Total spectral energy Σ σ² = trace(G): the truncated path never
        // sees the tail of the spectrum, but the trace carries its sum
        // exactly, so energy-based rank selection matches the dense rule.
        let total: f64 = (0..l).map(|i| g[(i, i)]).sum();
        let eig_result = truncated_eigh_with_sketch(&g, sketch.rows(), sketch, POWER_ITERS);
        g.recycle();
        let eig = eig_result?;

        // Pick the signal subspace by cumulative energy (λ = σ²).
        let mut rank = 0;
        let mut acc = 0.0;
        for &lambda in &eig.values {
            if rank >= self.config.max_rank {
                break;
            }
            rank += 1;
            acc += lambda.max(0.0);
            if total > 0.0 && acc / total >= self.config.energy {
                break;
            }
        }
        let rank = rank.max(1);

        // Verticality check on the last coordinate of each eigenvector
        // (rows of vectors_t are the left singular vectors of the
        // trajectory matrix).
        let mut v2 = 0.0;
        for c in 0..rank {
            let pi = eig.vectors_t[(c, l - 1)];
            v2 += pi * pi;
        }
        if v2 >= 1.0 - 1e-9 {
            eig.recycle();
            return Err(ForecastError::Numerical(
                "SSA series is non-forecastable (vertical signal subspace)".into(),
            ));
        }
        // R_j = (1/(1-v²)) Σ_i π_i · U_i[j], j = 0..L-1.
        let mut lrr = vec![0.0f64; l - 1];
        for c in 0..rank {
            let urow = eig.vectors_t.row(c);
            kernel::axpy(&mut lrr, urow[l - 1], &urow[..l - 1]);
        }
        for r in &mut lrr {
            *r /= 1.0 - v2;
        }

        // Signal reconstruction without V: the rank-r trajectory
        // approximation is U_r (U_rᵀ A); both products run as contiguous
        // axpys over series windows. First P = U_rᵀ A (rank × K)…
        let mut p = Matrix::zeros_pooled(rank, k);
        for c in 0..rank {
            let urow = eig.vectors_t.row(c);
            let prow = p.row_mut(c);
            for (i, &u) in urow.iter().enumerate() {
                kernel::axpy(prow, u, &s[i..i + k]);
            }
        }
        // …then the anti-diagonal sums of U_r P, accumulated directly into
        // the signal buffer (fused hankelization — the L × K approximation
        // is never materialized either).
        let mut sums = scratch::take(n);
        sums.resize(n, 0.0);
        for c in 0..rank {
            let urow = eig.vectors_t.row(c);
            let prow = p.row(c);
            for (i, &u) in urow.iter().enumerate() {
                kernel::axpy(&mut sums[i..i + k], u, prow);
            }
        }
        p.recycle();
        eig.recycle();
        // Divide each anti-diagonal sum by its cell count to finish the
        // diagonal averaging.
        for (t, v) in sums.iter_mut().enumerate() {
            let count = (t + 1).min(l).min(k).min(n - t);
            *v /= count as f64;
        }

        Ok(Box::new(FittedSsa {
            signal: sums,
            lrr,
            template: history.clone(),
            kernel: "ssa-randomized",
        }))
    }
}

impl Default for SsaForecaster {
    fn default() -> Self {
        SsaForecaster::new(SsaConfig::default())
    }
}

impl Forecaster for SsaForecaster {
    fn name(&self) -> &'static str {
        "ssa"
    }

    fn fit(&self, history: &TimeSeries) -> Result<Box<dyn FittedModel>, ForecastError> {
        self.validate(history)?;
        match self.resolved_kernel() {
            SsaKernel::Randomized => {
                let l = self.config.window;
                let q = self.sketch_width();
                let sketch = seagull_linalg::gaussian_sketch(q, l, sketch_seed(l, q));
                let out = self.fit_randomized(history, &sketch);
                sketch.recycle();
                out
            }
            _ => self.fit_dense(history),
        }
    }

    /// One kernel invocation for a same-shape batch: the Gaussian sketch is
    /// drawn once per group and shared across every member, and the pooled
    /// Gram/projection workspace recycles exact-size between consecutive
    /// fits. Results are bitwise identical to solo fits (the sketch depends
    /// only on shape and seed), and a failing member yields an `Err` in its
    /// slot without disturbing the rest.
    fn fit_batch(
        &self,
        histories: &[&TimeSeries],
    ) -> Vec<Result<Box<dyn FittedModel>, ForecastError>> {
        if self.resolved_kernel() != SsaKernel::Randomized {
            return histories.iter().map(|h| self.fit(h)).collect();
        }
        let l = self.config.window;
        let q = self.sketch_width();
        let sketch = seagull_linalg::gaussian_sketch(q, l, sketch_seed(l, q));
        let out = histories
            .iter()
            .map(|h| {
                self.validate(h)?;
                self.fit_randomized(h, &sketch)
            })
            .collect();
        sketch.recycle();
        out
    }
}

struct FittedSsa {
    /// Denoised history (same length as the input).
    signal: Vec<f64>,
    /// Linear recurrence coefficients, length `L-1`.
    lrr: Vec<f64>,
    template: TimeSeries,
    /// Which factorization produced this fit.
    kernel: &'static str,
}

impl FittedModel for FittedSsa {
    fn predict(&self, horizon: usize) -> Result<TimeSeries, ForecastError> {
        let l1 = self.lrr.len();
        let mut buf = self.signal.clone();
        buf.reserve(horizon);
        for _ in 0..horizon {
            let n = buf.len();
            let next: f64 = self
                .lrr
                .iter()
                .zip(&buf[n - l1..])
                .map(|(r, z)| r * z)
                .sum();
            // Load is a percentage; clamp forecasts into the physical range
            // so a marginally unstable LRR cannot run away over long horizons.
            buf.push(next.clamp(0.0, 100.0));
        }
        Ok(TimeSeries::new(
            self.template.end(),
            self.template.step_min(),
            buf[self.signal.len()..].to_vec(),
        )?)
    }

    fn fit_kernel(&self) -> &'static str {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{daily_sine, rmse};
    use seagull_timeseries::{TimeSeries, Timestamp};

    #[test]
    fn forecasts_pure_sine_accurately() {
        let hist = daily_sine(3, 15); // 96/day, 288 points
        let model = SsaForecaster::new(SsaConfig {
            window: 48,
            energy: 0.999,
            max_rank: 8,
            kernel: SsaKernel::Auto,
        });
        let pred = model.fit_predict(&hist, 96).unwrap();
        let truth = daily_sine(4, 15);
        let expect = truth.slice(hist.end(), hist.end() + 1440).unwrap();
        let err = rmse(&pred, &expect);
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 600, |_| 42.0).unwrap();
        let pred = SsaForecaster::default().fit_predict(&hist, 50).unwrap();
        for v in pred.values() {
            assert!((v - 42.0).abs() < 0.5, "value {v}");
        }
    }

    #[test]
    fn linear_trend_continues() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 400, |t| {
            20.0 + 0.01 * (t.minutes() - 5 * 1440) as f64 / 5.0
        })
        .unwrap();
        let model = SsaForecaster::new(SsaConfig {
            window: 30,
            energy: 0.9999,
            max_rank: 4,
            kernel: SsaKernel::Auto,
        });
        let pred = model.fit_predict(&hist, 20).unwrap();
        // The trend should keep rising.
        let last_hist = hist.values()[hist.len() - 1];
        assert!(pred.values()[19] > last_hist, "trend should continue");
        // And roughly linearly.
        let expect = last_hist + 0.01 * 20.0;
        assert!((pred.values()[19] - expect).abs() < 0.5);
    }

    #[test]
    fn insufficient_history_rejected() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 100, |_| 1.0).unwrap();
        let model = SsaForecaster::default(); // window 72 needs 144 points
        assert!(matches!(
            model.fit(&hist),
            Err(ForecastError::InsufficientHistory { .. })
        ));
    }

    #[test]
    fn nan_history_rejected() {
        let mut hist = daily_sine(2, 5);
        hist.values_mut()[3] = f64::NAN;
        assert!(matches!(
            SsaForecaster::default().fit(&hist),
            Err(ForecastError::NonFiniteHistory)
        ));
    }

    #[test]
    fn forecast_grid_follows_history() {
        let hist = daily_sine(2, 5);
        let pred = SsaForecaster::default().fit_predict(&hist, 12).unwrap();
        assert_eq!(pred.start(), hist.end());
        assert_eq!(pred.step_min(), 5);
        assert_eq!(pred.len(), 12);
    }

    #[test]
    fn forecasts_stay_in_percentage_range() {
        // A noisy-ish deterministic series that could excite instability.
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 500, |t| {
            let x = t.minutes() as f64;
            50.0 + 30.0 * (x / 97.0).sin() + 15.0 * (x / 13.0).cos()
        })
        .unwrap();
        let pred = SsaForecaster::default().fit_predict(&hist, 1000).unwrap();
        for v in pred.values() {
            assert!((0.0..=100.0).contains(v));
        }
    }

    #[test]
    fn repeated_fits_reuse_scratch_buffers() {
        let hist = daily_sine(3, 15);
        let model = SsaForecaster::new(SsaConfig {
            window: 48,
            energy: 0.999,
            max_rank: 8,
            kernel: SsaKernel::Auto,
        });
        // First fit seeds this thread's pool; later fits draw from it.
        model.fit(&hist).unwrap();
        let before = seagull_linalg::scratch::stats();
        model.fit(&hist).unwrap();
        let after = seagull_linalg::scratch::stats();
        assert!(
            after.reuses > before.reuses,
            "second fit reused no scratch buffers ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn tiny_window_rejected() {
        let hist = daily_sine(2, 5);
        let model = SsaForecaster::new(SsaConfig {
            window: 1,
            energy: 0.9,
            max_rank: 3,
            kernel: SsaKernel::Auto,
        });
        assert!(model.fit(&hist).is_err());
    }

    fn with_kernel(kernel: SsaKernel) -> SsaForecaster {
        SsaForecaster::new(SsaConfig {
            kernel,
            ..SsaConfig::default()
        })
    }

    #[test]
    fn auto_resolves_randomized_for_default_config() {
        // Default window 72 ≥ 2·(12+8): the fast path must be the default.
        assert_eq!(
            SsaForecaster::default().resolved_kernel(),
            SsaKernel::Randomized
        );
        // A window too small to amortize the sketch stays dense.
        let small = SsaForecaster::new(SsaConfig {
            window: 24,
            energy: 0.92,
            max_rank: 12,
            kernel: SsaKernel::Auto,
        });
        assert_eq!(small.resolved_kernel(), SsaKernel::Dense);
    }

    #[test]
    fn fit_kernel_labels_report_the_path_taken() {
        let hist = daily_sine(3, 5);
        let fast = with_kernel(SsaKernel::Randomized).fit(&hist).unwrap();
        assert_eq!(fast.fit_kernel(), "ssa-randomized");
        let dense = with_kernel(SsaKernel::Dense).fit(&hist).unwrap();
        assert_eq!(dense.fit_kernel(), "ssa-dense");
    }

    #[test]
    fn randomized_forecast_parity_with_dense() {
        // Forecast-level parity on a realistic mixed signal, pinned to the
        // published tolerance.
        let hist = TimeSeries::from_fn(Timestamp::from_days(7), 5, 2016, |t| {
            let m = t.minutes() as f64;
            45.0 + 25.0 * (2.0 * std::f64::consts::PI * m / 1440.0).sin()
                + 8.0 * (2.0 * std::f64::consts::PI * m / 360.0).cos()
                + 3.0 * ((m / 35.0).sin() * (m / 11.0).cos())
        })
        .unwrap();
        let fast = with_kernel(SsaKernel::Randomized)
            .fit_predict(&hist, 288)
            .unwrap();
        let dense = with_kernel(SsaKernel::Dense)
            .fit_predict(&hist, 288)
            .unwrap();
        let max_diff = fast
            .values()
            .iter()
            .zip(dense.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff <= RANDOMIZED_PARITY_TOL,
            "kernel divergence {max_diff} exceeds tolerance {RANDOMIZED_PARITY_TOL}"
        );
    }

    #[test]
    fn randomized_constant_series_forecasts_constant() {
        let hist = TimeSeries::from_fn(Timestamp::from_days(5), 5, 600, |_| 42.0).unwrap();
        let pred = with_kernel(SsaKernel::Randomized)
            .fit_predict(&hist, 50)
            .unwrap();
        for v in pred.values() {
            assert!((v - 42.0).abs() < 0.5, "value {v}");
        }
    }

    #[test]
    fn batched_fit_is_bitwise_identical_to_solo() {
        let histories: Vec<TimeSeries> = (0..4)
            .map(|i| {
                TimeSeries::from_fn(Timestamp::from_days(3), 5, 400, |t| {
                    let m = t.minutes() as f64;
                    40.0 + (5 + i) as f64 * (m / (100.0 + i as f64)).sin()
                })
                .unwrap()
            })
            .collect();
        let model = SsaForecaster::default();
        assert_eq!(model.resolved_kernel(), SsaKernel::Randomized);
        let refs: Vec<&TimeSeries> = histories.iter().collect();
        let batched = model.fit_batch(&refs);
        for (h, b) in histories.iter().zip(batched) {
            let solo = model.fit(h).unwrap().predict(96).unwrap();
            let batch_pred = b.unwrap().predict(96).unwrap();
            for (x, y) in solo.values().iter().zip(batch_pred.values()) {
                assert_eq!(x.to_bits(), y.to_bits(), "batched fit diverged from solo");
            }
        }
    }

    #[test]
    fn batched_fit_isolates_failures() {
        let good = daily_sine(3, 5);
        let mut bad = daily_sine(3, 5);
        bad.values_mut()[7] = f64::NAN;
        let model = SsaForecaster::default();
        let results = model.fit_batch(&[&good, &bad, &good]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ForecastError::NonFiniteHistory)));
        assert!(results[2].is_ok());
    }

    #[test]
    fn randomized_fits_reuse_scratch_buffers() {
        let hist = daily_sine(3, 5);
        let model = with_kernel(SsaKernel::Randomized);
        model.fit(&hist).unwrap();
        let before = seagull_linalg::scratch::stats();
        model.fit(&hist).unwrap();
        let after = seagull_linalg::scratch::stats();
        assert!(
            after.reuses > before.reuses,
            "second randomized fit reused no scratch buffers ({before:?} -> {after:?})"
        );
    }
}
