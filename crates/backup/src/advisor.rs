//! Customer backup-window advisor — the Section 6.2 extension.
//!
//! "More recently, customers can select a backup window themselves. However,
//! they may not know the best time to run a backup" (Section 1), and "We also
//! use the lowest load window metric to measure if backup windows selected by
//! customers correspond to predictable lowest load windows and suggest
//! windows with expected lower load instead" (Section 6.2).
//!
//! The advisor compares a customer-selected window against the predicted
//! lowest-load window on the same day and emits a suggestion when the
//! customer's choice is materially worse — but only for servers that pass
//! the predictability gate, so customers are never nagged on the basis of
//! guesswork.

use crate::scheduler::BackupScheduler;
use seagull_core::evaluate::predictability;
use seagull_core::metrics::{lowest_load_window, LowLoadWindow};
use seagull_core::par::parallel_map;
use seagull_forecast::Forecaster;
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_timeseries::Timestamp;
use serde::{Deserialize, Serialize};

/// A customer's chosen backup window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CustomerWindow {
    pub server_id: u64,
    /// Minute of day the customer picked (0..1440).
    pub start_minute: u32,
}

/// The advisor's verdict for one customer window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Advice {
    /// The customer's window already sits within the acceptable bound of the
    /// predicted lowest-load window — leave them alone.
    KeepCurrent { predicted_load_in_window: f64 },
    /// A materially lower window exists; suggest it.
    Suggest {
        window: LowLoadWindow,
        predicted_load_in_current: f64,
        predicted_improvement: f64,
    },
    /// The server is not predictable enough to advise on.
    NotPredictable,
    /// The customer's window could not be evaluated (insufficient data).
    NotEvaluable,
}

/// One advisory record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowAdvice {
    pub server_id: u64,
    pub day: i64,
    pub advice: Advice,
}

/// The advisor, layered on the scheduler's configuration (shared error
/// bound, gate length, training window).
#[derive(Debug, Clone, Copy)]
pub struct WindowAdvisor {
    pub scheduler: BackupScheduler,
}

impl WindowAdvisor {
    /// Creates an advisor.
    pub fn new(scheduler: BackupScheduler) -> WindowAdvisor {
        WindowAdvisor { scheduler }
    }

    /// Advises one customer about their window on `day`.
    pub fn advise(
        &self,
        server: &ServerTelemetry,
        customer: CustomerWindow,
        day: i64,
        forecaster: &dyn Forecaster,
    ) -> WindowAdvice {
        let cfg = &self.scheduler.config.evaluation;
        let duration = server.meta.backup.duration_min;
        let mk = |advice| WindowAdvice {
            server_id: server.meta.id.0,
            day,
            advice,
        };

        // Gate: only advise on predictable servers (Definition 9, anchored
        // like the scheduler's gate).
        let verdict = predictability(server, day - 6, forecaster, cfg);
        if !verdict.predictable {
            return mk(Advice::NotPredictable);
        }

        // Predict the day.
        let day_start = Timestamp::from_days(day);
        let Ok(history) = server
            .series
            .slice(Timestamp::from_days(day - cfg.train_days), day_start)
        else {
            return mk(Advice::NotEvaluable);
        };
        let Ok(predicted) = forecaster.fit_predict(&history, history.points_per_day()) else {
            return mk(Advice::NotEvaluable);
        };
        let Some(best) = lowest_load_window(&predicted, duration) else {
            return mk(Advice::NotEvaluable);
        };

        // Predicted load inside the customer's window. Windows starting too
        // late to fit inside the day cannot be evaluated.
        let cust_start = day_start + customer.start_minute as i64;
        let Ok(vals) = predicted.slice_values(cust_start, cust_start + duration as i64) else {
            return mk(Advice::NotEvaluable);
        };
        let current = seagull_timeseries::mean(vals);

        // The paper's Definition 8 logic, applied to the customer's choice:
        // within the bound of the best window means "good enough".
        let bound = &cfg.accuracy.bound;
        if bound.contains(current, best.mean_load) {
            mk(Advice::KeepCurrent {
                predicted_load_in_window: current,
            })
        } else {
            mk(Advice::Suggest {
                window: best,
                predicted_load_in_current: current,
                predicted_improvement: current - best.mean_load,
            })
        }
    }

    /// Advises a batch of customers in parallel.
    pub fn advise_fleet(
        &self,
        pairs: &[(ServerTelemetry, CustomerWindow)],
        day_of: impl Fn(&ServerTelemetry) -> i64 + Sync,
        forecaster: &dyn Forecaster,
        threads: usize,
    ) -> Vec<WindowAdvice> {
        parallel_map(pairs, threads, |(server, customer)| {
            self.advise(server, *customer, day_of(server), forecaster)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use seagull_core::evaluate::backup_day_in_week;
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::{ClassMix, FleetGenerator, FleetSpec, RegionSpec};
    use seagull_telemetry::server::GeneratedClass;

    fn fleet_of(class: GeneratedClass, n: usize) -> (Vec<ServerTelemetry>, i64) {
        let mix = match class {
            GeneratedClass::Stable => ClassMix {
                short_lived: 0.0,
                stable: 1.0,
                daily: 0.0,
                weekly: 0.0,
                unstable: 0.0,
            },
            GeneratedClass::DailyPattern => ClassMix {
                short_lived: 0.0,
                stable: 0.0,
                daily: 1.0,
                weekly: 0.0,
                unstable: 0.0,
            },
            _ => ClassMix {
                short_lived: 0.0,
                stable: 0.0,
                daily: 0.0,
                weekly: 0.0,
                unstable: 1.0,
            },
        };
        let spec = FleetSpec {
            seed: 31,
            regions: vec![RegionSpec {
                name: "adv".into(),
                servers: n,
            }],
            start_day: 17_997,
            grid_min: 5,
            mix,
            capacity_reaching: 0.0,
        };
        let start = spec.start_day;
        (FleetGenerator::new(spec).generate_weeks(5), start)
    }

    fn advisor() -> WindowAdvisor {
        WindowAdvisor::new(BackupScheduler::new(SchedulerConfig::default()))
    }

    #[test]
    fn peak_hour_choice_on_daily_server_gets_a_suggestion() {
        let (fleet, start) = fleet_of(GeneratedClass::DailyPattern, 10);
        let model = PersistentForecast::previous_day();
        let mut suggested = 0;
        for server in &fleet {
            let day = backup_day_in_week(server, start + 28);
            // A customer picks the busiest hour of the previous day (each
            // server's diurnal phase is randomized, so locate its peak).
            let prev = server.series.day_values(day - 1).unwrap();
            let peak_idx = prev
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let start_minute =
                ((peak_idx as u32 * 5).min(1440 - server.meta.backup.duration_min)) / 5 * 5;
            let advice = advisor().advise(
                server,
                CustomerWindow {
                    server_id: server.meta.id.0,
                    start_minute,
                },
                day,
                &model,
            );
            if let Advice::Suggest {
                predicted_improvement,
                ..
            } = advice.advice
            {
                assert!(predicted_improvement > 0.0);
                suggested += 1;
            }
        }
        assert!(
            suggested > fleet.len() / 2,
            "most peak-hour choices on patterned servers should be improvable \
             ({suggested}/{})",
            fleet.len()
        );
    }

    #[test]
    fn good_choice_on_stable_server_is_kept() {
        let (fleet, start) = fleet_of(GeneratedClass::Stable, 10);
        let model = PersistentForecast::previous_day();
        for server in &fleet {
            let day = backup_day_in_week(server, start + 28);
            let advice = advisor().advise(
                server,
                CustomerWindow {
                    server_id: server.meta.id.0,
                    start_minute: 3 * 60,
                },
                day,
                &model,
            );
            assert!(
                matches!(advice.advice, Advice::KeepCurrent { .. }),
                "flat load: every window is already within the bound, got {:?}",
                advice.advice
            );
        }
    }

    #[test]
    fn unstable_servers_get_no_advice() {
        let (fleet, start) = fleet_of(GeneratedClass::Unstable, 10);
        let model = PersistentForecast::previous_day();
        let mut not_predictable = 0;
        for server in &fleet {
            let day = backup_day_in_week(server, start + 28);
            let advice = advisor().advise(
                server,
                CustomerWindow {
                    server_id: server.meta.id.0,
                    start_minute: 0,
                },
                day,
                &model,
            );
            if matches!(advice.advice, Advice::NotPredictable) {
                not_predictable += 1;
            }
        }
        assert!(
            not_predictable > fleet.len() / 2,
            "unpredictable servers must be left alone ({not_predictable})"
        );
    }

    #[test]
    fn oversized_window_start_is_not_evaluable() {
        let (fleet, start) = fleet_of(GeneratedClass::Stable, 1);
        let model = PersistentForecast::previous_day();
        let server = &fleet[0];
        let day = backup_day_in_week(server, start + 28);
        let advice = advisor().advise(
            server,
            CustomerWindow {
                server_id: server.meta.id.0,
                start_minute: 1439, // cannot fit any real backup before midnight
            },
            day,
            &model,
        );
        assert!(matches!(advice.advice, Advice::NotEvaluable));
    }

    #[test]
    fn advise_fleet_parallel_matches_serial() {
        let (fleet, start) = fleet_of(GeneratedClass::DailyPattern, 8);
        let model = PersistentForecast::previous_day();
        let pairs: Vec<(ServerTelemetry, CustomerWindow)> = fleet
            .iter()
            .map(|s| {
                (
                    s.clone(),
                    CustomerWindow {
                        server_id: s.meta.id.0,
                        start_minute: 12 * 60,
                    },
                )
            })
            .collect();
        let day_of = |s: &ServerTelemetry| backup_day_in_week(s, start + 28);
        let serial = advisor().advise_fleet(&pairs, day_of, &model, 1);
        let parallel = advisor().advise_fleet(&pairs, day_of, &model, 4);
        assert_eq!(serial, parallel);
    }
}
