//! # seagull-backup
//!
//! The backup-scheduling use case — the paper's "use-case-specific online
//! components" (Section 2.3) plus the impact analysis of Section 6.2.
//!
//! * [`fabric`] — the Service Fabric property store substitute: the scheduler
//!   "stores the start time of this window as a service fabric property of
//!   respective PostgreSQL and MySQL database instances. This property is
//!   used by the backup service to schedule backups."
//! * [`duration`] — the backup-duration model mapping database size to the
//!   expected full-backup length `b` of Definition 7.
//! * [`scheduler`] — the backup-scheduling algorithm: verify three weeks of
//!   predictability, pick the predicted lowest-load window, write the fabric
//!   property; unpredictable or young servers keep the default time.
//! * [`runner`] — the Master Data Service runner substitute: "the backup
//!   scheduler runs within Master Data Service (MDS) runner per day and
//!   cluster."
//! * [`impact`] — the Figure 13 impact analysis: moved/already-optimal/
//!   incorrect windows per server class, busy-server collision avoidance,
//!   hours of improved customer experience, and the capacity histogram.

pub mod advisor;
pub mod duration;
pub mod fabric;
pub mod impact;
pub mod runner;
pub mod scheduler;
pub mod weekday;

pub use advisor::{Advice, CustomerWindow, WindowAdvice, WindowAdvisor};
pub use duration::BackupDurationModel;
pub use fabric::{FabricPropertyStore, BACKUP_WINDOW_START_PROPERTY};
pub use impact::{analyze_impact, capacity_histogram, CapacityHistogram, ImpactReport};
pub use runner::{ClusterReport, RunnerReport, RunnerService};
pub use scheduler::{
    BackupScheduler, DefaultReason, ScheduleDecision, ScheduledBackup, SchedulerConfig,
};
pub use weekday::{WeekdayConfig, WeekdayOptimizer, WeekdayPlan};
