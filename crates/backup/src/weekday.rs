//! Cross-day backup optimization — the Section 6.1 extension.
//!
//! "To further optimize backup scheduling, we will move a backup of a server
//! from its default backup day to other day of the week if the load is lower
//! and/or prediction is more accurate on another day." The paper already
//! measures the evaluation cost of this feature (the 7-day variant of
//! Figure 12(b)); this module implements the optimizer itself.
//!
//! For every candidate day of the upcoming week the optimizer predicts the
//! day, finds its lowest-load window, and scores the candidate by predicted
//! window load; days whose *historical* prediction quality (over the
//! predictability gate's weeks) was poor are excluded. The best candidate
//! must beat the server's current backup day by a configurable margin to
//! justify the churn of moving the backup.

use crate::scheduler::{BackupScheduler, DefaultReason, ScheduleDecision, ScheduledBackup};
use seagull_core::evaluate::evaluate_backup_day;
use seagull_core::metrics::lowest_load_window;
use seagull_core::par::parallel_map;
use seagull_forecast::Forecaster;
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_timeseries::Timestamp;
use serde::{Deserialize, Serialize};

/// Weekday-optimizer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeekdayConfig {
    /// A candidate day must undercut the due day's predicted window load by
    /// this many CPU percentage points to justify moving the backup.
    pub min_improvement: f64,
    /// Candidate days must have been predicted correctly and accurately on
    /// this many prior weeks (reuses the Definition 9 machinery per day).
    pub history_weeks: usize,
}

impl Default for WeekdayConfig {
    fn default() -> Self {
        WeekdayConfig {
            min_improvement: 5.0,
            history_weeks: 3,
        }
    }
}

/// Outcome of weekday optimization for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeekdayPlan {
    pub server_id: u64,
    /// The server's originally due day this week.
    pub due_day: i64,
    /// The day the backup should run (== `due_day` when no move pays off).
    pub chosen_day: i64,
    /// Predicted mean window load on the due day (if predictable there).
    pub due_window_load: Option<f64>,
    /// Predicted mean window load on the chosen day.
    pub chosen_window_load: Option<f64>,
    /// The scheduled backup on the chosen day.
    pub backup: ScheduledBackup,
}

impl WeekdayPlan {
    /// True when the optimizer moved the backup off its due day.
    pub fn moved(&self) -> bool {
        self.chosen_day != self.due_day
    }
}

/// The cross-day optimizer, layered on the ordinary scheduler.
#[derive(Debug, Clone, Copy)]
pub struct WeekdayOptimizer {
    pub scheduler: BackupScheduler,
    pub config: WeekdayConfig,
}

impl WeekdayOptimizer {
    /// Creates an optimizer.
    pub fn new(scheduler: BackupScheduler, config: WeekdayConfig) -> WeekdayOptimizer {
        WeekdayOptimizer { scheduler, config }
    }

    /// Plans one server's backup for the week starting at `week_start_day`,
    /// where `due_day` is the server's configured day in that week.
    pub fn plan_server(
        &self,
        server: &ServerTelemetry,
        week_start_day: i64,
        due_day: i64,
        forecaster: &dyn Forecaster,
    ) -> WeekdayPlan {
        let eval_cfg = &self.scheduler.config.evaluation;
        let duration = server.meta.backup.duration_min;

        // Predicted window load for a candidate day, gated on that day's
        // historical prediction quality.
        let candidate_load = |day: i64| -> Option<f64> {
            // Gate: the same weekday must have evaluated correct + accurate
            // for the last `history_weeks` weeks.
            for k in 1..=self.config.history_weeks as i64 {
                let past = day - 7 * k;
                let e = evaluate_backup_day(server, past, forecaster, eval_cfg)?;
                if !(e.window_correct && e.load_accurate) {
                    return None;
                }
            }
            // Predict the candidate day from the week before it.
            let day_start = Timestamp::from_days(day);
            let history = server
                .series
                .slice(Timestamp::from_days(day - eval_cfg.train_days), day_start)
                .ok()?;
            let predicted = forecaster
                .fit_predict(&history, history.points_per_day())
                .ok()?;
            lowest_load_window(&predicted, duration).map(|w| w.mean_load)
        };

        let due_load = candidate_load(due_day);
        let mut chosen_day = due_day;
        let mut chosen_load = due_load;
        for offset in 0..7 {
            let day = week_start_day + offset;
            if day == due_day {
                continue;
            }
            let Some(load) = candidate_load(day) else {
                continue;
            };
            // A move must beat the incumbent by the margin; an unpredictable
            // due day is beaten by any predictable candidate.
            let beats = match chosen_load {
                Some(current) => {
                    let margin = if chosen_day == due_day {
                        self.config.min_improvement
                    } else {
                        0.0
                    };
                    load + margin < current
                }
                None => true,
            };
            if beats {
                chosen_day = day;
                chosen_load = Some(load);
            }
        }

        let backup = self
            .scheduler
            .schedule_server(server, chosen_day, forecaster);
        // If the chosen day turned out unschedulable after all, fall back to
        // the due day entirely.
        let backup = if chosen_day != due_day
            && matches!(
                backup.decision,
                ScheduleDecision::DefaultKept {
                    reason: DefaultReason::PredictionFailed
                }
            ) {
            chosen_day = due_day;
            chosen_load = due_load;
            self.scheduler.schedule_server(server, due_day, forecaster)
        } else {
            backup
        };

        WeekdayPlan {
            server_id: server.meta.id.0,
            due_day,
            chosen_day,
            due_window_load: due_load,
            chosen_window_load: chosen_load,
            backup,
        }
    }

    /// Plans the whole fleet for one week (each server evaluated on its due
    /// day plus all six alternatives — the expensive evaluation measured in
    /// Figure 12(b)'s 7-day variant).
    pub fn plan_week(
        &self,
        fleet: &[ServerTelemetry],
        week_start_day: i64,
        forecaster: &dyn Forecaster,
        threads: usize,
    ) -> Vec<WeekdayPlan> {
        parallel_map(fleet, threads, |server| {
            let due = crate::scheduler::due_day_in_week(server, week_start_day);
            self.plan_server(server, week_start_day, due, forecaster)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::{ClassMix, FleetGenerator, FleetSpec, RegionSpec};

    fn weekly_fleet(n: usize) -> (Vec<ServerTelemetry>, i64) {
        // Weekly-pattern servers: weekdays busy, weekends idle — the perfect
        // candidates for moving a weekday backup to a weekend.
        let spec = FleetSpec {
            seed: 5,
            regions: vec![RegionSpec {
                name: "wk".into(),
                servers: n,
            }],
            start_day: 17_997,
            grid_min: 5,
            mix: ClassMix {
                short_lived: 0.0,
                stable: 0.0,
                daily: 0.0,
                weekly: 1.0,
                unstable: 0.0,
            },
            capacity_reaching: 0.0,
        };
        let start = spec.start_day;
        (FleetGenerator::new(spec).generate_weeks(6), start)
    }

    #[test]
    fn moves_weekday_backups_toward_lower_days() {
        let (fleet, start) = weekly_fleet(30);
        let opt = WeekdayOptimizer::new(
            BackupScheduler::new(SchedulerConfig::default()),
            WeekdayConfig::default(),
        );
        let model = PersistentForecast::previous_day();
        let plans = opt.plan_week(&fleet, start + 35, &model, 2);
        assert_eq!(plans.len(), fleet.len());
        // Moves must never increase the predicted window load.
        for p in &plans {
            if p.moved() {
                let (due, chosen) = (
                    p.due_window_load.unwrap_or(f64::INFINITY),
                    p.chosen_window_load.expect("moved implies predictable"),
                );
                assert!(chosen < due, "move must improve: {chosen} vs {due}");
            }
            assert_eq!(p.backup.backup_day, p.chosen_day);
        }
        // Weekly-pattern servers due on busy weekdays should see real moves.
        let moved = plans.iter().filter(|p| p.moved()).count();
        assert!(moved > 0, "some backups should move to quieter days");
    }

    #[test]
    fn stable_servers_rarely_move() {
        // Flat load: no day is materially better, so the margin keeps
        // backups on their due day.
        let spec = FleetSpec {
            seed: 9,
            regions: vec![RegionSpec {
                name: "st".into(),
                servers: 20,
            }],
            start_day: 17_997,
            grid_min: 5,
            mix: ClassMix {
                short_lived: 0.0,
                stable: 1.0,
                daily: 0.0,
                weekly: 0.0,
                unstable: 0.0,
            },
            capacity_reaching: 0.0,
        };
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(6);
        let opt = WeekdayOptimizer::new(
            BackupScheduler::new(SchedulerConfig::default()),
            WeekdayConfig::default(),
        );
        let model = PersistentForecast::previous_day();
        let plans = opt.plan_week(&fleet, start + 35, &model, 2);
        // Flat load never justifies churn for a predictable due day: the
        // only admissible moves are away from due days whose own history
        // failed the gate ("prediction is more accurate on another day").
        for p in plans.iter().filter(|p| p.moved()) {
            assert!(
                p.due_window_load.is_none(),
                "a predictable flat due day must not move"
            );
        }
        let moved = plans.iter().filter(|p| p.moved()).count();
        assert!(moved * 5 <= plans.len(), "moves must be rare on flat load");
    }

    #[test]
    fn unpredictable_candidates_are_excluded() {
        let (fleet, start) = weekly_fleet(5);
        let opt = WeekdayOptimizer::new(
            BackupScheduler::new(SchedulerConfig::default()),
            WeekdayConfig {
                history_weeks: 8, // longer than the available history
                ..WeekdayConfig::default()
            },
        );
        let model = PersistentForecast::previous_day();
        // With an unsatisfiable gate no candidate (including the due day)
        // qualifies, so nothing moves and schedules fall back to defaults.
        let plans = opt.plan_week(&fleet, start + 35, &model, 1);
        assert!(plans.iter().all(|p| !p.moved()));
    }
}
