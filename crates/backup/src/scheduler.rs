//! The backup-scheduling algorithm (Section 2.3).
//!
//! "For those servers that are due for full backups the next day, the backup
//! scheduling algorithm verifies if these servers were predicted correctly
//! for the last three weeks. ... For such predictable servers, the algorithm
//! extracts the predicted load for the next day and selects a time window
//! during which customer activity is expected to be the lowest. The algorithm
//! stores the start time of this window as a service fabric property ...
//! Servers that did not exist or were unpredictable for the last three weeks
//! are scheduled for backup at default time."

use crate::fabric::FabricPropertyStore;
use seagull_core::evaluate::{backup_day_in_week, predictability, EvaluationConfig};
use seagull_core::metrics::{lowest_load_window, LowLoadWindow};
use seagull_core::par::parallel_map;
use seagull_forecast::Forecaster;
use seagull_serve::{ServeError, ServeService};
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_telemetry::server::ServerId;
use seagull_timeseries::{DayOfWeek, Timestamp};
use serde::{Deserialize, Serialize};

/// Why a server kept its default backup window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefaultReason {
    /// The server has existed fewer than the required weeks ("servers that
    /// did not exist ... for the last three weeks").
    TooYoung,
    /// The three-week predictability gate failed (Definition 9).
    NotPredictable,
    /// The model produced no usable prediction for the backup day.
    PredictionFailed,
}

/// The outcome for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduleDecision {
    /// Backup moved into the predicted lowest-load window.
    Rescheduled { window: LowLoadWindow },
    /// Backup stays at the default time.
    DefaultKept { reason: DefaultReason },
}

/// One scheduled backup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledBackup {
    pub server_id: u64,
    pub backup_day: i64,
    /// The start time the backup service will use.
    pub start: Timestamp,
    pub duration_min: u32,
    pub decision: ScheduleDecision,
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// The shared evaluation parameters (three-week gate, error bound, ...).
    pub evaluation: EvaluationConfig,
    /// Worker threads for fleet-wide scheduling.
    pub threads: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            evaluation: EvaluationConfig::default(),
            threads: 1,
        }
    }
}

/// The backup scheduler.
#[derive(Debug, Clone, Copy)]
pub struct BackupScheduler {
    pub config: SchedulerConfig,
}

impl BackupScheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedulerConfig) -> BackupScheduler {
        BackupScheduler { config }
    }

    /// Schedules one server's backup for `backup_day` (assumed to be the
    /// server's due day). Applies the three-week predictability gate, then
    /// selects the predicted LL window; on any failure the default window is
    /// kept.
    pub fn schedule_server(
        &self,
        server: &ServerTelemetry,
        backup_day: i64,
        forecaster: &dyn Forecaster,
    ) -> ScheduledBackup {
        let cfg = &self.config.evaluation;
        let duration = server.meta.backup.duration_min;
        let (default_start, _) = server.meta.backup.default_window_on(backup_day);
        let default_backup = |reason| ScheduledBackup {
            server_id: server.meta.id.0,
            backup_day,
            start: default_start,
            duration_min: duration,
            decision: ScheduleDecision::DefaultKept { reason },
        };

        // Gate 1: existence — "servers that did not exist ... for the last
        // three weeks are scheduled for backup at default time". Telemetry
        // truncation (the observation window starting after creation) is not
        // youth; missing data simply fails the predictability evaluation in
        // gate 2.
        let needed_days = 7 * cfg.predictability_weeks as i64;
        if server.series.is_empty() || backup_day - server.meta.created_day < needed_days {
            return default_backup(DefaultReason::TooYoung);
        }

        // Gate 2: Definition 9 over the three prior weeks. Weeks are anchored
        // so that the most recent inspected backup day is `backup_day - 7`.
        let anchor_week_start = backup_day - 6; // window [backup_day-6, backup_day] contains only future days of this week
        let verdict = predictability(server, anchor_week_start, forecaster, cfg);
        if !verdict.predictable {
            return default_backup(DefaultReason::NotPredictable);
        }

        // Predict the backup day from the preceding week and take the LL
        // window of the prediction.
        let day_start = Timestamp::from_days(backup_day);
        let hist_start = Timestamp::from_days(backup_day - cfg.train_days);
        let Ok(history) = server.series.slice(hist_start, day_start) else {
            return default_backup(DefaultReason::PredictionFailed);
        };
        let points_per_day = history.points_per_day();
        let Ok(predicted) = forecaster.fit_predict(&history, points_per_day) else {
            return default_backup(DefaultReason::PredictionFailed);
        };
        let Some(window) = lowest_load_window(&predicted, duration) else {
            return default_backup(DefaultReason::PredictionFailed);
        };
        ScheduledBackup {
            server_id: server.meta.id.0,
            backup_day,
            start: window.start,
            duration_min: duration,
            decision: ScheduleDecision::Rescheduled { window },
        }
    }

    /// Schedules every server due on `backup_day` (by its configured
    /// weekday), writing chosen start times into the fabric store.
    pub fn schedule_day(
        &self,
        fleet: &[ServerTelemetry],
        backup_day: i64,
        forecaster: &dyn Forecaster,
        fabric: &FabricPropertyStore,
    ) -> Vec<ScheduledBackup> {
        let weekday = DayOfWeek::from_day_index(backup_day).index();
        let due: Vec<&ServerTelemetry> = fleet
            .iter()
            .filter(|s| {
                s.meta.backup.backup_weekday as usize == weekday && s.meta.alive_on(backup_day)
            })
            .collect();
        let scheduled = parallel_map(&due, self.config.threads, |server| {
            self.schedule_server(server, backup_day, forecaster)
        });
        for b in &scheduled {
            // Fault-aware write: a dropped write is repaired by the runner's
            // verify-and-retry pass, so scheduling itself never aborts.
            let _ = fabric.try_set_backup_window_start(ServerId(b.server_id), b.start);
        }
        scheduled
    }

    /// Schedules one server's backup by querying the serving layer instead
    /// of fitting a model inline.
    ///
    /// This is the production split the serving layer exists for: the
    /// pipeline applies the existence/predictability gates when it
    /// materializes predictions, so a server *absent* from the snapshot was
    /// gated out (mapped to [`DefaultReason::NotPredictable`]), while a
    /// shed request, missing snapshot, or uncovered day keeps the default
    /// window as [`DefaultReason::PredictionFailed`]. Either way the
    /// scheduler never trains a model on the request path.
    pub fn schedule_server_served(
        &self,
        serve: &ServeService,
        region: &str,
        server: &ServerTelemetry,
        backup_day: i64,
    ) -> ScheduledBackup {
        let duration = server.meta.backup.duration_min;
        let (default_start, _) = server.meta.backup.default_window_on(backup_day);
        let default_backup = |reason| ScheduledBackup {
            server_id: server.meta.id.0,
            backup_day,
            start: default_start,
            duration_min: duration,
            decision: ScheduleDecision::DefaultKept { reason },
        };
        match serve.ll_window(region, server.meta.id.0, backup_day) {
            Ok(window) => ScheduledBackup {
                server_id: server.meta.id.0,
                backup_day,
                start: window.start,
                duration_min: duration,
                decision: ScheduleDecision::Rescheduled { window },
            },
            Err(ServeError::UnknownServer { .. }) => default_backup(DefaultReason::NotPredictable),
            Err(_) => default_backup(DefaultReason::PredictionFailed),
        }
    }

    /// Schedules every server due on `backup_day` through the serving
    /// layer, writing chosen start times into the fabric store. The served
    /// counterpart of [`BackupScheduler::schedule_day`].
    pub fn schedule_day_served(
        &self,
        fleet: &[ServerTelemetry],
        backup_day: i64,
        serve: &ServeService,
        region: &str,
        fabric: &FabricPropertyStore,
    ) -> Vec<ScheduledBackup> {
        let weekday = DayOfWeek::from_day_index(backup_day).index();
        let due: Vec<&ServerTelemetry> = fleet
            .iter()
            .filter(|s| {
                s.meta.backup.backup_weekday as usize == weekday && s.meta.alive_on(backup_day)
            })
            .collect();
        let scheduled = parallel_map(&due, self.config.threads, |server| {
            self.schedule_server_served(serve, region, server, backup_day)
        });
        for b in &scheduled {
            let _ = fabric.try_set_backup_window_start(ServerId(b.server_id), b.start);
        }
        scheduled
    }

    /// Schedules a whole week (the runner invokes this per day in practice).
    pub fn schedule_week(
        &self,
        fleet: &[ServerTelemetry],
        week_start_day: i64,
        forecaster: &dyn Forecaster,
        fabric: &FabricPropertyStore,
    ) -> Vec<ScheduledBackup> {
        let mut all = Vec::new();
        for offset in 0..7 {
            all.extend(self.schedule_day(fleet, week_start_day + offset, forecaster, fabric));
        }
        all
    }
}

/// The backup day a server is due within a given week (re-export for
/// harnesses).
pub fn due_day_in_week(server: &ServerTelemetry, week_start_day: i64) -> i64 {
    backup_day_in_week(server, week_start_day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};
    use seagull_telemetry::server::{GeneratedClass, ServerId};

    fn fleet() -> (Vec<ServerTelemetry>, i64) {
        let mut spec = FleetSpec::small_region(123);
        spec.regions[0].servers = 150;
        let start = spec.start_day;
        (FleetGenerator::new(spec).generate_weeks(5), start)
    }

    #[test]
    fn stable_predictable_servers_get_rescheduled() {
        let (fleet, start) = fleet();
        let scheduler = BackupScheduler::new(SchedulerConfig::default());
        let model = PersistentForecast::previous_day();
        let fabric = FabricPropertyStore::new();
        // Week 5: four prior weeks of history exist.
        let day = start + 28;
        let scheduled = scheduler.schedule_day(&fleet, day, &model, &fabric);
        assert!(!scheduled.is_empty());
        let rescheduled = scheduled
            .iter()
            .filter(|b| matches!(b.decision, ScheduleDecision::Rescheduled { .. }))
            .count();
        assert!(
            rescheduled > 0,
            "some due servers must pass the gate and move"
        );
        // Every scheduled backup has its fabric property set.
        for b in &scheduled {
            assert_eq!(
                fabric.backup_window_start(ServerId(b.server_id)),
                Some(b.start)
            );
            // Window lies within the backup day.
            assert!(b.start.day_index() == b.backup_day);
        }
    }

    /// The training history handed to the forecaster is a view into the
    /// server's telemetry buffer, not a copy — the scheduler read path stays
    /// zero-copy under the Arc-backed series representation.
    #[test]
    fn training_history_is_a_zero_copy_view() {
        let (fleet, start) = fleet();
        let cfg = SchedulerConfig::default();
        let day = start + 28;
        let day_start = Timestamp::from_days(day);
        let hist_start = Timestamp::from_days(day - cfg.evaluation.train_days);
        let server = fleet
            .iter()
            .find(|s| s.series.slice(hist_start, day_start).is_ok())
            .expect("some server has a full training window");
        let history = server.series.slice(hist_start, day_start).unwrap();
        assert!(
            history.shares_storage(&server.series),
            "slicing the training window must not allocate a new buffer"
        );
    }

    #[test]
    fn short_lived_servers_keep_default() {
        let (fleet, start) = fleet();
        let scheduler = BackupScheduler::new(SchedulerConfig::default());
        let model = PersistentForecast::previous_day();
        let _fabric = FabricPropertyStore::new();
        let day = start + 28;
        let weekday = DayOfWeek::from_day_index(day).index();
        let short: Vec<&ServerTelemetry> = fleet
            .iter()
            .filter(|s| {
                s.meta.deleted_day.is_some()
                    && s.meta.alive_on(day)
                    && s.meta.backup.backup_weekday as usize == weekday
            })
            .collect();
        for s in short {
            let b = scheduler.schedule_server(s, day, &model);
            assert!(
                matches!(
                    b.decision,
                    ScheduleDecision::DefaultKept {
                        reason: DefaultReason::TooYoung
                    } | ScheduleDecision::DefaultKept {
                        reason: DefaultReason::NotPredictable
                    }
                ),
                "short-lived server must keep default: {:?}",
                b.decision
            );
            let (default_start, _) = s.meta.backup.default_window_on(day);
            assert_eq!(b.start, default_start);
        }
    }

    #[test]
    fn unstable_servers_mostly_keep_default() {
        let (fleet, start) = fleet();
        let scheduler = BackupScheduler::new(SchedulerConfig::default());
        let model = PersistentForecast::previous_day();
        let day = start + 28;
        let unstable: Vec<&ServerTelemetry> = fleet
            .iter()
            .filter(|s| s.meta.class == GeneratedClass::Unstable && s.meta.deleted_day.is_none())
            .collect();
        if unstable.is_empty() {
            return;
        }
        let kept = unstable
            .iter()
            .map(|s| scheduler.schedule_server(s, day, &model))
            .filter(|b| matches!(b.decision, ScheduleDecision::DefaultKept { .. }))
            .count();
        assert!(
            kept as f64 / unstable.len() as f64 > 0.5,
            "most unstable servers should fail the gate ({kept}/{})",
            unstable.len()
        );
    }

    #[test]
    fn rescheduled_window_is_low_load() {
        let (fleet, start) = fleet();
        let scheduler = BackupScheduler::new(SchedulerConfig::default());
        let model = PersistentForecast::previous_day();
        let fabric = FabricPropertyStore::new();
        let day = start + 28;
        let scheduled = scheduler.schedule_day(&fleet, day, &model, &fabric);
        for b in scheduled {
            if let ScheduleDecision::Rescheduled { window } = b.decision {
                let server = fleet.iter().find(|s| s.meta.id.0 == b.server_id).unwrap();
                // The chosen window's true load should be near the true
                // minimum for predictable (stable/patterned) servers.
                let truth = server.series.day(day).unwrap();
                let true_ll = lowest_load_window(&truth, b.duration_min).unwrap();
                let chosen_true = truth
                    .slice_values(window.start, window.end())
                    .map(seagull_timeseries::mean)
                    .unwrap();
                assert!(
                    chosen_true <= true_ll.mean_load + 10.0 + 1e-9,
                    "chosen window load {chosen_true} vs true LL {}",
                    true_ll.mean_load
                );
            }
        }
    }

    /// Builds a serving snapshot whose per-server "prediction" is the true
    /// series for `day` — the served scheduler should then pick the true
    /// lowest-load window for every covered server.
    fn snapshot_of_truth(
        fleet: &[ServerTelemetry],
        day: i64,
        version: u64,
    ) -> seagull_serve::ModelSnapshot {
        let docs: Vec<seagull_core::pipeline::PredictionDoc> = fleet
            .iter()
            .filter_map(|s| {
                s.series
                    .day_values(day)
                    .map(|values| seagull_core::pipeline::PredictionDoc {
                        region: "west".into(),
                        server_id: s.meta.id.0,
                        day,
                        step_min: s.series.step_min(),
                        values: values.to_vec(),
                        duration_min: s.meta.backup.duration_min as i64,
                    })
            })
            .collect();
        seagull_serve::ModelSnapshot::from_predictions(
            "west",
            version,
            day - 7,
            "persistent-prev-day",
            &docs,
        )
    }

    #[test]
    fn served_scheduling_uses_snapshot_windows() {
        let (fleet, start) = fleet();
        let scheduler = BackupScheduler::new(SchedulerConfig::default());
        let serve = seagull_serve::ServeService::with_defaults();
        let day = start + 28;
        serve.publish(snapshot_of_truth(&fleet, day, 1));
        let fabric = FabricPropertyStore::new();
        let scheduled = scheduler.schedule_day_served(&fleet, day, &serve, "west", &fabric);
        assert!(!scheduled.is_empty());
        for b in &scheduled {
            // Fabric write happened for every decision.
            assert_eq!(
                fabric.backup_window_start(ServerId(b.server_id)),
                Some(b.start)
            );
            if let ScheduleDecision::Rescheduled { window } = b.decision {
                // The snapshot holds the true series, so the served window
                // must be the true lowest-load window exactly.
                let server = fleet.iter().find(|s| s.meta.id.0 == b.server_id).unwrap();
                let truth = server.series.day(day).unwrap();
                let true_ll = lowest_load_window(&truth, b.duration_min).unwrap();
                assert_eq!(window.start, true_ll.start);
                assert!((window.mean_load - true_ll.mean_load).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn served_scheduling_defaults_when_not_covered() {
        let (fleet, start) = fleet();
        let scheduler = BackupScheduler::new(SchedulerConfig::default());
        let serve = seagull_serve::ServeService::with_defaults();
        let day = start + 28;
        // Empty snapshot: every due server is unknown to the serving layer.
        serve.publish(snapshot_of_truth(&[], day, 1));
        let fabric = FabricPropertyStore::new();
        let scheduled = scheduler.schedule_day_served(&fleet, day, &serve, "west", &fabric);
        assert!(!scheduled.is_empty());
        for b in &scheduled {
            let server = fleet.iter().find(|s| s.meta.id.0 == b.server_id).unwrap();
            let (default_start, _) = server.meta.backup.default_window_on(day);
            assert_eq!(b.start, default_start);
            assert!(matches!(
                b.decision,
                ScheduleDecision::DefaultKept {
                    reason: DefaultReason::NotPredictable
                }
            ));
        }
        // No snapshot at all for the region → PredictionFailed, not a panic.
        let lone = &fleet[0];
        let b = scheduler.schedule_server_served(&serve, "nowhere", lone, day);
        assert!(matches!(
            b.decision,
            ScheduleDecision::DefaultKept {
                reason: DefaultReason::PredictionFailed
            }
        ));
    }

    #[test]
    fn schedule_week_covers_all_weekdays() {
        let (fleet, start) = fleet();
        let scheduler = BackupScheduler::new(SchedulerConfig {
            threads: 4,
            ..SchedulerConfig::default()
        });
        let model = PersistentForecast::previous_day();
        let fabric = FabricPropertyStore::new();
        let scheduled = scheduler.schedule_week(&fleet, start + 28, &model, &fabric);
        // Every alive server due that week is scheduled exactly once.
        let alive_due: usize = fleet
            .iter()
            .filter(|s| {
                (0..7).any(|o| {
                    let d = start + 28 + o;
                    s.meta.alive_on(d)
                        && s.meta.backup.backup_weekday as usize
                            == DayOfWeek::from_day_index(d).index()
                })
            })
            .count();
        assert_eq!(scheduled.len(), alive_due);
    }
}
