//! The Service Fabric property store substitute.
//!
//! The scheduling algorithm "stores the start time of this window as a
//! service fabric property of respective PostgreSQL and MySQL database
//! instances. This property is used by the backup service to schedule
//! backups" (Section 2.3). Properties here are string key/values per server
//! instance, exactly like fabric properties.

use parking_lot::RwLock;
use seagull_telemetry::chaos::DetRng;
use seagull_telemetry::server::ServerId;
use seagull_timeseries::Timestamp;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// The property the backup service reads: minutes-since-epoch of the chosen
/// backup window start.
pub const BACKUP_WINDOW_START_PROPERTY: &str = "seagull.backupWindowStart";

/// Seeded write-fault injection state (tests).
struct ChaosRoll {
    prob: f64,
    rng: DetRng,
}

#[derive(Default)]
struct Inner {
    properties: HashMap<ServerId, HashMap<String, String>>,
    chaos: Option<ChaosRoll>,
    injected_faults: u64,
}

/// Thread-safe per-server property map.
#[derive(Clone, Default)]
pub struct FabricPropertyStore {
    inner: Arc<RwLock<Inner>>,
}

impl FabricPropertyStore {
    /// Creates an empty store.
    pub fn new() -> FabricPropertyStore {
        FabricPropertyStore::default()
    }

    /// Enables seeded write-fault injection: each [`FabricPropertyStore::try_set`]
    /// fails with the given probability, deterministically per seed.
    pub fn inject_write_faults(&self, seed: u64, prob: f64) {
        self.inner.write().chaos = Some(ChaosRoll {
            prob,
            rng: DetRng::new(seed),
        });
    }

    /// Write faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.inner.read().injected_faults
    }

    /// Sets a property on a server instance (infallible; bypasses fault
    /// injection).
    pub fn set(&self, server: ServerId, key: &str, value: impl Into<String>) {
        self.inner
            .write()
            .properties
            .entry(server)
            .or_default()
            .insert(key.to_string(), value.into());
    }

    /// Fault-aware property write: rolls the injected write-fault dice (a
    /// no-op in production, where no chaos is configured), then writes.
    pub fn try_set(&self, server: ServerId, key: &str, value: impl Into<String>) -> io::Result<()> {
        let mut inner = self.inner.write();
        let fail = match inner.chaos.as_mut() {
            Some(roll) => roll.prob > 0.0 && roll.rng.next_f64() < roll.prob,
            None => false,
        };
        if fail {
            inner.injected_faults += 1;
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("injected fabric write fault for server {}", server.0),
            ));
        }
        inner
            .properties
            .entry(server)
            .or_default()
            .insert(key.to_string(), value.into());
        Ok(())
    }

    /// Reads a property.
    pub fn get(&self, server: ServerId, key: &str) -> Option<String> {
        self.inner.read().properties.get(&server)?.get(key).cloned()
    }

    /// Removes a property; returns whether it existed.
    pub fn remove(&self, server: ServerId, key: &str) -> bool {
        self.inner
            .write()
            .properties
            .get_mut(&server)
            .is_some_and(|p| p.remove(key).is_some())
    }

    /// Convenience: write the backup-window start timestamp (infallible).
    pub fn set_backup_window_start(&self, server: ServerId, start: Timestamp) {
        self.set(
            server,
            BACKUP_WINDOW_START_PROPERTY,
            start.minutes().to_string(),
        );
    }

    /// Convenience: fault-aware write of the backup-window start timestamp.
    pub fn try_set_backup_window_start(
        &self,
        server: ServerId,
        start: Timestamp,
    ) -> io::Result<()> {
        self.try_set(
            server,
            BACKUP_WINDOW_START_PROPERTY,
            start.minutes().to_string(),
        )
    }

    /// Convenience: read the backup-window start timestamp, if set and valid.
    pub fn backup_window_start(&self, server: ServerId) -> Option<Timestamp> {
        self.get(server, BACKUP_WINDOW_START_PROPERTY)?
            .parse::<i64>()
            .ok()
            .map(Timestamp::from_minutes)
    }

    /// Number of servers holding at least one property.
    pub fn server_count(&self) -> usize {
        self.inner.read().properties.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let store = FabricPropertyStore::new();
        let s = ServerId(7);
        assert!(store.get(s, "k").is_none());
        store.set(s, "k", "v1");
        store.set(s, "k", "v2");
        assert_eq!(store.get(s, "k").as_deref(), Some("v2"));
        assert!(store.remove(s, "k"));
        assert!(!store.remove(s, "k"));
        assert!(store.get(s, "k").is_none());
    }

    #[test]
    fn backup_window_round_trip() {
        let store = FabricPropertyStore::new();
        let s = ServerId(1);
        let t = Timestamp::from_minutes(123_456);
        store.set_backup_window_start(s, t);
        assert_eq!(store.backup_window_start(s), Some(t));
        assert_eq!(store.server_count(), 1);
    }

    #[test]
    fn malformed_property_reads_as_none() {
        let store = FabricPropertyStore::new();
        let s = ServerId(2);
        store.set(s, BACKUP_WINDOW_START_PROPERTY, "not-a-number");
        assert!(store.backup_window_start(s).is_none());
    }

    #[test]
    fn injected_write_faults_are_deterministic() {
        let run = || {
            let store = FabricPropertyStore::new();
            store.inject_write_faults(9, 0.5);
            let outcomes: Vec<bool> = (0..40)
                .map(|i| store.try_set(ServerId(i), "k", "v").is_ok())
                .collect();
            (outcomes, store.injected_faults())
        };
        let (a, faults_a) = run();
        let (b, faults_b) = run();
        assert_eq!(a, b);
        assert_eq!(faults_a, faults_b);
        assert!(faults_a > 0, "50% fault rate over 40 writes must fire");
        assert!(a.iter().any(|ok| *ok), "and some writes must succeed");
    }

    #[test]
    fn try_set_without_chaos_always_succeeds() {
        let store = FabricPropertyStore::new();
        let t = Timestamp::from_minutes(99);
        store.try_set_backup_window_start(ServerId(5), t).unwrap();
        assert_eq!(store.backup_window_start(ServerId(5)), Some(t));
        assert_eq!(store.injected_faults(), 0);
    }

    #[test]
    fn properties_are_per_server() {
        let store = FabricPropertyStore::new();
        store.set(ServerId(1), "k", "a");
        store.set(ServerId(2), "k", "b");
        assert_eq!(store.get(ServerId(1), "k").as_deref(), Some("a"));
        assert_eq!(store.get(ServerId(2), "k").as_deref(), Some("b"));
    }
}
