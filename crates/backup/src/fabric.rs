//! The Service Fabric property store substitute.
//!
//! The scheduling algorithm "stores the start time of this window as a
//! service fabric property of respective PostgreSQL and MySQL database
//! instances. This property is used by the backup service to schedule
//! backups" (Section 2.3). Properties here are string key/values per server
//! instance, exactly like fabric properties.

use parking_lot::RwLock;
use seagull_telemetry::server::ServerId;
use seagull_timeseries::Timestamp;
use std::collections::HashMap;
use std::sync::Arc;

/// The property the backup service reads: minutes-since-epoch of the chosen
/// backup window start.
pub const BACKUP_WINDOW_START_PROPERTY: &str = "seagull.backupWindowStart";

#[derive(Default)]
struct Inner {
    properties: HashMap<ServerId, HashMap<String, String>>,
}

/// Thread-safe per-server property map.
#[derive(Clone, Default)]
pub struct FabricPropertyStore {
    inner: Arc<RwLock<Inner>>,
}

impl FabricPropertyStore {
    /// Creates an empty store.
    pub fn new() -> FabricPropertyStore {
        FabricPropertyStore::default()
    }

    /// Sets a property on a server instance.
    pub fn set(&self, server: ServerId, key: &str, value: impl Into<String>) {
        self.inner
            .write()
            .properties
            .entry(server)
            .or_default()
            .insert(key.to_string(), value.into());
    }

    /// Reads a property.
    pub fn get(&self, server: ServerId, key: &str) -> Option<String> {
        self.inner.read().properties.get(&server)?.get(key).cloned()
    }

    /// Removes a property; returns whether it existed.
    pub fn remove(&self, server: ServerId, key: &str) -> bool {
        self.inner
            .write()
            .properties
            .get_mut(&server)
            .is_some_and(|p| p.remove(key).is_some())
    }

    /// Convenience: write the backup-window start timestamp.
    pub fn set_backup_window_start(&self, server: ServerId, start: Timestamp) {
        self.set(
            server,
            BACKUP_WINDOW_START_PROPERTY,
            start.minutes().to_string(),
        );
    }

    /// Convenience: read the backup-window start timestamp, if set and valid.
    pub fn backup_window_start(&self, server: ServerId) -> Option<Timestamp> {
        self.get(server, BACKUP_WINDOW_START_PROPERTY)?
            .parse::<i64>()
            .ok()
            .map(Timestamp::from_minutes)
    }

    /// Number of servers holding at least one property.
    pub fn server_count(&self) -> usize {
        self.inner.read().properties.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let store = FabricPropertyStore::new();
        let s = ServerId(7);
        assert!(store.get(s, "k").is_none());
        store.set(s, "k", "v1");
        store.set(s, "k", "v2");
        assert_eq!(store.get(s, "k").as_deref(), Some("v2"));
        assert!(store.remove(s, "k"));
        assert!(!store.remove(s, "k"));
        assert!(store.get(s, "k").is_none());
    }

    #[test]
    fn backup_window_round_trip() {
        let store = FabricPropertyStore::new();
        let s = ServerId(1);
        let t = Timestamp::from_minutes(123_456);
        store.set_backup_window_start(s, t);
        assert_eq!(store.backup_window_start(s), Some(t));
        assert_eq!(store.server_count(), 1);
    }

    #[test]
    fn malformed_property_reads_as_none() {
        let store = FabricPropertyStore::new();
        let s = ServerId(2);
        store.set(s, BACKUP_WINDOW_START_PROPERTY, "not-a-number");
        assert!(store.backup_window_start(s).is_none());
    }

    #[test]
    fn properties_are_per_server() {
        let store = FabricPropertyStore::new();
        store.set(ServerId(1), "k", "a");
        store.set(ServerId(2), "k", "b");
        assert_eq!(store.get(ServerId(1), "k").as_deref(), Some("a"));
        assert_eq!(store.get(ServerId(2), "k").as_deref(), Some("b"));
    }
}
