//! The backup-duration model.
//!
//! Definition 7 needs "the expected duration of full backup of the server",
//! which in production is estimated from database size and historical backup
//! throughput. This model is the estimator: size divided by throughput plus
//! fixed setup overhead, rounded up to the telemetry grid so the window
//! search operates on whole buckets.

use serde::{Deserialize, Serialize};

/// Size-to-duration estimator for full backups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackupDurationModel {
    /// Sustained backup throughput, MB per minute.
    pub throughput_mb_per_min: f64,
    /// Fixed overhead per backup (snapshots, metadata), minutes.
    pub setup_min: f64,
    /// Telemetry grid, minutes; durations round up to a multiple of this.
    pub grid_min: u32,
    /// Lower clamp so tiny databases still get a schedulable window.
    pub min_duration_min: u32,
    /// Upper clamp: a window must fit within one day.
    pub max_duration_min: u32,
}

impl Default for BackupDurationModel {
    fn default() -> Self {
        BackupDurationModel {
            throughput_mb_per_min: 2048.0, // ~34 MB/s sustained
            setup_min: 5.0,
            grid_min: 5,
            min_duration_min: 30,
            max_duration_min: 12 * 60,
        }
    }
}

impl BackupDurationModel {
    /// Expected full-backup duration for a database of `size_mb`, in minutes,
    /// grid-aligned and clamped.
    pub fn estimate_min(&self, size_mb: f64) -> u32 {
        let raw = self.setup_min + size_mb.max(0.0) / self.throughput_mb_per_min;
        let grid = self.grid_min.max(1) as f64;
        let aligned = (raw / grid).ceil() * grid;
        (aligned as u32)
            .max(self.min_duration_min)
            .min(self.max_duration_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_database_hits_floor() {
        let m = BackupDurationModel::default();
        assert_eq!(m.estimate_min(100.0), 30);
        assert_eq!(m.estimate_min(0.0), 30);
        assert_eq!(m.estimate_min(-5.0), 30);
    }

    #[test]
    fn duration_scales_with_size() {
        let m = BackupDurationModel::default();
        let one_tb = m.estimate_min(1_048_576.0); // 1 TB
                                                  // 1 TB / 2 GB/min = 512 min + 5 setup -> 520 on the 5-min grid.
        assert_eq!(one_tb, 520);
        assert!(m.estimate_min(2_097_152.0) > one_tb);
    }

    #[test]
    fn giant_database_hits_ceiling() {
        let m = BackupDurationModel::default();
        assert_eq!(m.estimate_min(1e9), 720);
    }

    #[test]
    fn grid_alignment() {
        let m = BackupDurationModel {
            grid_min: 15,
            min_duration_min: 15,
            ..BackupDurationModel::default()
        };
        let d = m.estimate_min(100_000.0); // ~48.8 + 5 = ~53.8 -> 60
        assert_eq!(d % 15, 0);
        assert_eq!(d, 60);
    }
}
