//! The Master Data Service runner substitute.
//!
//! "The backup scheduler runs within Master Data Service (MDS) runner per day
//! and cluster. The Runner Service deploys executables which probe their
//! respective services resulting in measurement of availability and quality
//! of service. The runner service is deployed in each Azure region"
//! (Section 2.3).
//!
//! The fleet is hash-partitioned into clusters; each day the runner invokes
//! the scheduler per cluster and probes that every due server ended up with a
//! usable fabric property.

use crate::fabric::FabricPropertyStore;
use crate::scheduler::{BackupScheduler, ScheduledBackup};
use seagull_forecast::Forecaster;
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_telemetry::server::ServerId;
use serde::{Deserialize, Serialize};

/// Health of one cluster's daily scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    pub cluster: usize,
    pub due_servers: usize,
    pub rescheduled: usize,
    pub kept_default: usize,
    /// Probe: fraction of due servers with a valid fabric property after the
    /// run (1.0 = fully available).
    pub probe_availability: f64,
}

/// One day's runner output for a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerReport {
    pub day: i64,
    pub clusters: Vec<ClusterReport>,
    pub backups: Vec<ScheduledBackup>,
}

impl RunnerReport {
    /// Aggregate availability across clusters (due-server weighted).
    pub fn availability(&self) -> f64 {
        let due: usize = self.clusters.iter().map(|c| c.due_servers).sum();
        if due == 0 {
            return 1.0;
        }
        let ok: f64 = self
            .clusters
            .iter()
            .map(|c| c.probe_availability * c.due_servers as f64)
            .sum();
        ok / due as f64
    }
}

/// The per-region runner service.
pub struct RunnerService {
    pub scheduler: BackupScheduler,
    /// Number of clusters the region's fleet is partitioned into.
    pub clusters: usize,
}

impl RunnerService {
    /// Creates a runner with the given scheduler and cluster count.
    pub fn new(scheduler: BackupScheduler, clusters: usize) -> RunnerService {
        RunnerService {
            scheduler,
            clusters: clusters.max(1),
        }
    }

    fn cluster_of(&self, id: ServerId) -> usize {
        // SplitMix-style spread so cluster sizes stay balanced.
        let mut z = id.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (z ^ (z >> 31)) as usize % self.clusters
    }

    /// Runs one day: schedules every due server per cluster and probes the
    /// fabric store afterwards.
    pub fn run_day(
        &self,
        fleet: &[ServerTelemetry],
        day: i64,
        forecaster: &dyn Forecaster,
        fabric: &FabricPropertyStore,
    ) -> RunnerReport {
        let mut clusters = Vec::with_capacity(self.clusters);
        let mut backups = Vec::new();
        for cluster in 0..self.clusters {
            let members: Vec<ServerTelemetry> = fleet
                .iter()
                .filter(|s| self.cluster_of(s.meta.id) == cluster)
                .cloned()
                .collect();
            let scheduled = self
                .scheduler
                .schedule_day(&members, day, forecaster, fabric);
            let due = scheduled.len();
            let rescheduled = scheduled
                .iter()
                .filter(|b| {
                    matches!(
                        b.decision,
                        crate::scheduler::ScheduleDecision::Rescheduled { .. }
                    )
                })
                .count();
            // Probe: every due server must expose a parseable window start
            // that lies on its backup day.
            let ok = scheduled
                .iter()
                .filter(|b| {
                    fabric
                        .backup_window_start(ServerId(b.server_id))
                        .is_some_and(|t| t.day_index() == b.backup_day)
                })
                .count();
            clusters.push(ClusterReport {
                cluster,
                due_servers: due,
                rescheduled,
                kept_default: due - rescheduled,
                probe_availability: if due == 0 {
                    1.0
                } else {
                    ok as f64 / due as f64
                },
            });
            backups.extend(scheduled);
        }
        RunnerReport {
            day,
            clusters,
            backups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};

    #[test]
    fn runner_schedules_and_probes() {
        let mut spec = FleetSpec::small_region(44);
        spec.regions[0].servers = 120;
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(5);
        let runner = RunnerService::new(
            BackupScheduler::new(SchedulerConfig {
                threads: 2,
                ..SchedulerConfig::default()
            }),
            4,
        );
        let fabric = FabricPropertyStore::new();
        let model = PersistentForecast::previous_day();
        let report = runner.run_day(&fleet, start + 28, &model, &fabric);
        assert_eq!(report.clusters.len(), 4);
        let total_due: usize = report.clusters.iter().map(|c| c.due_servers).sum();
        assert_eq!(total_due, report.backups.len());
        // All due servers got a valid property -> full availability.
        assert!((report.availability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clusters_partition_fleet() {
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 8);
        let mut counts = vec![0usize; 8];
        for i in 0..800 {
            counts[runner.cluster_of(ServerId(i))] += 1;
        }
        // Roughly balanced clusters.
        for c in counts {
            assert!(c > 40 && c < 160, "cluster size {c}");
        }
    }

    #[test]
    fn empty_day_is_fully_available() {
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 2);
        let fabric = FabricPropertyStore::new();
        let model = PersistentForecast::previous_day();
        let report = runner.run_day(&[], 100, &model, &fabric);
        assert_eq!(report.availability(), 1.0);
        assert!(report.backups.is_empty());
    }
}
