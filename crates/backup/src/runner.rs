//! The Master Data Service runner substitute.
//!
//! "The backup scheduler runs within Master Data Service (MDS) runner per day
//! and cluster. The Runner Service deploys executables which probe their
//! respective services resulting in measurement of availability and quality
//! of service. The runner service is deployed in each Azure region"
//! (Section 2.3).
//!
//! The fleet is hash-partitioned into clusters; each day the runner invokes
//! the scheduler per cluster and probes that every due server ended up with a
//! usable fabric property. Dropped fabric writes are repaired under the
//! runner's [`RetryPolicy`], and a cluster whose scheduling pass fails gets
//! one re-run before it is reported as errored — so one bad cluster degrades
//! its own availability figure instead of poisoning the daily report.

use crate::fabric::FabricPropertyStore;
use crate::scheduler::{BackupScheduler, ScheduledBackup};
use seagull_core::resilience::{stage_seed, RetryPolicy, StageError};
use seagull_forecast::Forecaster;
use seagull_obs::Obs;
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_telemetry::server::ServerId;
use seagull_timeseries::DayOfWeek;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Health of one cluster's daily scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    pub cluster: usize,
    pub due_servers: usize,
    pub rescheduled: usize,
    pub kept_default: usize,
    /// Probe: fraction of due servers with a valid fabric property after the
    /// run (1.0 = fully available).
    pub probe_availability: f64,
    /// Retry work spent on this cluster: repair writes for dropped fabric
    /// properties plus failed scheduling passes.
    #[serde(default)]
    pub retries: u32,
    /// True when the cluster's scheduling run failed even after the re-run
    /// pass; its due servers count as unavailable.
    #[serde(default)]
    pub errored: bool,
}

/// One day's runner output for a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerReport {
    pub day: i64,
    pub clusters: Vec<ClusterReport>,
    pub backups: Vec<ScheduledBackup>,
}

impl RunnerReport {
    /// Aggregate availability across clusters (due-server weighted). An
    /// errored cluster counts its due servers as unavailable rather than
    /// silently inflating the figure.
    pub fn availability(&self) -> f64 {
        let due: usize = self.clusters.iter().map(|c| c.due_servers).sum();
        if due == 0 {
            // Vacuously available — unless a cluster errored before it
            // could even enumerate its due servers.
            return if self.clusters.iter().any(|c| c.errored) {
                0.0
            } else {
                1.0
            };
        }
        let ok: f64 = self
            .clusters
            .iter()
            .map(|c| {
                if c.errored {
                    0.0
                } else {
                    c.probe_availability * c.due_servers as f64
                }
            })
            .sum();
        ok / due as f64
    }

    /// Retry work spent across all clusters.
    pub fn total_retries(&self) -> u32 {
        self.clusters.iter().map(|c| c.retries).sum()
    }
}

/// Test hook failing a whole cluster's scheduling pass:
/// `(cluster, day, attempt)` → should this pass fail?
type ClusterFaultHook = Arc<dyn Fn(usize, i64, u32) -> bool + Send + Sync>;

/// The per-region runner service.
pub struct RunnerService {
    pub scheduler: BackupScheduler,
    /// Number of clusters the region's fleet is partitioned into.
    pub clusters: usize,
    /// Retry policy for fabric-property repair writes.
    pub retry: RetryPolicy,
    /// Seed for the retry policy's jitter.
    pub retry_seed: u64,
    /// Observability: per-day/per-cluster span trees and runner metrics.
    pub obs: Obs,
    cluster_fault: Option<ClusterFaultHook>,
}

impl RunnerService {
    /// Creates a runner with the given scheduler and cluster count.
    pub fn new(scheduler: BackupScheduler, clusters: usize) -> RunnerService {
        RunnerService {
            scheduler,
            clusters: clusters.max(1),
            retry: RetryPolicy::default(),
            retry_seed: 0,
            obs: Obs::new(),
            cluster_fault: None,
        }
    }

    /// Overrides the retry policy and its jitter seed.
    pub fn with_retry(mut self, retry: RetryPolicy, seed: u64) -> RunnerService {
        self.retry = retry;
        self.retry_seed = seed;
        self
    }

    /// Shares an external observability handle (e.g. the pipeline's).
    pub fn with_obs(mut self, obs: Obs) -> RunnerService {
        self.obs = obs;
        self
    }

    /// Installs a cluster-level fault hook (tests): the hook fails whole
    /// scheduling passes per `(cluster, day, attempt)`.
    pub fn with_cluster_fault(
        mut self,
        hook: impl Fn(usize, i64, u32) -> bool + Send + Sync + 'static,
    ) -> RunnerService {
        self.cluster_fault = Some(Arc::new(hook));
        self
    }

    fn cluster_of(&self, id: ServerId) -> usize {
        // SplitMix-style spread so cluster sizes stay balanced.
        let mut z = id.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (z ^ (z >> 31)) as usize % self.clusters
    }

    /// Servers in `members` due for backup on `day`.
    fn due_count(members: &[ServerTelemetry], day: i64) -> usize {
        let weekday = DayOfWeek::from_day_index(day).index();
        members
            .iter()
            .filter(|s| s.meta.backup.backup_weekday as usize == weekday && s.meta.alive_on(day))
            .count()
    }

    /// One cluster's scheduling pass with the re-run and repair machinery.
    fn run_cluster(
        &self,
        cluster: usize,
        members: &[ServerTelemetry],
        day: i64,
        forecaster: &dyn Forecaster,
        fabric: &FabricPropertyStore,
    ) -> (ClusterReport, Vec<ScheduledBackup>) {
        let mut retries = 0u32;
        // Re-run pass: a cluster whose scheduling fails outright gets one
        // more chance before the day gives up on it.
        for attempt in 1..=2u32 {
            if self
                .cluster_fault
                .as_ref()
                .is_some_and(|h| h(cluster, day, attempt))
            {
                retries += 1;
                continue;
            }
            let scheduled = self
                .scheduler
                .schedule_day(members, day, forecaster, fabric);
            // Verify-and-repair: rewrite any due server whose fabric write
            // was dropped, under the retry policy.
            for b in &scheduled {
                let id = ServerId(b.server_id);
                if fabric.backup_window_start(id) == Some(b.start) {
                    continue;
                }
                let seed = stage_seed(
                    self.retry_seed,
                    "fabric-write",
                    &format!("cluster-{cluster}/server-{}", b.server_id),
                    day,
                );
                let repaired = self.retry.run(seed, |_| {
                    fabric
                        .try_set_backup_window_start(id, b.start)
                        .map_err(|e| StageError::transient(e.to_string()))
                });
                // The repair write itself plus any backoff retries.
                retries += repaired.attempts;
            }
            let due = scheduled.len();
            let rescheduled = scheduled
                .iter()
                .filter(|b| {
                    matches!(
                        b.decision,
                        crate::scheduler::ScheduleDecision::Rescheduled { .. }
                    )
                })
                .count();
            // Probe: every due server must expose a parseable window start
            // that lies on its backup day.
            let ok = scheduled
                .iter()
                .filter(|b| {
                    fabric
                        .backup_window_start(ServerId(b.server_id))
                        .is_some_and(|t| t.day_index() == b.backup_day)
                })
                .count();
            let report = ClusterReport {
                cluster,
                due_servers: due,
                rescheduled,
                kept_default: due - rescheduled,
                probe_availability: if due == 0 {
                    1.0
                } else {
                    ok as f64 / due as f64
                },
                retries,
                errored: false,
            };
            return (report, scheduled);
        }
        // Both passes failed: the cluster is errored and its due servers
        // count as unavailable.
        let due = RunnerService::due_count(members, day);
        (
            ClusterReport {
                cluster,
                due_servers: due,
                rescheduled: 0,
                kept_default: due,
                probe_availability: 0.0,
                retries,
                errored: true,
            },
            Vec::new(),
        )
    }

    /// Runs one day: schedules every due server per cluster and probes the
    /// fabric store afterwards.
    pub fn run_day(
        &self,
        fleet: &[ServerTelemetry],
        day: i64,
        forecaster: &dyn Forecaster,
        fabric: &FabricPropertyStore,
    ) -> RunnerReport {
        let vt = day.max(0) as u64;
        let root = self.obs.tracer().start("runner-day", &[], vt);
        let registry = self.obs.registry();
        let mut clusters = Vec::with_capacity(self.clusters);
        let mut backups = Vec::new();
        for cluster in 0..self.clusters {
            let cluster_label = cluster.to_string();
            let span = self.obs.tracer().child(
                root,
                "cluster-schedule",
                &[("cluster", &cluster_label)],
                vt,
            );
            let members: Vec<ServerTelemetry> = fleet
                .iter()
                .filter(|s| self.cluster_of(s.meta.id) == cluster)
                .cloned()
                .collect();
            let (report, scheduled) = self.run_cluster(cluster, &members, day, forecaster, fabric);
            self.obs.tracer().end(span, vt);
            let labels = [("cluster", cluster_label.as_str())];
            registry
                .counter("seagull_runner_due_servers_total", &labels)
                .add(report.due_servers as u64);
            registry
                .counter("seagull_runner_rescheduled_total", &labels)
                .add(report.rescheduled as u64);
            registry
                .counter("seagull_runner_retries_total", &labels)
                .add(u64::from(report.retries));
            if report.errored {
                registry
                    .counter("seagull_runner_cluster_errors_total", &labels)
                    .inc();
            }
            clusters.push(report);
            backups.extend(scheduled);
        }
        self.obs.tracer().end(root, vt);
        let report = RunnerReport {
            day,
            clusters,
            backups,
        };
        registry
            .gauge("seagull_runner_availability", &[])
            .set(report.availability());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};

    fn fleet(seed: u64, servers: usize) -> (Vec<ServerTelemetry>, i64) {
        let mut spec = FleetSpec::small_region(seed);
        spec.regions[0].servers = servers;
        let start = spec.start_day;
        (FleetGenerator::new(spec).generate_weeks(5), start)
    }

    #[test]
    fn runner_schedules_and_probes() {
        let (fleet, start) = fleet(44, 120);
        let runner = RunnerService::new(
            BackupScheduler::new(SchedulerConfig {
                threads: 2,
                ..SchedulerConfig::default()
            }),
            4,
        );
        let fabric = FabricPropertyStore::new();
        let model = PersistentForecast::previous_day();
        let report = runner.run_day(&fleet, start + 28, &model, &fabric);
        assert_eq!(report.clusters.len(), 4);
        let total_due: usize = report.clusters.iter().map(|c| c.due_servers).sum();
        assert_eq!(total_due, report.backups.len());
        // All due servers got a valid property -> full availability.
        assert!((report.availability() - 1.0).abs() < 1e-9);
        assert_eq!(report.total_retries(), 0, "no faults, no retry work");
        assert!(report.clusters.iter().all(|c| !c.errored));
    }

    #[test]
    fn clusters_partition_fleet() {
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 8);
        let mut counts = vec![0usize; 8];
        for i in 0..800 {
            counts[runner.cluster_of(ServerId(i))] += 1;
        }
        // Roughly balanced clusters.
        for c in counts {
            assert!(c > 40 && c < 160, "cluster size {c}");
        }
    }

    #[test]
    fn empty_day_is_fully_available() {
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 2);
        let fabric = FabricPropertyStore::new();
        let model = PersistentForecast::previous_day();
        let report = runner.run_day(&[], 100, &model, &fabric);
        assert_eq!(report.availability(), 1.0);
        assert!(report.backups.is_empty());
    }

    #[test]
    fn dropped_fabric_writes_are_repaired_with_retries() {
        let (fleet, start) = fleet(45, 120);
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 4);
        let fabric = FabricPropertyStore::new();
        fabric.inject_write_faults(7, 0.3);
        let model = PersistentForecast::previous_day();
        let report = runner.run_day(&fleet, start + 28, &model, &fabric);
        assert!(
            fabric.injected_faults() > 0,
            "30% fault rate over a day of writes must fire"
        );
        assert!(report.total_retries() > 0, "repair writes were needed");
        // Repair drives availability back to (near) full: each dropped write
        // gets five more chances at a 30% failure rate each.
        assert!(
            report.availability() > 0.9,
            "availability {}",
            report.availability()
        );
        assert!(report.clusters.iter().all(|c| !c.errored));
    }

    #[test]
    fn failing_cluster_is_rerun_once_then_isolated() {
        // Large enough that every cluster has due servers on any weekday.
        let (fleet, start) = fleet(46, 280);
        let day = start + 28;
        // Cluster 1 fails its first pass but recovers on the re-run;
        // cluster 2 fails both passes.
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 4)
            .with_cluster_fault(move |cluster, _, attempt| {
                (cluster == 1 && attempt == 1) || cluster == 2
            });
        let fabric = FabricPropertyStore::new();
        let model = PersistentForecast::previous_day();
        let report = runner.run_day(&fleet, day, &model, &fabric);

        let c1 = &report.clusters[1];
        assert!(!c1.errored, "cluster 1 recovered on the re-run pass");
        assert!(c1.retries >= 1, "the failed pass is counted as retry work");

        let c2 = &report.clusters[2];
        assert!(c2.errored, "cluster 2 failed both passes");
        assert_eq!(c2.probe_availability, 0.0);
        assert!(
            c2.due_servers > 0,
            "errored cluster still enumerates its due servers"
        );

        // Healthy clusters are unaffected: their due servers all scheduled.
        assert!(report.clusters[0].due_servers > 0 || report.clusters[3].due_servers > 0);
        assert!(!report.clusters[0].errored && !report.clusters[3].errored);

        // Availability reflects the lost cluster instead of inflating to 1.
        let avail = report.availability();
        assert!(avail < 1.0, "errored cluster must drag availability down");
        let due: usize = report.clusters.iter().map(|c| c.due_servers).sum();
        let expected = (due - c2.due_servers) as f64 / due as f64;
        assert!((avail - expected).abs() < 1e-9, "{avail} vs {expected}");
    }

    #[test]
    fn runner_records_per_cluster_span_tree() {
        let (fleet, start) = fleet(47, 80);
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 3);
        let fabric = FabricPropertyStore::new();
        let model = PersistentForecast::previous_day();
        let day = start + 28;
        let report = runner.run_day(&fleet, day, &model, &fabric);

        let spans = runner.obs.tracer().spans();
        let root = spans
            .iter()
            .find(|s| s.name == "runner-day")
            .expect("root span");
        assert_eq!(root.start_tick, day as u64);
        assert!(root.end_tick.is_some(), "root span ended");
        let children: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "cluster-schedule")
            .collect();
        assert_eq!(children.len(), 3, "one child span per cluster");
        for c in &children {
            assert_eq!(c.parent, Some(root.id), "children link to the day");
        }

        let due: u64 = (0..3)
            .map(|c| {
                runner
                    .obs
                    .registry()
                    .counter(
                        "seagull_runner_due_servers_total",
                        &[("cluster", &c.to_string())],
                    )
                    .get()
            })
            .sum();
        let expected: usize = report.clusters.iter().map(|c| c.due_servers).sum();
        assert_eq!(due, expected as u64);
        assert_eq!(
            runner
                .obs
                .registry()
                .gauge("seagull_runner_availability", &[])
                .get(),
            report.availability()
        );
    }

    #[test]
    fn fully_errored_empty_day_reports_zero_availability() {
        let runner = RunnerService::new(BackupScheduler::new(SchedulerConfig::default()), 2)
            .with_cluster_fault(|_, _, _| true);
        let fabric = FabricPropertyStore::new();
        let model = PersistentForecast::previous_day();
        let report = runner.run_day(&[], 100, &model, &fabric);
        assert_eq!(
            report.availability(),
            0.0,
            "errored clusters must not report a vacuously perfect day"
        );
    }
}
