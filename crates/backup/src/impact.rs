//! Impact analysis — Figure 13 of the paper.
//!
//! Figure 13(a): for predictable servers, what fraction of backups moved from
//! colliding default windows into correctly chosen LL windows (12.5 % for
//! daily-pattern servers), how many default windows already coincided with
//! the LL window (85.3 %), and how many LL windows were not chosen correctly
//! (2.1 %); plus busy-server collision avoidance (7.7 %) and the resulting
//! "several hundred hours of improved customer experience".
//!
//! Figure 13(b): the percentage of servers per maximal CPU load — "only 3.7 %
//! of servers reach their CPU capacity per week, i.e., for 96.3 % of servers
//! resources could be saved."

use crate::scheduler::{ScheduleDecision, ScheduledBackup};
use seagull_core::metrics::{lowest_load_window, ErrorBound};
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_telemetry::server::GeneratedClass;
use seagull_timeseries::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome counts for a set of backups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImpactCounts {
    /// Backups evaluated (truth available).
    pub total: usize,
    /// Rescheduled into a correct LL window that the default missed.
    pub moved: usize,
    /// Default window already matched the LL window ("this happens by chance
    /// when default windows do not collide with high customer load").
    pub already_optimal: usize,
    /// Rescheduled, but the chosen window was not correct.
    pub incorrect: usize,
    /// Kept the default window (gate failed).
    pub kept_default: usize,
}

impl ImpactCounts {
    fn pct(&self, n: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.total as f64
        }
    }

    /// Percentage moved (of evaluated backups).
    pub fn moved_pct(&self) -> f64 {
        self.pct(self.moved)
    }

    /// Percentage already optimal.
    pub fn already_optimal_pct(&self) -> f64 {
        self.pct(self.already_optimal)
    }

    /// Percentage incorrectly chosen.
    pub fn incorrect_pct(&self) -> f64 {
        self.pct(self.incorrect)
    }

    /// Percentage kept at default.
    pub fn kept_default_pct(&self) -> f64 {
        self.pct(self.kept_default)
    }
}

/// The Figure 13(a) report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpactReport {
    pub overall: ImpactCounts,
    /// Per ground-truth class.
    pub by_class: Vec<(GeneratedClass, ImpactCounts)>,
    /// Busy servers (true load exceeding the busy threshold on the backup
    /// day) whose default window collided with high load.
    pub busy_collisions: usize,
    /// Of those, collisions avoided by rescheduling.
    pub busy_collisions_avoided: usize,
    /// Total hours of backups moved off colliding windows ("hours of
    /// improved customer experience").
    pub hours_improved: f64,
}

impl ImpactReport {
    /// Busy-server collision avoidance percentage.
    pub fn busy_avoided_pct(&self) -> f64 {
        if self.busy_collisions == 0 {
            0.0
        } else {
            100.0 * self.busy_collisions_avoided as f64 / self.busy_collisions as f64
        }
    }

    /// Counts for one class.
    pub fn class_counts(&self, class: GeneratedClass) -> ImpactCounts {
        self.by_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, n)| *n)
            .unwrap_or_default()
    }
}

/// Analyzes the impact of a batch of scheduled backups against true load.
///
/// `busy_threshold` is the "customer load over 60 % of capacity" bar from the
/// paper; `bound` decides window correctness as in Definition 8.
pub fn analyze_impact(
    fleet: &[ServerTelemetry],
    scheduled: &[ScheduledBackup],
    bound: &ErrorBound,
    busy_threshold: f64,
) -> ImpactReport {
    let by_id: HashMap<u64, &ServerTelemetry> = fleet.iter().map(|s| (s.meta.id.0, s)).collect();
    let mut overall = ImpactCounts::default();
    let mut by_class: HashMap<GeneratedClass, ImpactCounts> = HashMap::new();
    let mut busy_collisions = 0usize;
    let mut busy_avoided = 0usize;
    let mut hours_improved = 0.0f64;

    for b in scheduled {
        let Some(server) = by_id.get(&b.server_id) else {
            continue;
        };
        // True load on the backup day (regenerated from the ground-truth
        // shape even when the stored window ends before that day).
        let Some(truth) = server.true_day(b.backup_day) else {
            continue;
        };
        let Some(true_ll) = lowest_load_window(&truth, b.duration_min) else {
            continue;
        };
        let window_mean = |start: Timestamp| {
            truth
                .slice_values(start, start + b.duration_min as i64)
                .map(seagull_timeseries::mean)
                .ok()
        };
        let (default_start, _) = server.meta.backup.default_window_on(b.backup_day);
        let Some(default_mean) = window_mean(default_start) else {
            continue;
        };
        let Some(chosen_mean) = window_mean(b.start) else {
            continue;
        };
        let default_correct = bound.contains(default_mean, true_ll.mean_load);
        let chosen_correct = bound.contains(chosen_mean, true_ll.mean_load);

        let counts = by_class.entry(server.meta.class).or_default();
        counts.total += 1;
        overall.total += 1;
        match b.decision {
            ScheduleDecision::DefaultKept { .. } => {
                counts.kept_default += 1;
                overall.kept_default += 1;
            }
            ScheduleDecision::Rescheduled { .. } => {
                if !chosen_correct {
                    counts.incorrect += 1;
                    overall.incorrect += 1;
                } else if default_correct {
                    counts.already_optimal += 1;
                    overall.already_optimal += 1;
                } else {
                    counts.moved += 1;
                    overall.moved += 1;
                    hours_improved += b.duration_min as f64 / 60.0;
                }
            }
        }

        // Busy-server collision accounting. A *collision with a peak* means
        // the default window sits in high load (> threshold) while a
        // materially lower window existed that day — a flat always-busy
        // server has no peak to collide with. The collision is *avoided*
        // when the backup was rescheduled into a materially lower window.
        let peak = seagull_timeseries::max(truth.values());
        if peak > busy_threshold
            && default_mean > busy_threshold
            && default_mean > true_ll.mean_load + bound.over
        {
            busy_collisions += 1;
            if chosen_mean + bound.over < default_mean
                && matches!(b.decision, ScheduleDecision::Rescheduled { .. })
            {
                busy_avoided += 1;
            }
        }
    }

    let mut by_class: Vec<(GeneratedClass, ImpactCounts)> = by_class.into_iter().collect();
    by_class.sort_by_key(|(c, _)| c.label());
    ImpactReport {
        overall,
        by_class,
        busy_collisions,
        busy_collisions_avoided: busy_avoided,
        hours_improved,
    }
}

/// Figure 13(b): percentage of servers per maximal-CPU bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityHistogram {
    /// Bucket width, CPU percentage points.
    pub bucket_width: f64,
    /// `buckets[i]` = percentage of servers whose weekly max CPU lies in
    /// `[i*width, (i+1)*width)`.
    pub buckets: Vec<f64>,
    /// Percentage of servers whose max reaches `capacity_threshold`.
    pub reaching_capacity_pct: f64,
    pub capacity_threshold: f64,
    pub servers: usize,
}

/// Computes the max-CPU histogram over servers with data.
pub fn capacity_histogram(
    fleet: &[ServerTelemetry],
    bucket_width: f64,
    capacity_threshold: f64,
) -> CapacityHistogram {
    let maxes: Vec<f64> = fleet
        .iter()
        .filter(|s| !s.series.is_empty())
        .map(|s| seagull_timeseries::max(s.series.values()))
        .filter(|m| m.is_finite())
        .collect();
    let n_buckets = (100.0 / bucket_width).ceil() as usize;
    let mut counts = vec![0usize; n_buckets];
    let mut reaching = 0usize;
    for &m in &maxes {
        let idx = ((m / bucket_width) as usize).min(n_buckets - 1);
        counts[idx] += 1;
        if m >= capacity_threshold {
            reaching += 1;
        }
    }
    let total = maxes.len().max(1) as f64;
    CapacityHistogram {
        bucket_width,
        buckets: counts
            .into_iter()
            .map(|c| 100.0 * c as f64 / total)
            .collect(),
        reaching_capacity_pct: 100.0 * reaching as f64 / total,
        capacity_threshold,
        servers: maxes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricPropertyStore;
    use crate::scheduler::{BackupScheduler, SchedulerConfig};
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};

    fn fleet_and_schedule() -> (Vec<ServerTelemetry>, Vec<ScheduledBackup>) {
        let mut spec = FleetSpec::small_region(77);
        spec.regions[0].servers = 200;
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(5);
        let scheduler = BackupScheduler::new(SchedulerConfig {
            threads: 4,
            ..SchedulerConfig::default()
        });
        let model = PersistentForecast::previous_day();
        let fabric = FabricPropertyStore::new();
        let scheduled = scheduler.schedule_week(&fleet, start + 28, &model, &fabric);
        (fleet, scheduled)
    }

    #[test]
    fn impact_partitions_backups() {
        let (fleet, scheduled) = fleet_and_schedule();
        let report = analyze_impact(&fleet, &scheduled, &ErrorBound::default(), 60.0);
        assert!(report.overall.total > 0);
        assert_eq!(
            report.overall.moved
                + report.overall.already_optimal
                + report.overall.incorrect
                + report.overall.kept_default,
            report.overall.total
        );
        // Stable servers: default windows almost always already optimal among
        // rescheduled ones (the load is flat).
        let stable = report.class_counts(GeneratedClass::Stable);
        if stable.total > 20 {
            let resched = stable.moved + stable.already_optimal + stable.incorrect;
            if resched > 0 {
                assert!(
                    stable.already_optimal as f64 / resched as f64 > 0.9,
                    "stable already-optimal {}/{resched}",
                    stable.already_optimal
                );
            }
        }
        // Patterned servers produce moves (their defaults often collide).
        let daily = report.class_counts(GeneratedClass::DailyPattern);
        let weekly = report.class_counts(GeneratedClass::WeeklyPattern);
        let patterned_moved = daily.moved + weekly.moved;
        let _ = patterned_moved; // sparse classes may be absent in small fleets
        assert!(report.hours_improved >= 0.0);
    }

    #[test]
    fn moved_backups_accumulate_hours() {
        let (fleet, scheduled) = fleet_and_schedule();
        let report = analyze_impact(&fleet, &scheduled, &ErrorBound::default(), 60.0);
        let expect_hours: f64 = scheduled
            .iter()
            .filter(|b| matches!(b.decision, ScheduleDecision::Rescheduled { .. }))
            .map(|b| b.duration_min as f64 / 60.0)
            .sum();
        // Moved hours are a subset of all rescheduled hours.
        assert!(report.hours_improved <= expect_hours + 1e-9);
    }

    #[test]
    fn histogram_sums_to_100() {
        let mut spec = FleetSpec::small_region(5);
        spec.regions[0].servers = 500;
        let fleet = FleetGenerator::new(spec).generate_weeks(1);
        let h = capacity_histogram(&fleet, 10.0, 97.0);
        let sum: f64 = h.buckets.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
        assert_eq!(h.buckets.len(), 10);
        // The generator targets ~3.7 % capacity-reaching servers.
        assert!(
            h.reaching_capacity_pct > 0.5 && h.reaching_capacity_pct < 12.0,
            "reaching {}",
            h.reaching_capacity_pct
        );
        assert!(h.servers > 0);
    }

    #[test]
    fn histogram_empty_fleet() {
        let h = capacity_histogram(&[], 10.0, 97.0);
        assert_eq!(h.servers, 0);
        assert_eq!(h.reaching_capacity_pct, 0.0);
    }
}
