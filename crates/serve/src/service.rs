//! The serving front-end: admission control, query routing, and metrics.
//!
//! [`ServeService`] is the handle callers clone and query. It owns the
//! [`SnapshotStore`], shares the pipeline's [`CircuitBreaker`] for
//! admission control, and records every request into a [`seagull_obs`]
//! registry. It also implements [`DeploySink`], so handing a clone to
//! [`AmlPipeline::with_deploy_sink`](seagull_core::pipeline::AmlPipeline::with_deploy_sink)
//! makes every successful deployment publish a fresh snapshot — and every
//! failed deployment keep the last-known-good snapshot serving.

use crate::snapshot::ModelSnapshot;
use crate::store::SnapshotStore;
use seagull_core::metrics::{lowest_load_window, LowLoadWindow};
use seagull_core::pipeline::{DeployEvent, DeploySink};
use seagull_core::resilience::{BreakerConfig, BreakerState, CircuitBreaker};
use seagull_obs::{Exemplar, Obs, Stability};
use seagull_timeseries::{TimeSeries, Timestamp};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a serving request could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The region's circuit breaker is open; the request was shed before
    /// touching any snapshot.
    Rejected {
        /// Region whose breaker rejected the request.
        region: String,
    },
    /// No snapshot has ever been published for this region.
    NoSnapshot {
        /// Region that has no published snapshot.
        region: String,
    },
    /// The snapshot has no prediction for this server (it was dead,
    /// too young, or unpredictable when the pipeline ran).
    UnknownServer {
        /// Region that was queried.
        region: String,
        /// Server id the snapshot does not carry.
        server_id: u64,
    },
    /// The requested horizon extends past the materialized prediction and
    /// no cached model (or no model covering the range) is available.
    HorizonUnavailable {
        /// Steps the caller asked for.
        requested: usize,
        /// Steps the materialized prediction covers.
        materialized: usize,
    },
    /// The requested day is neither the materialized backup day nor
    /// reachable through the server's cached model.
    DayUnavailable {
        /// Day index the caller asked for.
        day: i64,
    },
    /// The day prediction exists but no low-load window of the requested
    /// duration fits it (duration not a multiple of the step, or zero).
    NoWindow {
        /// Requested window duration, minutes.
        duration_min: u32,
    },
    /// The request was malformed (zero horizon, empty batch, ...).
    BadRequest(
        /// Human-readable description of what was wrong.
        String,
    ),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { region } => {
                write!(f, "request shed: circuit breaker open for region {region}")
            }
            ServeError::NoSnapshot { region } => {
                write!(f, "no model snapshot published for region {region}")
            }
            ServeError::UnknownServer { region, server_id } => {
                write!(f, "no prediction for server {server_id} in region {region}")
            }
            ServeError::HorizonUnavailable {
                requested,
                materialized,
            } => write!(
                f,
                "horizon {requested} steps unavailable (materialized: {materialized}, no covering model)"
            ),
            ServeError::DayUnavailable { day } => {
                write!(f, "day {day} unavailable from snapshot or cached model")
            }
            ServeError::NoWindow { duration_min } => {
                write!(f, "no low-load window of {duration_min} min fits the day")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct ServeInner {
    store: SnapshotStore,
    breaker: CircuitBreaker,
    obs: Obs,
    clock_day: AtomicI64,
    /// Per-query sequence number, the span id exemplars carry. Monotonic
    /// across all clones of the handle.
    query_seq: AtomicU64,
}

/// Cloneable handle to the in-process prediction service.
///
/// Cloning is cheap (one `Arc` bump) and every clone shares the same
/// snapshot store, breaker, and metrics — hand clones to as many reader
/// threads as you like.
///
/// # Example
///
/// ```
/// use seagull_core::pipeline::PredictionDoc;
/// use seagull_serve::{ModelSnapshot, ServeService};
///
/// let serve = ServeService::with_defaults();
/// let doc = PredictionDoc {
///     region: "west".into(),
///     server_id: 7,
///     day: 14,
///     step_min: 30,
///     values: vec![1.0; 48],
///     duration_min: 60,
/// };
/// let snap = ModelSnapshot::from_predictions("west", 1, 7, "persistent-prev-day", &[doc]);
/// serve.publish(snap);
///
/// let prediction = serve.predict("west", 7, 4).unwrap();
/// assert_eq!(prediction.values(), &[1.0, 1.0, 1.0, 1.0]);
/// assert_eq!(serve.epoch("west"), 1);
/// ```
#[derive(Clone)]
pub struct ServeService {
    inner: Arc<ServeInner>,
}

impl ServeService {
    /// Creates a service recording into `obs` and sharing `breaker` for
    /// admission control. Share the pipeline's breaker so load shedding
    /// follows the same region health the pipeline sees; the service only
    /// ever *reads* breaker state — it never consumes half-open probes.
    pub fn new(obs: Obs, breaker: CircuitBreaker) -> ServeService {
        ServeService {
            inner: Arc::new(ServeInner {
                store: SnapshotStore::new(),
                breaker,
                obs,
                clock_day: AtomicI64::new(0),
                query_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Convenience constructor with a fresh registry and a default breaker
    /// (nothing ever trips it unless failures are recorded into it).
    pub fn with_defaults() -> ServeService {
        ServeService::new(Obs::new(), CircuitBreaker::new(BreakerConfig::default()))
    }

    /// The observability handle requests are recorded into.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// The breaker consulted for admission control.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.inner.breaker
    }

    /// Sets the service's notion of "today" (a day index on the simulated
    /// clock). Drives [`ServeService::staleness_days`] and the staleness
    /// histogram stamped at publish time.
    pub fn set_clock_day(&self, day: i64) {
        self.inner.clock_day.store(day, Ordering::Relaxed);
    }

    /// The service's current day on the simulated clock.
    pub fn clock_day(&self) -> i64 {
        self.inner.clock_day.load(Ordering::Relaxed)
    }

    /// Publishes a snapshot, making it the region's serving state via an
    /// atomic epoch swap. Returns the new epoch. In-flight readers keep
    /// whatever snapshot they already hold.
    pub fn publish(&self, snapshot: ModelSnapshot) -> u64 {
        let region = snapshot.region().to_string();
        let servers = snapshot.len() as f64;
        let staleness = (self.clock_day() - snapshot.week_start_day()).max(0) as f64;
        let epoch = self.inner.store.publish(snapshot);
        let reg = self.inner.obs.registry();
        let labels = [("region", region.as_str())];
        reg.counter("seagull_serve_publishes_total", &labels).inc();
        reg.gauge("seagull_serve_epoch", &labels).set(epoch as f64);
        reg.gauge("seagull_serve_snapshot_servers", &labels)
            .set(servers);
        reg.histogram("seagull_serve_staleness_days", &labels)
            .observe(staleness);
        epoch
    }

    /// The region's current snapshot, or `None` before the first publish.
    /// The returned `Arc` stays coherent across later deploys.
    pub fn snapshot(&self, region: &str) -> Option<Arc<ModelSnapshot>> {
        self.inner.store.load(region)
    }

    /// The region's swap epoch (0 before the first publish).
    pub fn epoch(&self, region: &str) -> u64 {
        self.inner.store.epoch(region)
    }

    /// Regions with at least one published snapshot, ascending.
    pub fn regions(&self) -> Vec<String> {
        self.inner.store.regions()
    }

    /// Days between the simulated clock and the serving snapshot's training
    /// week, or `None` if nothing is published. Large values mean deploys
    /// keep failing and the last-known-good snapshot is aging out.
    pub fn staleness_days(&self, region: &str) -> Option<i64> {
        self.snapshot(region)
            .map(|s| (self.clock_day() - s.week_start_day()).max(0))
    }

    fn admit(&self, region: &str) -> Result<(), ServeError> {
        if self.inner.breaker.state(region) == BreakerState::Open {
            self.record(region, "rejected");
            return Err(ServeError::Rejected {
                region: region.to_string(),
            });
        }
        Ok(())
    }

    fn record(&self, region: &str, outcome: &str) {
        self.inner
            .obs
            .registry()
            .counter(
                "seagull_serve_requests_total",
                &[("region", region), ("outcome", outcome)],
            )
            .inc();
    }

    fn record_latency(&self, region: &str, started: Instant) {
        // Each request becomes one exemplar offer against its latency
        // bucket: the per-query sequence number is the trace handle, the
        // simulated clock day the tick. The histogram's reservoir keeps a
        // uniformly sampled exemplar per bucket, so slow-tail buckets stay
        // attributable to a concrete query. The histogram (and therefore
        // its exemplars) is wall-clock derived and registered volatile —
        // the stable export never sees either.
        let latency = started.elapsed().as_secs_f64();
        let span_id = self.inner.query_seq.fetch_add(1, Ordering::Relaxed);
        let tick = self.clock_day().max(0) as u64;
        self.inner
            .obs
            .registry()
            .histogram_with(
                "seagull_serve_latency_seconds",
                &[("region", region)],
                Stability::Volatile,
            )
            .observe_exemplar(
                latency,
                Exemplar {
                    value: latency,
                    span_id,
                    tick,
                },
            );
    }

    fn finish<T>(
        &self,
        region: &str,
        started: Instant,
        result: Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        self.record(region, if result.is_ok() { "ok" } else { "error" });
        self.record_latency(region, started);
        result
    }

    /// Predicts the next `horizon` steps for one server, anchored at the
    /// start of its materialized prediction day.
    ///
    /// Horizons within the materialized day are answered with a zero-copy
    /// slice of the snapshot (no allocation, no model inference). Longer
    /// horizons fall through to the server's cached fitted model when the
    /// deploy attached one; otherwise
    /// [`ServeError::HorizonUnavailable`] is returned.
    pub fn predict(
        &self,
        region: &str,
        server_id: u64,
        horizon: usize,
    ) -> Result<TimeSeries, ServeError> {
        let started = Instant::now();
        self.admit(region)?;
        let result = self.predict_on(self.lookup(region)?.as_ref(), region, server_id, horizon);
        self.finish(region, started, result)
    }

    fn lookup(&self, region: &str) -> Result<Arc<ModelSnapshot>, ServeError> {
        self.snapshot(region).ok_or_else(|| ServeError::NoSnapshot {
            region: region.to_string(),
        })
    }

    fn predict_on(
        &self,
        snapshot: &ModelSnapshot,
        region: &str,
        server_id: u64,
        horizon: usize,
    ) -> Result<TimeSeries, ServeError> {
        if horizon == 0 {
            return Err(ServeError::BadRequest("horizon must be positive".into()));
        }
        let server = snapshot
            .server(server_id)
            .ok_or_else(|| ServeError::UnknownServer {
                region: region.to_string(),
                server_id,
            })?;
        let materialized = server.prediction();
        if horizon <= materialized.len() {
            let from = materialized.start();
            let to = from + horizon as i64 * materialized.step_min() as i64;
            return materialized
                .slice(from, to)
                .map_err(|_| ServeError::HorizonUnavailable {
                    requested: horizon,
                    materialized: materialized.len(),
                });
        }
        let unavailable = ServeError::HorizonUnavailable {
            requested: horizon,
            materialized: materialized.len(),
        };
        let model = server.model().ok_or_else(|| unavailable.clone())?;
        let from = materialized.start();
        let step = materialized.step_min() as i64;
        let to = from + horizon as i64 * step;
        Self::model_range(model.as_ref(), from, to, step).ok_or(unavailable)
    }

    /// Predicts a specific calendar day for one server. The materialized
    /// backup day is served zero-copy; other days go through the cached
    /// model when it covers them.
    pub fn predict_day(
        &self,
        region: &str,
        server_id: u64,
        day: i64,
    ) -> Result<TimeSeries, ServeError> {
        let started = Instant::now();
        self.admit(region)?;
        let result = self.predict_day_on(self.lookup(region)?.as_ref(), region, server_id, day);
        self.finish(region, started, result)
    }

    fn predict_day_on(
        &self,
        snapshot: &ModelSnapshot,
        region: &str,
        server_id: u64,
        day: i64,
    ) -> Result<TimeSeries, ServeError> {
        let server = snapshot
            .server(server_id)
            .ok_or_else(|| ServeError::UnknownServer {
                region: region.to_string(),
                server_id,
            })?;
        if let Some(view) = server.prediction().day(day) {
            return Ok(view);
        }
        let model = server.model().ok_or(ServeError::DayUnavailable { day })?;
        let from = Timestamp::from_days(day);
        let to = Timestamp::from_days(day + 1);
        let step = server.prediction().step_min() as i64;
        Self::model_range(model.as_ref(), from, to, step).ok_or(ServeError::DayUnavailable { day })
    }

    /// Runs the model far enough to cover `[from, to)` and slices that
    /// range out. The model's own anchor (the start of the series its
    /// `predict` returns) is recovered from a one-step probe; `None` if the
    /// range starts before the anchor, the grids disagree, or the model
    /// errors.
    fn model_range(
        model: &dyn seagull_forecast::FittedModel,
        from: Timestamp,
        to: Timestamp,
        step: i64,
    ) -> Option<TimeSeries> {
        let probe = model.predict(1).ok()?;
        if probe.step_min() as i64 != step {
            return None;
        }
        let anchor = probe.start();
        if from < anchor || (from - anchor) % step != 0 {
            return None;
        }
        let total = ((to - anchor) / step) as usize;
        let full = model.predict(total).ok()?;
        full.slice(from, to).ok()
    }

    /// Finds the lowest-load window of the server's configured backup
    /// duration on the given day — the query the backup scheduler asks.
    pub fn ll_window(
        &self,
        region: &str,
        server_id: u64,
        day: i64,
    ) -> Result<LowLoadWindow, ServeError> {
        let started = Instant::now();
        self.admit(region)?;
        let snapshot = self.lookup(region)?;
        let result = (|| {
            let series = self.predict_day_on(snapshot.as_ref(), region, server_id, day)?;
            let duration = snapshot
                .server(server_id)
                .map(|s| s.duration_min() as u32)
                .unwrap_or(0);
            lowest_load_window(&series, duration).ok_or(ServeError::NoWindow {
                duration_min: duration,
            })
        })();
        self.finish(region, started, result)
    }

    /// Answers a batch of `(server_id, horizon)` queries against a single
    /// coherent snapshot acquisition — every answer in the batch comes from
    /// the same epoch, even if a deploy lands mid-batch. Responses are in
    /// input order. Admission and snapshot lookup are batch-level: an open
    /// breaker or missing snapshot fails the whole batch.
    pub fn predict_batch(
        &self,
        region: &str,
        requests: &[(u64, usize)],
    ) -> Result<Vec<Result<TimeSeries, ServeError>>, ServeError> {
        let started = Instant::now();
        if requests.is_empty() {
            return Err(ServeError::BadRequest("empty batch".into()));
        }
        self.admit(region)?;
        let snapshot = self.lookup(region)?;
        self.inner
            .obs
            .registry()
            .histogram("seagull_serve_batch_size", &[("region", region)])
            .observe(requests.len() as f64);
        let responses = requests
            .iter()
            .map(|&(server_id, horizon)| {
                let result = self.predict_on(snapshot.as_ref(), region, server_id, horizon);
                self.record(region, if result.is_ok() { "ok" } else { "error" });
                result
            })
            .collect();
        self.record_latency(region, started);
        Ok(responses)
    }
}

impl DeploySink for ServeService {
    /// Successful deployment: build a snapshot from the deployed
    /// predictions (attaching warm-cache models when the pipeline runs with
    /// `warm_cache`) and swap it in.
    fn on_deploy(&self, event: &DeployEvent<'_>) {
        self.publish(ModelSnapshot::from_deploy(event));
    }

    /// Failed deployment: the store is deliberately *not* touched — the
    /// last-known-good snapshot keeps serving, mirroring the registry's
    /// fallback rule. Only a counter records that it happened.
    fn on_fallback(&self, region: &str, _week_start_day: i64) {
        self.inner
            .obs
            .registry()
            .counter("seagull_serve_fallback_kept_total", &[("region", region)])
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_core::pipeline::PredictionDoc;

    fn doc(server_id: u64, day: i64, values: Vec<f64>) -> PredictionDoc {
        PredictionDoc {
            region: "west".into(),
            server_id,
            day,
            step_min: 30,
            values,
            duration_min: 60,
        }
    }

    fn service_with_one_server() -> ServeService {
        let serve = ServeService::with_defaults();
        let values: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let snap = ModelSnapshot::from_predictions("west", 1, 7, "m", &[doc(7, 14, values)]);
        serve.publish(snap);
        serve
    }

    #[test]
    fn predict_slices_materialized_day_zero_copy() {
        let serve = service_with_one_server();
        let p = serve.predict("west", 7, 4).unwrap();
        assert_eq!(p.values(), &[0.0, 1.0, 2.0, 3.0]);
        let full = serve.predict("west", 7, 48).unwrap();
        let snap = serve.snapshot("west").unwrap();
        assert!(full.shares_storage(snap.server(7).unwrap().prediction()));
    }

    #[test]
    fn predict_errors_are_specific() {
        let serve = service_with_one_server();
        assert!(matches!(
            serve.predict("east", 7, 4),
            Err(ServeError::NoSnapshot { .. })
        ));
        assert!(matches!(
            serve.predict("west", 99, 4),
            Err(ServeError::UnknownServer { server_id: 99, .. })
        ));
        assert!(matches!(
            serve.predict("west", 7, 0),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            serve.predict("west", 7, 49),
            Err(ServeError::HorizonUnavailable {
                requested: 49,
                materialized: 48
            })
        ));
    }

    #[test]
    fn predict_day_serves_materialized_day() {
        let serve = service_with_one_server();
        let day = serve.predict_day("west", 7, 14).unwrap();
        assert_eq!(day.len(), 48);
        assert!(matches!(
            serve.predict_day("west", 7, 15),
            Err(ServeError::DayUnavailable { day: 15 })
        ));
    }

    #[test]
    fn ll_window_finds_quietest_hour() {
        let serve = ServeService::with_defaults();
        // Low plateau at steps 10..14 (values 0.5), high elsewhere.
        let values: Vec<f64> = (0..48)
            .map(|i| if (10..14).contains(&i) { 0.5 } else { 9.0 })
            .collect();
        serve.publish(ModelSnapshot::from_predictions(
            "west",
            1,
            7,
            "m",
            &[doc(7, 14, values)],
        ));
        let w = serve.ll_window("west", 7, 14).unwrap();
        assert_eq!(w.duration_min, 60);
        assert_eq!(w.start.day_index(), 14);
        assert!((w.mean_load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_answers_in_input_order_from_one_epoch() {
        let serve = service_with_one_server();
        let out = serve
            .predict_batch("west", &[(99, 2), (7, 2), (7, 1)])
            .unwrap();
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], Err(ServeError::UnknownServer { .. })));
        assert_eq!(out[1].as_ref().unwrap().values(), &[0.0, 1.0]);
        assert_eq!(out[2].as_ref().unwrap().values(), &[0.0]);
        assert!(matches!(
            serve.predict_batch("west", &[]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn open_breaker_sheds_requests() {
        let serve = service_with_one_server();
        // Trip the breaker: default threshold is 3 consecutive failures.
        let incidents = seagull_core::incident::IncidentManager::new();
        for _ in 0..3 {
            serve.breaker().record_failure("west", 0, &incidents);
        }
        assert_eq!(serve.breaker().state("west"), BreakerState::Open);
        assert!(matches!(
            serve.predict("west", 7, 4),
            Err(ServeError::Rejected { .. })
        ));
        assert!(matches!(
            serve.predict_batch("west", &[(7, 1)]),
            Err(ServeError::Rejected { .. })
        ));
    }

    #[test]
    fn query_exemplars_surface_in_full_export_only() {
        let serve = service_with_one_server();
        for _ in 0..20 {
            serve.predict("west", 7, 4).unwrap();
        }
        let full = serve.obs().full_export();
        assert!(
            full.contains("# EXEMPLAR seagull_serve_latency_seconds_bucket"),
            "full export should carry latency exemplars:\n{full}"
        );
        assert!(full.contains("span="));
        // The latency histogram is volatile: neither it nor its exemplars
        // may leak into the deterministic export.
        let stable = serve.obs().stable_export();
        assert!(!stable.contains("seagull_serve_latency_seconds"));
        assert!(!stable.contains("EXEMPLAR"));
    }

    #[test]
    fn staleness_tracks_clock() {
        let serve = service_with_one_server();
        assert_eq!(serve.staleness_days("west"), Some(0));
        serve.set_clock_day(21);
        assert_eq!(serve.staleness_days("west"), Some(14));
        assert_eq!(serve.staleness_days("east"), None);
    }
}
