//! The serving front-end: admission control, query routing, and metrics.
//!
//! [`ServeService`] is the handle callers clone and query. It owns the
//! [`SnapshotStore`], shares the pipeline's [`CircuitBreaker`] for
//! admission control, and records every request into a [`seagull_obs`]
//! registry. It also implements [`DeploySink`], so handing a clone to
//! [`AmlPipeline::with_deploy_sink`](seagull_core::pipeline::AmlPipeline::with_deploy_sink)
//! makes every successful deployment publish a fresh snapshot — and every
//! failed deployment keep the last-known-good snapshot serving.
//!
//! ## The per-query fast path
//!
//! A query executes exactly one epoch pin and then runs entirely on
//! pre-resolved, contention-free state. The key structure is the
//! `RegionCtx`: built once per region (on its first query) and cached in
//! a lock-free `ShardedMap` sharing the store's epoch GC, it holds
//! everything the hot path would otherwise have to look up per request —
//! the region's snapshot slot (an atomic pointer), a lock-free
//! [`BreakerProbe`] mirroring the shared breaker's state, and the
//! `Arc<Counter>`/`Arc<Histogram>` metric handles (resolving a handle
//! through the registry takes its global mutex and allocates a label set;
//! doing that two or three times per query was a measurable fraction of
//! the old 14µs p50). Admission is one atomic load, outcome accounting one
//! atomic increment, and the snapshot itself is *borrowed* from the slot
//! under the pin — no `Arc` refcount traffic at all.
//!
//! Wall-clock latency histograms stay per-query, but exemplar *offers*
//! (which take the histogram's reservoir mutex) are sampled one-in-64 per
//! thread; the histogram's buckets see every observation either way.

use crate::coalesce::{CoalesceKey, Coalescer};
use crate::shard::{PinGuard, ShardedMap};
use crate::snapshot::ModelSnapshot;
use crate::store::{RegionSlot, SnapshotStore};
use seagull_core::metrics::{lowest_load_window, LowLoadWindow};
use seagull_core::pipeline::{DeployEvent, DeploySink};
use seagull_core::resilience::{BreakerConfig, BreakerProbe, CircuitBreaker};
use seagull_obs::{Counter, Exemplar, Histogram, Obs, Stability};
use seagull_timeseries::{TimeSeries, Timestamp};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a serving request could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The region's circuit breaker is open; the request was shed before
    /// touching any snapshot.
    Rejected {
        /// Region whose breaker rejected the request.
        region: String,
    },
    /// No snapshot has ever been published for this region.
    NoSnapshot {
        /// Region that has no published snapshot.
        region: String,
    },
    /// The snapshot has no prediction for this server (it was dead,
    /// too young, or unpredictable when the pipeline ran).
    UnknownServer {
        /// Region that was queried.
        region: String,
        /// Server id the snapshot does not carry.
        server_id: u64,
    },
    /// The requested horizon extends past the materialized prediction and
    /// no cached model (or no model covering the range) is available.
    HorizonUnavailable {
        /// Steps the caller asked for.
        requested: usize,
        /// Steps the materialized prediction covers.
        materialized: usize,
    },
    /// The requested day is neither the materialized backup day nor
    /// reachable through the server's cached model.
    DayUnavailable {
        /// Day index the caller asked for.
        day: i64,
    },
    /// The day prediction exists but no low-load window of the requested
    /// duration fits it (duration not a multiple of the step, or zero).
    NoWindow {
        /// Requested window duration, minutes.
        duration_min: u32,
    },
    /// The request was malformed (zero horizon, empty batch, ...).
    BadRequest(
        /// Human-readable description of what was wrong.
        String,
    ),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { region } => {
                write!(f, "request shed: circuit breaker open for region {region}")
            }
            ServeError::NoSnapshot { region } => {
                write!(f, "no model snapshot published for region {region}")
            }
            ServeError::UnknownServer { region, server_id } => {
                write!(f, "no prediction for server {server_id} in region {region}")
            }
            ServeError::HorizonUnavailable {
                requested,
                materialized,
            } => write!(
                f,
                "horizon {requested} steps unavailable (materialized: {materialized}, no covering model)"
            ),
            ServeError::DayUnavailable { day } => {
                write!(f, "day {day} unavailable from snapshot or cached model")
            }
            ServeError::NoWindow { duration_min } => {
                write!(f, "no low-load window of {duration_min} min fits the day")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One region's pre-resolved hot-path state: the snapshot slot, a
/// lock-free breaker mirror, and cached metric handles. Built on the
/// region's first query and immutable afterwards — deploys mutate the
/// slot's interior pointer, breaker transitions mirror into the probe's
/// cell, and the handles point at live registry entries, so nothing here
/// ever needs invalidation.
struct RegionCtx {
    /// Interned region name; its address doubles as the coalescing key's
    /// region identity.
    name: Arc<str>,
    slot: Arc<RegionSlot>,
    probe: BreakerProbe,
    ok: Arc<Counter>,
    err: Arc<Counter>,
    rejected: Arc<Counter>,
    coalesced: Arc<Counter>,
    latency: Arc<Histogram>,
    batch_size: Arc<Histogram>,
}

/// Exemplar offers are sampled one-in-N per thread: offers take the
/// histogram's reservoir mutex, and under multi-thread load that mutex
/// was the next contention point after the locks the sharded store
/// removed. Bucket counts still see every observation.
const EXEMPLAR_SAMPLE_EVERY: u64 = 64;

thread_local! {
    static EXEMPLAR_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

struct ServeInner {
    store: SnapshotStore,
    breaker: CircuitBreaker,
    obs: Obs,
    ctxs: ShardedMap<Arc<RegionCtx>>,
    coalescer: Coalescer,
    coalesce: AtomicBool,
    clock_day: AtomicI64,
    /// Sequence number for sampled exemplar span ids. Monotonic across
    /// all clones of the handle.
    query_seq: AtomicU64,
}

/// Cloneable handle to the in-process prediction service.
///
/// Cloning is cheap (one `Arc` bump) and every clone shares the same
/// snapshot store, breaker, and metrics — hand clones to as many reader
/// threads as you like.
///
/// # Example
///
/// ```
/// use seagull_core::pipeline::PredictionDoc;
/// use seagull_serve::{ModelSnapshot, ServeService};
///
/// let serve = ServeService::with_defaults();
/// let doc = PredictionDoc {
///     region: "west".into(),
///     server_id: 7,
///     day: 14,
///     step_min: 30,
///     values: vec![1.0; 48],
///     duration_min: 60,
/// };
/// let snap = ModelSnapshot::from_predictions("west", 1, 7, "persistent-prev-day", &[doc]);
/// serve.publish(snap);
///
/// let prediction = serve.predict("west", 7, 4).unwrap();
/// assert_eq!(prediction.values(), &[1.0, 1.0, 1.0, 1.0]);
/// assert_eq!(serve.epoch("west"), 1);
/// ```
#[derive(Clone)]
pub struct ServeService {
    inner: Arc<ServeInner>,
}

impl ServeService {
    /// Creates a service recording into `obs` and sharing `breaker` for
    /// admission control. Share the pipeline's breaker so load shedding
    /// follows the same region health the pipeline sees; the service only
    /// ever *reads* breaker state — it never consumes half-open probes.
    pub fn new(obs: Obs, breaker: CircuitBreaker) -> ServeService {
        ServeService {
            inner: Arc::new(ServeInner {
                store: SnapshotStore::new(),
                breaker,
                obs,
                ctxs: ShardedMap::new(),
                coalescer: Coalescer::new(),
                coalesce: AtomicBool::new(false),
                clock_day: AtomicI64::new(0),
                query_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Convenience constructor with a fresh registry and a default breaker
    /// (nothing ever trips it unless failures are recorded into it).
    pub fn with_defaults() -> ServeService {
        ServeService::new(Obs::new(), CircuitBreaker::new(BreakerConfig::default()))
    }

    /// Enables in-flight request coalescing and returns the handle —
    /// builder-style sugar over [`ServeService::set_coalescing`].
    pub fn with_coalescing(self) -> ServeService {
        self.set_coalescing(true);
        self
    }

    /// Turns coalescing of identical in-flight `(server, horizon)`
    /// predictions on or off (off by default). Coalesced responses are
    /// byte-identical to uncoalesced ones — the coalescing key pins the
    /// snapshot epoch — so this only trades a map probe per query against
    /// deduplicating expensive model-backed horizons under fan-in.
    pub fn set_coalescing(&self, enabled: bool) {
        self.inner.coalesce.store(enabled, Ordering::Relaxed);
    }

    /// Whether in-flight coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.inner.coalesce.load(Ordering::Relaxed)
    }

    /// Requests that were answered by another in-flight computation so
    /// far. Timing-dependent by nature (volatile).
    pub fn coalesced_total(&self) -> u64 {
        self.inner.coalescer.hits()
    }

    /// The observability handle requests are recorded into.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// The breaker consulted for admission control.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.inner.breaker
    }

    /// Sets the service's notion of "today" (a day index on the simulated
    /// clock). Drives [`ServeService::staleness_days`] and the staleness
    /// histogram stamped at publish time.
    pub fn set_clock_day(&self, day: i64) {
        self.inner.clock_day.store(day, Ordering::Relaxed);
    }

    /// The service's current day on the simulated clock.
    pub fn clock_day(&self) -> i64 {
        self.inner.clock_day.load(Ordering::Relaxed)
    }

    /// Publishes a snapshot, making it the region's serving state via an
    /// atomic pointer swap. Returns the new epoch. In-flight readers keep
    /// whatever snapshot they already hold.
    pub fn publish(&self, snapshot: ModelSnapshot) -> u64 {
        let region = snapshot.region().to_string();
        let servers = snapshot.len() as f64;
        let staleness = (self.clock_day() - snapshot.week_start_day()).max(0) as f64;
        let epoch = self.inner.store.publish(snapshot);
        let reg = self.inner.obs.registry();
        let labels = [("region", region.as_str())];
        reg.counter("seagull_serve_publishes_total", &labels).inc();
        reg.gauge("seagull_serve_epoch", &labels).set(epoch as f64);
        reg.gauge("seagull_serve_snapshot_servers", &labels)
            .set(servers);
        reg.histogram("seagull_serve_staleness_days", &labels)
            .observe(staleness);
        self.publish_store_metrics();
        epoch
    }

    /// Exports the store's shard/GC statistics as gauges. Publish-time
    /// only — the read path never touches the registry.
    fn publish_store_metrics(&self) {
        let reg = self.inner.obs.registry();
        let stats = self.inner.store.stats();
        for (i, publishes) in stats.publishes_per_shard.iter().enumerate() {
            if *publishes > 0 {
                let shard = i.to_string();
                let labels = [("shard", shard.as_str())];
                reg.gauge("seagull_serve_shard_publishes", &labels)
                    .set(*publishes as f64);
                reg.gauge("seagull_serve_shard_regions", &labels)
                    .set(stats.regions_per_shard[i] as f64);
            }
        }
        reg.gauge("seagull_serve_snapshots_retired", &[])
            .set(stats.snapshots_retired as f64);
        let gc = self.inner.store.gc_stats();
        reg.gauge_with("seagull_serve_gc_freed", &[], Stability::Volatile)
            .set(gc.freed_total as f64);
        reg.gauge_with("seagull_serve_reader_slots", &[], Stability::Volatile)
            .set(gc.reader_slots as f64);
    }

    /// The region's current snapshot, or `None` before the first publish.
    /// The returned `Arc` stays coherent across later deploys.
    pub fn snapshot(&self, region: &str) -> Option<Arc<ModelSnapshot>> {
        self.inner.store.load(region)
    }

    /// The region's deploy epoch (0 before the first publish).
    pub fn epoch(&self, region: &str) -> u64 {
        self.inner.store.epoch(region)
    }

    /// Regions with at least one published snapshot, ascending.
    pub fn regions(&self) -> Vec<String> {
        self.inner.store.regions()
    }

    /// Days between the simulated clock and the serving snapshot's training
    /// week, or `None` if nothing is published. Large values mean deploys
    /// keep failing and the last-known-good snapshot is aging out.
    pub fn staleness_days(&self, region: &str) -> Option<i64> {
        self.snapshot(region)
            .map(|s| (self.clock_day() - s.week_start_day()).max(0))
    }

    /// The region's cached hot-path context, building it on first query.
    /// The rebuilt-after-insert lookup is safe because `ShardedMap` reads
    /// always observe the latest published node.
    fn ctx<'p>(&self, region: &str, pin: &'p PinGuard) -> &'p RegionCtx {
        if let Some(ctx) = self.inner.ctxs.get(region, pin) {
            return ctx;
        }
        let gc = self.inner.store.gc();
        self.inner.ctxs.get_or_insert(region, gc, pin, || {
            let reg = self.inner.obs.registry();
            let labels = [("region", region)];
            Arc::new(RegionCtx {
                name: Arc::from(region),
                slot: self.inner.store.slot_or_insert(region, pin),
                probe: self.inner.breaker.probe(region),
                ok: reg.counter(
                    "seagull_serve_requests_total",
                    &[("region", region), ("outcome", "ok")],
                ),
                err: reg.counter(
                    "seagull_serve_requests_total",
                    &[("region", region), ("outcome", "error")],
                ),
                rejected: reg.counter(
                    "seagull_serve_requests_total",
                    &[("region", region), ("outcome", "rejected")],
                ),
                coalesced: reg.counter_with(
                    "seagull_serve_coalesced_total",
                    &labels,
                    Stability::Volatile,
                ),
                latency: reg.histogram_with(
                    "seagull_serve_latency_seconds",
                    &labels,
                    Stability::Volatile,
                ),
                batch_size: reg.histogram("seagull_serve_batch_size", &labels),
            })
        });
        self.inner
            .ctxs
            .get(region, pin)
            .expect("context visible after insert")
    }

    /// Records the wall-clock latency (every observation) and offers a
    /// sampled exemplar (one in [`EXEMPLAR_SAMPLE_EVERY`] per thread).
    fn observe_latency(&self, ctx: &RegionCtx, started: Instant) {
        let latency = started.elapsed().as_secs_f64();
        let sampled = EXEMPLAR_TICK.with(|tick| {
            let n = tick.get();
            tick.set(n.wrapping_add(1));
            n % EXEMPLAR_SAMPLE_EVERY == 0
        });
        if sampled {
            let span_id = self.inner.query_seq.fetch_add(1, Ordering::Relaxed);
            let tick = self.clock_day().max(0) as u64;
            ctx.latency.observe_exemplar(
                latency,
                Exemplar {
                    value: latency,
                    span_id,
                    tick,
                },
            );
        } else {
            ctx.latency.observe(latency);
        }
    }

    fn finish<T>(
        &self,
        ctx: &RegionCtx,
        started: Instant,
        result: Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        if result.is_ok() {
            ctx.ok.inc();
        } else {
            ctx.err.inc();
        }
        self.observe_latency(ctx, started);
        result
    }

    fn shed(ctx: &RegionCtx, region: &str) -> ServeError {
        ctx.rejected.inc();
        ServeError::Rejected {
            region: region.to_string(),
        }
    }

    /// Predicts the next `horizon` steps for one server, anchored at the
    /// start of its materialized prediction day.
    ///
    /// Horizons within the materialized day are answered with a zero-copy
    /// slice of the snapshot (no allocation, no model inference). Longer
    /// horizons fall through to the server's cached fitted model when the
    /// deploy attached one; otherwise
    /// [`ServeError::HorizonUnavailable`] is returned.
    pub fn predict(
        &self,
        region: &str,
        server_id: u64,
        horizon: usize,
    ) -> Result<TimeSeries, ServeError> {
        let started = Instant::now();
        let pin = self.inner.store.gc().pin();
        let ctx = self.ctx(region, &pin);
        if ctx.probe.is_open() {
            return Err(Self::shed(ctx, region));
        }
        let snapshot = ctx.slot.read(&pin).ok_or_else(|| ServeError::NoSnapshot {
            region: region.to_string(),
        })?;
        let result = if self.coalescing() {
            let key = CoalesceKey {
                region: Arc::as_ptr(&ctx.name) as *const u8 as usize,
                epoch: snapshot.epoch(),
                server: server_id,
                horizon: horizon as u64,
            };
            let (result, coalesced) = self.inner.coalescer.run(key, || {
                self.predict_on(snapshot, region, server_id, horizon)
            });
            if coalesced {
                ctx.coalesced.inc();
            }
            result
        } else {
            self.predict_on(snapshot, region, server_id, horizon)
        };
        self.finish(ctx, started, result)
    }

    fn predict_on(
        &self,
        snapshot: &ModelSnapshot,
        region: &str,
        server_id: u64,
        horizon: usize,
    ) -> Result<TimeSeries, ServeError> {
        if horizon == 0 {
            return Err(ServeError::BadRequest("horizon must be positive".into()));
        }
        let server = snapshot
            .server(server_id)
            .ok_or_else(|| ServeError::UnknownServer {
                region: region.to_string(),
                server_id,
            })?;
        let materialized = server.prediction();
        if horizon <= materialized.len() {
            let from = materialized.start();
            let to = from + horizon as i64 * materialized.step_min() as i64;
            return materialized
                .slice(from, to)
                .map_err(|_| ServeError::HorizonUnavailable {
                    requested: horizon,
                    materialized: materialized.len(),
                });
        }
        let unavailable = ServeError::HorizonUnavailable {
            requested: horizon,
            materialized: materialized.len(),
        };
        let model = server.model().ok_or_else(|| unavailable.clone())?;
        let from = materialized.start();
        let step = materialized.step_min() as i64;
        let to = from + horizon as i64 * step;
        Self::model_range(model.as_ref(), from, to, step).ok_or(unavailable)
    }

    /// Predicts a specific calendar day for one server. The materialized
    /// backup day is served zero-copy; other days go through the cached
    /// model when it covers them.
    pub fn predict_day(
        &self,
        region: &str,
        server_id: u64,
        day: i64,
    ) -> Result<TimeSeries, ServeError> {
        let started = Instant::now();
        let pin = self.inner.store.gc().pin();
        let ctx = self.ctx(region, &pin);
        if ctx.probe.is_open() {
            return Err(Self::shed(ctx, region));
        }
        let snapshot = ctx.slot.read(&pin).ok_or_else(|| ServeError::NoSnapshot {
            region: region.to_string(),
        })?;
        let result = self.predict_day_on(snapshot, region, server_id, day);
        self.finish(ctx, started, result)
    }

    fn predict_day_on(
        &self,
        snapshot: &ModelSnapshot,
        region: &str,
        server_id: u64,
        day: i64,
    ) -> Result<TimeSeries, ServeError> {
        let server = snapshot
            .server(server_id)
            .ok_or_else(|| ServeError::UnknownServer {
                region: region.to_string(),
                server_id,
            })?;
        if let Some(view) = server.prediction().day(day) {
            return Ok(view);
        }
        let model = server.model().ok_or(ServeError::DayUnavailable { day })?;
        let from = Timestamp::from_days(day);
        let to = Timestamp::from_days(day + 1);
        let step = server.prediction().step_min() as i64;
        Self::model_range(model.as_ref(), from, to, step).ok_or(ServeError::DayUnavailable { day })
    }

    /// Runs the model far enough to cover `[from, to)` and slices that
    /// range out. The model's own anchor (the start of the series its
    /// `predict` returns) is recovered from a one-step probe; `None` if the
    /// range starts before the anchor, the grids disagree, or the model
    /// errors.
    fn model_range(
        model: &dyn seagull_forecast::FittedModel,
        from: Timestamp,
        to: Timestamp,
        step: i64,
    ) -> Option<TimeSeries> {
        let probe = model.predict(1).ok()?;
        if probe.step_min() as i64 != step {
            return None;
        }
        let anchor = probe.start();
        if from < anchor || (from - anchor) % step != 0 {
            return None;
        }
        let total = ((to - anchor) / step) as usize;
        let full = model.predict(total).ok()?;
        full.slice(from, to).ok()
    }

    /// Finds the lowest-load window of the server's configured backup
    /// duration on the given day — the query the backup scheduler asks.
    pub fn ll_window(
        &self,
        region: &str,
        server_id: u64,
        day: i64,
    ) -> Result<LowLoadWindow, ServeError> {
        let started = Instant::now();
        let pin = self.inner.store.gc().pin();
        let ctx = self.ctx(region, &pin);
        if ctx.probe.is_open() {
            return Err(Self::shed(ctx, region));
        }
        let snapshot = ctx.slot.read(&pin).ok_or_else(|| ServeError::NoSnapshot {
            region: region.to_string(),
        })?;
        let result = (|| {
            let series = self.predict_day_on(snapshot, region, server_id, day)?;
            let duration = snapshot
                .server(server_id)
                .map(|s| s.duration_min() as u32)
                .unwrap_or(0);
            lowest_load_window(&series, duration).ok_or(ServeError::NoWindow {
                duration_min: duration,
            })
        })();
        self.finish(ctx, started, result)
    }

    /// Answers a batch of `(server_id, horizon)` queries against a single
    /// coherent snapshot acquisition — every answer in the batch comes from
    /// the same epoch, even if a deploy lands mid-batch. Responses are in
    /// input order. Admission and snapshot lookup are batch-level: an open
    /// breaker or missing snapshot fails the whole batch.
    ///
    /// The batch is vectorized over the snapshot: the snapshot is resolved
    /// once, duplicate `(server, horizon)` entries reuse the first answer
    /// (cheap `Arc`-view clones), and outcome counters are added once per
    /// batch instead of once per item.
    pub fn predict_batch(
        &self,
        region: &str,
        requests: &[(u64, usize)],
    ) -> Result<Vec<Result<TimeSeries, ServeError>>, ServeError> {
        let started = Instant::now();
        if requests.is_empty() {
            return Err(ServeError::BadRequest("empty batch".into()));
        }
        let pin = self.inner.store.gc().pin();
        let ctx = self.ctx(region, &pin);
        if ctx.probe.is_open() {
            return Err(Self::shed(ctx, region));
        }
        let snapshot = ctx.slot.read(&pin).ok_or_else(|| ServeError::NoSnapshot {
            region: region.to_string(),
        })?;
        ctx.batch_size.observe(requests.len() as f64);
        let mut responses: Vec<Result<TimeSeries, ServeError>> = Vec::with_capacity(requests.len());
        let mut ok = 0u64;
        for (i, &(server_id, horizon)) in requests.iter().enumerate() {
            // In-batch dedup: identical queries share one computation.
            // Batches are small, so the linear probe beats hashing.
            let result = match requests[..i]
                .iter()
                .position(|&prior| prior == (server_id, horizon))
            {
                Some(j) => responses[j].clone(),
                None => self.predict_on(snapshot, region, server_id, horizon),
            };
            ok += u64::from(result.is_ok());
            responses.push(result);
        }
        ctx.ok.add(ok);
        let errors = requests.len() as u64 - ok;
        if errors > 0 {
            ctx.err.add(errors);
        }
        self.observe_latency(ctx, started);
        Ok(responses)
    }
}

impl DeploySink for ServeService {
    /// Successful deployment: build a snapshot from the deployed
    /// predictions (attaching warm-cache models when the pipeline runs with
    /// `warm_cache`) and swap it in.
    fn on_deploy(&self, event: &DeployEvent<'_>) {
        self.publish(ModelSnapshot::from_deploy(event));
    }

    /// Failed deployment: the store is deliberately *not* touched — the
    /// last-known-good snapshot keeps serving, mirroring the registry's
    /// fallback rule. Only a counter records that it happened.
    fn on_fallback(&self, region: &str, _week_start_day: i64) {
        self.inner
            .obs
            .registry()
            .counter("seagull_serve_fallback_kept_total", &[("region", region)])
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_core::pipeline::PredictionDoc;
    use seagull_core::resilience::BreakerState;

    fn doc(server_id: u64, day: i64, values: Vec<f64>) -> PredictionDoc {
        PredictionDoc {
            region: "west".into(),
            server_id,
            day,
            step_min: 30,
            values,
            duration_min: 60,
        }
    }

    fn service_with_one_server() -> ServeService {
        let serve = ServeService::with_defaults();
        let values: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let snap = ModelSnapshot::from_predictions("west", 1, 7, "m", &[doc(7, 14, values)]);
        serve.publish(snap);
        serve
    }

    #[test]
    fn predict_slices_materialized_day_zero_copy() {
        let serve = service_with_one_server();
        let p = serve.predict("west", 7, 4).unwrap();
        assert_eq!(p.values(), &[0.0, 1.0, 2.0, 3.0]);
        let full = serve.predict("west", 7, 48).unwrap();
        let snap = serve.snapshot("west").unwrap();
        assert!(full.shares_storage(snap.server(7).unwrap().prediction()));
    }

    #[test]
    fn predict_errors_are_specific() {
        let serve = service_with_one_server();
        assert!(matches!(
            serve.predict("east", 7, 4),
            Err(ServeError::NoSnapshot { .. })
        ));
        assert!(matches!(
            serve.predict("west", 99, 4),
            Err(ServeError::UnknownServer { server_id: 99, .. })
        ));
        assert!(matches!(
            serve.predict("west", 7, 0),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            serve.predict("west", 7, 49),
            Err(ServeError::HorizonUnavailable {
                requested: 49,
                materialized: 48
            })
        ));
    }

    #[test]
    fn predict_day_serves_materialized_day() {
        let serve = service_with_one_server();
        let day = serve.predict_day("west", 7, 14).unwrap();
        assert_eq!(day.len(), 48);
        assert!(matches!(
            serve.predict_day("west", 7, 15),
            Err(ServeError::DayUnavailable { day: 15 })
        ));
    }

    #[test]
    fn ll_window_finds_quietest_hour() {
        let serve = ServeService::with_defaults();
        // Low plateau at steps 10..14 (values 0.5), high elsewhere.
        let values: Vec<f64> = (0..48)
            .map(|i| if (10..14).contains(&i) { 0.5 } else { 9.0 })
            .collect();
        serve.publish(ModelSnapshot::from_predictions(
            "west",
            1,
            7,
            "m",
            &[doc(7, 14, values)],
        ));
        let w = serve.ll_window("west", 7, 14).unwrap();
        assert_eq!(w.duration_min, 60);
        assert_eq!(w.start.day_index(), 14);
        assert!((w.mean_load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_answers_in_input_order_from_one_epoch() {
        let serve = service_with_one_server();
        let out = serve
            .predict_batch("west", &[(99, 2), (7, 2), (7, 1)])
            .unwrap();
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], Err(ServeError::UnknownServer { .. })));
        assert_eq!(out[1].as_ref().unwrap().values(), &[0.0, 1.0]);
        assert_eq!(out[2].as_ref().unwrap().values(), &[0.0]);
        assert!(matches!(
            serve.predict_batch("west", &[]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn batch_dedup_reuses_identical_queries() {
        let serve = service_with_one_server();
        let out = serve
            .predict_batch("west", &[(7, 4), (7, 4), (7, 4), (7, 2)])
            .unwrap();
        assert_eq!(out.len(), 4);
        let first = out[0].as_ref().unwrap();
        for dup in &out[1..3] {
            let dup = dup.as_ref().unwrap();
            assert_eq!(dup.values(), first.values());
            assert!(dup.shares_storage(first), "dedup should reuse the view");
        }
        assert_eq!(out[3].as_ref().unwrap().values(), &[0.0, 1.0]);
    }

    #[test]
    fn open_breaker_sheds_requests() {
        let serve = service_with_one_server();
        // Trip the breaker: default threshold is 3 consecutive failures.
        let incidents = seagull_core::incident::IncidentManager::new();
        for _ in 0..3 {
            serve.breaker().record_failure("west", 0, &incidents);
        }
        assert_eq!(serve.breaker().state("west"), BreakerState::Open);
        assert!(matches!(
            serve.predict("west", 7, 4),
            Err(ServeError::Rejected { .. })
        ));
        assert!(matches!(
            serve.predict_batch("west", &[(7, 1)]),
            Err(ServeError::Rejected { .. })
        ));
    }

    #[test]
    fn breaker_trip_after_first_query_still_sheds() {
        // The probe is created on the region's first query; later
        // transitions must flow through its mirror cell.
        let serve = service_with_one_server();
        assert!(serve.predict("west", 7, 4).is_ok());
        let incidents = seagull_core::incident::IncidentManager::new();
        for _ in 0..3 {
            serve.breaker().record_failure("west", 0, &incidents);
        }
        assert!(matches!(
            serve.predict("west", 7, 4),
            Err(ServeError::Rejected { .. })
        ));
    }

    #[test]
    fn coalesced_responses_match_uncoalesced() {
        let serve = service_with_one_server();
        let plain = serve.predict("west", 7, 6).unwrap();
        serve.set_coalescing(true);
        assert!(serve.coalescing());
        let coalesced = serve.predict("west", 7, 6).unwrap();
        assert_eq!(plain.values(), coalesced.values());
        assert_eq!(plain.start(), coalesced.start());
        assert_eq!(plain.step_min(), coalesced.step_min());
    }

    #[test]
    fn query_exemplars_surface_in_full_export_only() {
        let serve = service_with_one_server();
        for _ in 0..20 {
            serve.predict("west", 7, 4).unwrap();
        }
        let full = serve.obs().full_export();
        assert!(
            full.contains("# EXEMPLAR seagull_serve_latency_seconds_bucket"),
            "full export should carry latency exemplars:\n{full}"
        );
        assert!(full.contains("span="));
        // The latency histogram is volatile: neither it nor its exemplars
        // may leak into the deterministic export.
        let stable = serve.obs().stable_export();
        assert!(!stable.contains("seagull_serve_latency_seconds"));
        assert!(!stable.contains("EXEMPLAR"));
    }

    #[test]
    fn staleness_tracks_clock() {
        let serve = service_with_one_server();
        assert_eq!(serve.staleness_days("west"), Some(0));
        serve.set_clock_day(21);
        assert_eq!(serve.staleness_days("west"), Some(14));
        assert_eq!(serve.staleness_days("east"), None);
    }

    #[test]
    fn shard_metrics_export_at_publish_time() {
        let serve = service_with_one_server();
        let stable = serve.obs().stable_export();
        assert!(
            stable.contains("seagull_serve_shard_publishes"),
            "shard publish gauges missing:\n{stable}"
        );
        assert!(stable.contains("seagull_serve_snapshots_retired"));
        // GC progress is timing-dependent and must stay out of the
        // deterministic export.
        assert!(!stable.contains("seagull_serve_gc_freed"));
        assert!(!stable.contains("seagull_serve_reader_slots"));
    }
}
